"""Discrete-event simulation engine.

A minimal, fast event loop in the style of ns-3's scheduler: events are
``(time, sequence, callback)`` triples in a binary heap; the sequence
number makes ordering deterministic for simultaneous events (FIFO by
scheduling order), which keeps every simulation in this package exactly
reproducible.

Components never advance time themselves; they schedule callbacks and
read :attr:`Simulator.now`.

Runaway simulations (event storms, accidental infinite timer chains,
pathological fault scenarios) are caught by two watchdogs on
:meth:`Simulator.run` -- ``max_events`` and ``max_wall_seconds`` --
which abort with a structured :class:`SimulationAborted` carrying the
engine state at the abort point.  The simulator itself is left
consistent and resumable: the clock sits at the last processed event
and ``run`` can simply be called again.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import Any, Callable, Optional

from repro.obs import metrics as _metrics
from repro.sim.scheduler import CalendarScheduler

#: Pending-set backends selectable on :class:`Simulator`.  ``"heap"``
#: is the original binary heap and serves as the oracle;``"calendar"``
#: is the :class:`~repro.sim.scheduler.CalendarScheduler`, bit-for-bit
#: equivalent in serve order (same ``(time, seq)`` contract) but with
#: O(1) pushes for the far-future common case.
SCHEDULERS = ("heap", "calendar")

#: How many events to process between wall-clock watchdog checks.
#: ``time.monotonic()`` is cheap but not free; the event loop runs
#: millions of events per second, so polling every event would cost
#: more than the events themselves.
WALL_CHECK_STRIDE = 1024


class SimulationAborted(RuntimeError):
    """A watchdog stopped :meth:`Simulator.run` before completion.

    Subclasses ``RuntimeError`` for backward compatibility with callers
    that guarded the old ``max_events`` behaviour.  The simulator is
    left in a *resumable* state: all events processed so far are
    committed, the clock sits at the last processed event, and the
    pending heap is intact -- call ``run`` again to continue.

    Attributes
    ----------
    reason:
        Which watchdog fired (``"max_events"`` or ``"wall_clock"``)
        or a caller-supplied tag.
    events_processed:
        Events executed by the aborted ``run`` call.
    sim_time:
        Simulation clock at the abort, seconds.
    heap_depth:
        Events still pending when the run aborted.
    """

    def __init__(self, reason: str, events_processed: int,
                 sim_time: float, heap_depth: int,
                 detail: str = ""):
        self.reason = reason
        self.events_processed = events_processed
        self.sim_time = sim_time
        self.heap_depth = heap_depth
        self.detail = detail
        message = (f"simulation aborted ({reason}) at t={sim_time:.6f}s: "
                   f"{events_processed} events processed, "
                   f"{heap_depth} still pending")
        if detail:
            message += f" -- {detail}"
        super().__init__(message)


class Event:
    """Handle for a scheduled callback; supports cancellation.

    ``args`` are passed positionally to the callback when it fires --
    scheduling ``schedule(d, fn, arg)`` instead of
    ``schedule(d, lambda: fn(arg))`` spares the event loop one closure
    allocation and one extra frame per event, which matters at millions
    of events per second.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., Any],
                 args: tuple = ()):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (lazy removal in the heap)."""
        self.cancelled = True


class PeriodicSampler:
    """Handle for a :meth:`Simulator.sample_every` subscription.

    Self-reschedules through the ordinary event heap, so samples are
    totally ordered with the rest of the simulation and cost nothing
    when no sampler is installed.  ``cancel`` stops future samples;
    the pending event is lazily removed like any cancelled event.
    """

    __slots__ = ("sim", "interval", "callback", "stop_time", "_event")

    def __init__(self, sim: "Simulator", interval: float,
                 callback: Callable[[float], Any],
                 start: float, stop: Optional[float]):
        if interval <= 0:
            raise ValueError(
                f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.stop_time = stop
        self._event: Optional[Event] = sim.schedule_at(
            max(start, sim.now), self._fire)

    def _fire(self) -> None:
        now = self.sim.now
        if self.stop_time is not None and now > self.stop_time:
            self._event = None
            return
        self.callback(now)
        self._event = self.sim.schedule(self.interval, self._fire)

    def cancel(self) -> None:
        """Stop sampling; safe to call more than once."""
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Simulator:
    """Event-driven simulation clock and scheduler.

    ``scheduler`` selects the pending-set backend (:data:`SCHEDULERS`).
    The default binary heap is the determinism oracle; the calendar
    backend serves the exact same order (property-tested) with a cost
    profile tuned for near-monotone horizons.  Everything else --
    watchdogs, ``stop``/resume, cancellation, telemetry -- behaves
    identically on both.
    """

    __slots__ = ("_now", "_heap", "_cal", "_sequence", "_running",
                 "_processed", "scheduler")

    def __init__(self, scheduler: str = "heap"):
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, "
                f"got {scheduler!r}")
        self._now = 0.0
        self.scheduler = scheduler
        # Exactly one backend is active; the heap path keeps its
        # original no-indirection hot loop (it is the oracle).
        self._heap: list = []
        self._cal: Optional[CalendarScheduler] = (
            CalendarScheduler() if scheduler == "calendar" else None)
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for perf reporting)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Scheduled events not yet executed (incl. cancelled)."""
        if self._cal is not None:
            return len(self._cal)
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        time = self._now + delay
        event = Event(time, callback, args)
        if self._cal is None:
            heapq.heappush(self._heap, (time, next(self._sequence), event))
        else:
            self._cal.push((time, next(self._sequence), event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self._now}")
        event = Event(time, callback, args)
        if self._cal is None:
            heapq.heappush(self._heap, (time, next(self._sequence), event))
        else:
            self._cal.push((time, next(self._sequence), event))
        return event

    def sample_every(self, interval: float,
                     callback: Callable[[float], Any],
                     start: float = 0.0,
                     stop: Optional[float] = None) -> PeriodicSampler:
        """Invoke ``callback(now)`` every ``interval`` sim seconds.

        The uniform in-run snapshot hook: health detectors, monitors
        and checkpointing all subscribe through this instead of
        hand-rolling self-rescheduling callbacks.  Sampling rides the
        ordinary event heap -- a simulation with no samplers pays
        nothing, and one with samplers pays exactly one extra event
        per sample.  ``start`` is an absolute time (clamped to now);
        past ``stop`` the sampler unschedules itself so it neither
        keeps the heap populated nor drains watchdog event budgets.
        """
        return PeriodicSampler(self, interval, callback, start, stop)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            max_wall_seconds: Optional[float] = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left
            at ``until``).  None runs until the heap empties.
        max_events:
            Event-storm watchdog: abort with :class:`SimulationAborted`
            after this many events.  The simulator stays resumable.
        max_wall_seconds:
            Wall-clock watchdog: abort (with :class:`SimulationAborted`)
            once this much real time has elapsed, checked every
            :data:`WALL_CHECK_STRIDE` events.  Guards against
            simulations that make sim-time progress but will never
            finish within a usable budget.
        """
        if self._cal is not None:
            return self._run_calendar(until, max_events, max_wall_seconds)
        self._running = True
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        wall_begin = _time.monotonic()
        wall_start = wall_begin if max_wall_seconds is not None \
            else None
        watchdogs = max_events is not None or wall_start is not None
        try:
            if not watchdogs:
                # Watchdog-free fast path: the comparisons below run
                # once per event, millions of times per second, so the
                # common case earns its own tight loop.
                while heap and self._running:
                    item = heap[0]
                    time = item[0]
                    if until is not None and time > until:
                        break
                    pop(heap)
                    event = item[2]
                    if event.cancelled:
                        continue
                    self._now = time
                    event.callback(*event.args)
                    processed += 1
            else:
                while heap and self._running:
                    item = heap[0]
                    time = item[0]
                    if until is not None and time > until:
                        break
                    pop(heap)
                    event = item[2]
                    if event.cancelled:
                        continue
                    self._now = time
                    event.callback(*event.args)
                    processed += 1
                    if max_events is not None and \
                            processed >= max_events:
                        raise self._abort(
                            "max_events", processed, len(heap),
                            f"exceeded max_events={max_events}")
                    if wall_start is not None and \
                            processed % WALL_CHECK_STRIDE == 0 and \
                            _time.monotonic() - wall_start \
                            > max_wall_seconds:
                        raise self._abort(
                            "wall_clock", processed, len(heap),
                            f"exceeded max_wall_seconds="
                            f"{max_wall_seconds}")
            if until is not None and self._now < until:
                self._now = until
        finally:
            # Always leave the simulator resumable: the clock is
            # consistent (last processed event, or ``until``) and the
            # heap holds exactly the unprocessed events.  The lifetime
            # event counter is settled here so aborted runs (watchdogs,
            # callback exceptions) still account their work.
            self._processed += processed
            self._running = False
            # Telemetry publishes per *run* call, never per event --
            # with telemetry off these are no-op calls on the
            # process-wide null registry (see repro.obs.metrics), so
            # the hot loop above is byte-for-byte unaffected.
            registry = _metrics.get_registry()
            registry.counter("sim.engine.runs_total").inc()
            registry.counter("sim.engine.events_total").inc(processed)
            registry.gauge("sim.engine.pending_events").set(len(heap))
            registry.gauge("sim.engine.sim_time_s").set(self._now)
            self._publish_scheduler_metrics(registry, processed,
                                            _time.monotonic()
                                            - wall_begin)

    def _run_calendar(self, until: Optional[float],
                      max_events: Optional[int],
                      max_wall_seconds: Optional[float]) -> None:
        """The :meth:`run` loop over the calendar backend.

        Mirrors the heap loop's structure and guarantees exactly --
        same watchdogs, same ``finally`` resumability contract, same
        telemetry -- but serves events by advancing a cursor through
        the scheduler's sorted window instead of heap pops.  The
        window list object is stable, so it is bound once; only the
        cursor is re-read (callbacks push events, which may grow the
        window in place).
        """
        self._running = True
        processed = 0
        cal = self._cal
        near = cal._near
        advance = cal._advance
        wall_begin = _time.monotonic()
        wall_start = wall_begin if max_wall_seconds is not None \
            else None
        watchdogs = max_events is not None or wall_start is not None
        try:
            if not watchdogs:
                while self._running:
                    cursor = cal._cursor
                    if cursor >= len(near):
                        if not advance():
                            break
                        cursor = 0
                    item = near[cursor]
                    time = item[0]
                    if until is not None and time > until:
                        break
                    # The cursor must be committed before the callback
                    # runs: pushes into the open window use it as the
                    # bisect lower bound.
                    cal._cursor = cursor + 1
                    event = item[2]
                    if event.cancelled:
                        continue
                    self._now = time
                    event.callback(*event.args)
                    processed += 1
            else:
                while self._running:
                    cursor = cal._cursor
                    if cursor >= len(near):
                        if not advance():
                            break
                        cursor = 0
                    item = near[cursor]
                    time = item[0]
                    if until is not None and time > until:
                        break
                    cal._cursor = cursor + 1
                    event = item[2]
                    if event.cancelled:
                        continue
                    self._now = time
                    event.callback(*event.args)
                    processed += 1
                    if max_events is not None and \
                            processed >= max_events:
                        raise self._abort(
                            "max_events", processed, len(cal),
                            f"exceeded max_events={max_events}")
                    if wall_start is not None and \
                            processed % WALL_CHECK_STRIDE == 0 and \
                            _time.monotonic() - wall_start \
                            > max_wall_seconds:
                        raise self._abort(
                            "wall_clock", processed, len(cal),
                            f"exceeded max_wall_seconds="
                            f"{max_wall_seconds}")
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._processed += processed
            self._running = False
            registry = _metrics.get_registry()
            registry.counter("sim.engine.runs_total").inc()
            registry.counter("sim.engine.events_total").inc(processed)
            registry.gauge("sim.engine.pending_events").set(len(cal))
            registry.gauge("sim.engine.sim_time_s").set(self._now)
            self._publish_scheduler_metrics(registry, processed,
                                            _time.monotonic()
                                            - wall_begin)

    def _publish_scheduler_metrics(self, registry, processed: int,
                                   wall_s: float) -> None:
        """Per-run scheduler telemetry (one publish per ``run`` call,
        never per event): which backend ran, its lifetime event
        count, per-run throughput, and -- on the calendar backend --
        the wheel internals (adaptive width, occupancy, rehash and
        overflow-spill counts) that make engine choice visible in
        telemetry, not just in bench JSON."""
        registry.counter(
            f"sim.scheduler.{self.scheduler}_runs_total").inc()
        registry.gauge("sim.scheduler.events_processed").set(
            self._processed)
        if processed and wall_s > 0:
            registry.gauge("sim.engine.events_per_sec").set(
                processed / wall_s)
        if self._cal is not None:
            stats = self._cal.stats()
            registry.gauge("sim.scheduler.width_s").set(
                stats["width_s"])
            registry.gauge("sim.scheduler.buckets").set(
                stats["buckets"])
            registry.gauge("sim.scheduler.rehashes").set(
                stats["rehashes"])
            registry.gauge("sim.scheduler.spills").set(
                stats["spills"])

    def _abort_metrics(self, reason: str) -> None:
        """Count a watchdog abort (rare path, outside the fast loop)."""
        _metrics.get_registry().counter(
            f"sim.engine.aborts_{reason}_total").inc()

    def _abort(self, reason: str, processed: int, pending: int,
               detail: str) -> SimulationAborted:
        """Build the watchdog exception, accounting the abort first.

        Bumps the abort counter and -- when a telemetry bundle is
        active -- emits a structured ``abort`` run-log event (cause,
        sim time, events processed) *before* the raise, so ``watch``
        and ``serve`` surfaces show why a run died instead of going
        silent.  Rare path: the import and the ambient lookup cost
        nothing in the hot loops.
        """
        self._abort_metrics(reason)
        from repro.obs import telemetry as _telemetry
        active = _telemetry.current()
        if active is not None:
            try:
                active.run_log.abort(
                    reason=reason, sim_time=self._now,
                    events_processed=processed, pending=pending,
                    detail=detail)
            except ValueError:
                pass  # run log already finished/closed
        return SimulationAborted(reason, processed, self._now,
                                 pending, detail=detail)

    def stop(self) -> None:
        """Abort :meth:`run` after the current callback returns."""
        self._running = False
