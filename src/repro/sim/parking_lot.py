"""Parking-lot (multi-bottleneck) topology -- the paper's future work.

Section 7 lists "multiple bottleneck scenario" as the analysis the
paper did not reach.  This builder provides the canonical multi-
bottleneck fabric: a chain of switches where one *cross* flow
traverses every inter-switch link while each link also carries a
*local* flow.

::

    sx --- sw0 ====== sw1 ====== sw2 --- rx
            |          |  \\       |
            s0         r0  s1     r1

Cross flow: ``sx -> rx`` (crosses every ``====`` link).
Local flow i: ``s<i> -> r<i>`` (crosses only link i).

With N_segments congested links, per-link fair sharing would give the
cross flow 1/2 of each link; in practice end-to-end protocols beat
down a multi-hop flow below that, because it accumulates congestion
signal from *every* hop (ECN marks add up; RTT sums all queues).  The
``ext_parking_lot`` experiment measures exactly that.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import units
from repro.sim.flows import FlowRegistry
from repro.sim.node import Host
from repro.sim.switch import Switch, connect
from repro.sim.topology import Network, _make_simulator


def parking_lot(n_segments: int = 2,
                link_gbps: float = 10.0,
                link_delay: float = units.us(1),
                mtu_bytes: int = units.DEFAULT_MTU_BYTES,
                marker_factory: Optional[Callable[[int], object]] = None,
                marking_point: str = "egress",
                engine: str = "heap") -> Network:
    """Build a chain of ``n_segments`` congestible inter-switch links.

    Parameters
    ----------
    n_segments:
        Number of inter-switch (bottleneck) links; the chain has
        ``n_segments + 1`` switches.
    marker_factory:
        ``factory(segment_index) -> marker`` producing an independent
        AQM marker per inter-switch egress (each bottleneck must have
        its own RED/PI state).  None disables marking.

    Returns a :class:`~repro.sim.topology.Network` whose
    ``bottleneck_port`` is the *first* inter-switch link.  Hosts:
    ``sx``/``rx`` are the cross pair; ``s<i>``/``r<i>`` the local pair
    of segment ``i`` (sender at switch i, receiver at switch i+1).
    """
    if n_segments < 1:
        raise ValueError(
            f"need at least one segment, got {n_segments}")
    sim = _make_simulator(engine)
    rate = link_gbps * 1e9 / units.BITS_PER_BYTE
    switches = {f"sw{i}": Switch(sim, f"sw{i}")
                for i in range(n_segments + 1)}
    chain = [switches[f"sw{i}"] for i in range(n_segments + 1)]
    hosts = {}

    # Inter-switch links, both directions (reverse carries control).
    first_bottleneck = None
    for i in range(n_segments):
        marker = marker_factory(i) if marker_factory else None
        forward = connect(sim, chain[i], chain[i + 1], rate,
                          link_delay, marker=marker,
                          marking_point=marking_point)
        connect(sim, chain[i + 1], chain[i], rate, link_delay)
        if first_bottleneck is None:
            first_bottleneck = forward

    def attach(host_name: str, switch: Switch) -> Host:
        host = Host(sim, host_name)
        hosts[host_name] = host
        connect(sim, host, switch, rate, link_delay)
        connect(sim, switch, host, rate, link_delay)
        return host

    # Cross pair at the ends, local pairs per segment.
    attach("sx", chain[0])
    attach("rx", chain[-1])
    locations = {"sx": 0, "rx": n_segments}
    for i in range(n_segments):
        attach(f"s{i}", chain[i])
        attach(f"r{i}", chain[i + 1])
        locations[f"s{i}"] = i
        locations[f"r{i}"] = i + 1

    # Chain routing: every switch knows, for every host, whether the
    # host hangs off it or lies up/down the chain.
    for idx, switch in enumerate(chain):
        for host_name, loc in locations.items():
            if loc == idx:
                switch.add_route(host_name, host_name)
            elif loc > idx:
                switch.add_route(host_name, f"sw{idx + 1}")
            else:
                switch.add_route(host_name, f"sw{idx - 1}")

    return Network(sim=sim, hosts=hosts, switches=switches,
                   registry=FlowRegistry(),
                   bottleneck_port=first_bottleneck,
                   mtu_bytes=mtu_bytes, link_rate_bytes=rate,
                   engine=engine)
