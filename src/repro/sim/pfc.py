"""Priority Flow Control (IEEE 802.1Qbb) -- the lossless substrate.

RoCEv2 requires a drop-free fabric: when a switch's buffering
attributable to one upstream exceeds a threshold, it sends PAUSE to
that upstream, which stops transmitting until RESUME.  The paper's
models deliberately ignore PFC ("We assume that ECN marking is
triggered before PFC"), configuring ECN thresholds well below the
PAUSE watermark -- but the substrate must exist for that assumption to
be checkable, and the simulator's PFC tests confirm zero drops with
finite buffers.

The implementation tracks, per upstream device, the bytes that entered
through it and are still buffered anywhere in the switch.  Crossing
``pause_threshold_bytes`` emits PAUSE; draining below
``resume_threshold_bytes`` emits RESUME.  PAUSE/RESUME frames are
modelled as function calls delayed by the reverse propagation delay --
they are tiny, strictly-prioritized frames in real hardware.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.sim.engine import Simulator


class PFCController:
    """Per-switch PFC state machine.

    Parameters
    ----------
    sim:
        Simulation clock for delayed PAUSE/RESUME delivery.
    pause_threshold_bytes:
        Buffered-bytes watermark that triggers PAUSE (802.1Qbb XOFF).
    resume_threshold_bytes:
        Watermark below which RESUME (XON) is sent; must be lower than
        the pause threshold (hysteresis).
    """

    def __init__(self, sim: Simulator, pause_threshold_bytes: int,
                 resume_threshold_bytes: int):
        if resume_threshold_bytes >= pause_threshold_bytes:
            raise ValueError(
                "resume threshold must be below the pause threshold "
                f"({resume_threshold_bytes} >= {pause_threshold_bytes})")
        if resume_threshold_bytes < 0:
            raise ValueError("thresholds must be non-negative")
        self.sim = sim
        self.pause_threshold = pause_threshold_bytes
        self.resume_threshold = resume_threshold_bytes
        self._buffered: Dict[str, int] = {}
        self._paused: Dict[str, bool] = {}
        self._pause_callbacks: Dict[str, Callable[[bool], None]] = {}
        self._reverse_delays: Dict[str, float] = {}
        self._pause_started: Dict[str, float] = {}
        self.pauses_sent = 0
        self.resumes_sent = 0
        self.pause_seconds_total = 0.0
        self.longest_pause_s = 0.0

    def register_upstream(self, label: str,
                          pause_callback: Callable[[bool], None],
                          reverse_delay: float = 0.0) -> None:
        """Register an upstream device reachable for PAUSE frames.

        ``pause_callback(True)`` pauses the upstream's port toward this
        switch; ``pause_callback(False)`` resumes it.
        """
        self._buffered[label] = 0
        self._paused[label] = False
        self._pause_callbacks[label] = pause_callback
        self._reverse_delays[label] = reverse_delay

    def buffered_bytes(self, label: str) -> int:
        """Bytes currently buffered that arrived via ``label``."""
        return self._buffered.get(label, 0)

    def is_paused(self, label: str) -> bool:
        """Whether PAUSE is currently asserted toward ``label``."""
        return self._paused.get(label, False)

    def upstream_labels(self) -> "list[str]":
        """All registered upstream labels (for invariant auditing)."""
        return sorted(self._buffered)

    def paused_upstreams(self) -> "list[str]":
        """Labels with PAUSE currently asserted.

        The invariant monitor uses this both for pause/resume pairing
        checks and for PFC-deadlock detection (pauses outstanding while
        no data makes progress).
        """
        return sorted(label for label, paused in self._paused.items()
                      if paused)

    def on_ingress(self, label: str, nbytes: int) -> None:
        """Account bytes entering the switch via ``label``."""
        if label not in self._buffered:
            return  # untracked upstream (e.g. PFC disabled on that hop)
        self._buffered[label] += nbytes
        if not self._paused[label] and \
                self._buffered[label] >= self.pause_threshold:
            self._paused[label] = True
            self.pauses_sent += 1
            self._pause_started[label] = self.sim.now
            self._notify(label, True)

    def on_egress(self, label: str, nbytes: int) -> None:
        """Account bytes leaving the switch that arrived via ``label``."""
        if label not in self._buffered:
            return
        self._buffered[label] -= nbytes
        if self._buffered[label] < 0:
            raise RuntimeError(
                f"PFC accounting for {label!r} went negative; "
                "ingress/egress hooks are mismatched")
        if self._paused[label] and \
                self._buffered[label] <= self.resume_threshold:
            self._paused[label] = False
            self.resumes_sent += 1
            duration = self.sim.now - self._pause_started.pop(label)
            self.pause_seconds_total += duration
            if duration > self.longest_pause_s:
                self.longest_pause_s = duration
            self._notify(label, False)

    def longest_active_pause(self, now: float) -> float:
        """Duration of the oldest still-asserted PAUSE, seconds.

        The PFC-deadlock precursor signal: a healthy fabric retires
        every PAUSE within a queue-drain time, so a pause that stays
        asserted for many drain times means the downstream buffer is
        not draining -- the condition pause storms and (with a cyclic
        buffer dependency) PFC deadlocks grow out of.  Zero when
        nothing is paused.
        """
        if not self._pause_started:
            return 0.0
        return now - min(self._pause_started.values())

    def publish_metrics(self, registry, name: str = "pfc") -> None:
        """Scrape PAUSE/RESUME totals and per-upstream buffering.

        Publishes under ``sim.pfc.<name>.*`` -- pause time studies
        (Figs. 16) hinge on ``pauses_sent_total`` and which upstream
        the pauses pile onto.
        """
        from repro.obs.metrics import sanitize
        prefix = f"sim.pfc.{sanitize(name)}"
        registry.counter(f"{prefix}.pauses_sent_total").inc(
            self.pauses_sent)
        registry.counter(f"{prefix}.resumes_sent_total").inc(
            self.resumes_sent)
        registry.gauge(f"{prefix}.paused_upstreams").set(
            len(self.paused_upstreams()))
        registry.gauge(f"{prefix}.pause_seconds_total").set(
            self.pause_seconds_total)
        registry.gauge(f"{prefix}.longest_pause_s").set(
            self.longest_pause_s)
        for label in self.upstream_labels():
            registry.gauge(
                f"{prefix}.buffered_bytes.{sanitize(label)}"
            ).set(self._buffered[label])

    def _notify(self, label: str, pause: bool) -> None:
        callback = self._pause_callbacks[label]
        delay = self._reverse_delays[label]
        self.sim.schedule(delay, lambda: callback(pause))
