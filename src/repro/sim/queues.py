"""FIFO byte queues used by switch and NIC egress ports."""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.packet import Packet


class ByteFIFO:
    """Drop-free FIFO tracking byte occupancy.

    RoCEv2 networks are lossless (PFC prevents overflow), so the
    default capacity is unlimited; a finite ``capacity_bytes`` turns it
    into a drop-tail queue for non-PFC scenarios, with a drop counter
    for observability.
    """

    __slots__ = ("capacity_bytes", "_packets", "_bytes",
                 "dropped_packets", "dropped_bytes", "enqueued_bytes",
                 "dequeued_bytes", "max_bytes")

    def __init__(self, capacity_bytes: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(
                f"capacity must be positive or None, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._packets: deque = deque()
        self._bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        #: Lifetime byte totals, for conservation audits
        #: (:mod:`repro.sim.invariants`): every byte that entered must
        #: either still be queued or have been dequeued.
        self.enqueued_bytes = 0
        self.dequeued_bytes = 0
        #: High-water mark, bytes -- handy for buffer sizing reports.
        self.max_bytes = 0

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def size_bytes(self) -> int:
        """Current occupancy in bytes."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        return not self._packets

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and counts a drop) if full."""
        if self.capacity_bytes is not None and \
                self._bytes + packet.size_bytes > self.capacity_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += packet.size_bytes
            return False
        self._packets.append(packet)
        self._bytes += packet.size_bytes
        self.enqueued_bytes += packet.size_bytes
        if self._bytes > self.max_bytes:
            self.max_bytes = self._bytes
        return True

    def dequeue(self) -> Packet:
        """Remove and return the head packet."""
        if not self._packets:
            raise IndexError("dequeue from empty ByteFIFO")
        packet = self._packets.popleft()
        self._bytes -= packet.size_bytes
        self.dequeued_bytes += packet.size_bytes
        return packet

    def dequeue_window(self, max_packets: int) -> "tuple[list, int]":
        """Drain up to ``max_packets`` head packets in one step.

        Returns ``(packets, total_bytes)``.  The batched port path
        (:mod:`repro.sim.link`) serves a whole drain window with one
        pair of events instead of one pair per packet; byte accounting
        is settled once for the window.
        """
        queue = self._packets
        count = len(queue)
        if max_packets < count:
            count = max_packets
        popleft = queue.popleft
        window = [popleft() for _ in range(count)]
        total = 0
        for packet in window:
            total += packet.size_bytes
        self._bytes -= total
        self.dequeued_bytes += total
        return window, total

    def audit(self) -> Optional[str]:
        """Check internal conservation; None if clean, else a message.

        Two invariants must hold at any instant: the byte counter
        matches the queued packets, and lifetime enqueued bytes equal
        lifetime dequeued bytes plus the current occupancy.
        """
        actual = sum(p.size_bytes for p in self._packets)
        if actual != self._bytes:
            return (f"byte counter {self._bytes} != queued packet "
                    f"bytes {actual}")
        if self.enqueued_bytes != self.dequeued_bytes + self._bytes:
            return (f"conservation: enqueued {self.enqueued_bytes} != "
                    f"dequeued {self.dequeued_bytes} + occupancy "
                    f"{self._bytes}")
        if self._bytes < 0:
            return f"negative occupancy {self._bytes}"
        return None

    def publish_metrics(self, registry, prefix: str) -> None:
        """Scrape the queue's lifetime counters under ``prefix``.

        An aggregation-point publish (see :mod:`repro.obs.scrape`):
        the enqueue/dequeue hot path keeps plain attribute counters
        and this translates them into registry metrics on demand.
        """
        registry.counter(f"{prefix}.enqueued_bytes_total").inc(
            self.enqueued_bytes)
        registry.counter(f"{prefix}.dequeued_bytes_total").inc(
            self.dequeued_bytes)
        registry.counter(f"{prefix}.dropped_packets_total").inc(
            self.dropped_packets)
        registry.counter(f"{prefix}.dropped_bytes_total").inc(
            self.dropped_bytes)
        registry.gauge(f"{prefix}.depth_bytes").set(self._bytes)
        registry.gauge(f"{prefix}.high_water_bytes").set(
            self.max_bytes)

    def peek(self) -> Packet:
        """Return the head packet without removing it."""
        if not self._packets:
            raise IndexError("peek at empty ByteFIFO")
        return self._packets[0]
