"""Topology builders: the paper's two evaluation fabrics.

* :func:`single_switch` -- N senders and one receiver on one switch
  (the Fig. 2 / Fig. 8 validation topology).
* :func:`dumbbell` -- 10+10 hosts across two switches (Fig. 13), all
  traffic crossing the SW1->SW2 bottleneck.

Both return a :class:`Network` handle; :func:`install_flow` wires a
sender/receiver pair of any supported protocol onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro import units
from repro.core.params import (DCQCNParams, DCTCPParams,
                               PatchedTimelyParams, TimelyParams)
from repro.sim.engine import Simulator
from repro.sim.flows import Flow, FlowRegistry
from repro.sim.link import Port
from repro.sim.node import Host
from repro.sim.protocols.dcqcn import DCQCNReceiver, DCQCNSender
from repro.sim.protocols.dctcp import DCTCPReceiver, DCTCPSender
from repro.sim.protocols.patched_timely import (PatchedTimelyReceiver,
                                                PatchedTimelySender)
from repro.sim.protocols.timely import TimelyReceiver, TimelySender
from repro.sim.switch import Switch, connect

#: Protocol names accepted by :func:`install_flow`.
PROTOCOLS = ("dcqcn", "timely", "patched_timely", "dctcp")

#: Engine backends accepted by the topology builders.  ``heap`` and
#: ``calendar`` pick the event-queue implementation (bit-identical
#: event orderings; see :mod:`repro.sim.scheduler`); ``hybrid`` runs
#: on the calendar scheduler and marks the network as eligible for
#: fluid/packet coupling (:mod:`repro.sim.hybrid`).
ENGINES = ("heap", "calendar", "hybrid")


def _make_simulator(engine: str) -> Simulator:
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}")
    scheduler = "heap" if engine == "heap" else "calendar"
    return Simulator(scheduler=scheduler)


@dataclass
class Network:
    """A built topology plus its bookkeeping."""

    sim: Simulator
    hosts: Dict[str, Host]
    switches: Dict[str, Switch]
    registry: FlowRegistry
    bottleneck_port: Port
    mtu_bytes: int
    link_rate_bytes: float
    senders: Dict[int, object] = field(default_factory=dict)
    receivers: Dict[int, object] = field(default_factory=dict)
    engine: str = "heap"

    def utilization(self, duration: float) -> float:
        """Bottleneck utilization over ``duration`` seconds of run."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return self.bottleneck_port.bytes_transmitted / (
            self.link_rate_bytes * duration)


def _gbps_to_bytes(gbps: float) -> float:
    return gbps * 1e9 / units.BITS_PER_BYTE


def single_switch(n_senders: int,
                  link_gbps: float = 40.0,
                  link_delay: float = units.us(1),
                  mtu_bytes: int = units.DEFAULT_MTU_BYTES,
                  marker: Optional[object] = None,
                  marking_point: str = "egress",
                  feedback_extra_delay: float = 0.0,
                  priority_control: bool = False,
                  engine: str = "heap") -> Network:
    """N senders -> one switch -> one receiver (validation topology).

    ``feedback_extra_delay`` is added to the reverse-path (switch ->
    sender) links, lengthening the control loop without touching the
    data path -- how the Fig. 5 / Fig. 17 "85 us feedback delay"
    scenarios are realized.  ``priority_control`` enables a strict
    high-priority class for control packets on every port (Section
    5.2's feedback prioritization).
    """
    if n_senders < 1:
        raise ValueError(f"need at least one sender, got {n_senders}")
    sim = _make_simulator(engine)
    rate = _gbps_to_bytes(link_gbps)
    switch = Switch(sim, "sw")
    receiver = Host(sim, "recv")
    hosts = {"recv": receiver}

    # Bottleneck egress: switch -> receiver, carrying the AQM marker.
    bottleneck = connect(sim, switch, receiver, rate, link_delay,
                         marker=marker, marking_point=marking_point,
                         priority_control=priority_control)
    switch.add_route("recv", "recv")

    for i in range(n_senders):
        sender = Host(sim, f"s{i}")
        hosts[sender.name] = sender
        connect(sim, sender, switch, rate, link_delay,
                priority_control=priority_control)
        connect(sim, switch, sender, rate,
                link_delay + feedback_extra_delay,
                priority_control=priority_control)
        switch.add_route(sender.name, sender.name)

    # The receiver's reverse-path NIC (ACKs / CNPs).
    connect(sim, receiver, switch, rate, link_delay,
            priority_control=priority_control)

    return Network(sim=sim, hosts=hosts, switches={"sw": switch},
                   registry=FlowRegistry(), bottleneck_port=bottleneck,
                   mtu_bytes=mtu_bytes, link_rate_bytes=rate,
                   engine=engine)


def dumbbell(n_pairs: int = 10,
             link_gbps: float = 10.0,
             link_delay: float = units.us(1),
             mtu_bytes: int = units.DEFAULT_MTU_BYTES,
             marker: Optional[object] = None,
             marking_point: str = "egress",
             engine: str = "heap") -> Network:
    """The Fig. 13 dumbbell: senders -> SW1 -> SW2 -> receivers.

    All links run at ``link_gbps`` with ``link_delay`` latency; the
    SW1->SW2 egress is the bottleneck and carries the marker.
    """
    if n_pairs < 1:
        raise ValueError(f"need at least one host pair, got {n_pairs}")
    sim = _make_simulator(engine)
    rate = _gbps_to_bytes(link_gbps)
    sw1 = Switch(sim, "sw1")
    sw2 = Switch(sim, "sw2")
    hosts: Dict[str, Host] = {}

    bottleneck = connect(sim, sw1, sw2, rate, link_delay,
                         marker=marker, marking_point=marking_point)
    connect(sim, sw2, sw1, rate, link_delay)  # reverse (control) path

    for i in range(n_pairs):
        sender = Host(sim, f"s{i}")
        receiver = Host(sim, f"r{i}")
        hosts[sender.name] = sender
        hosts[receiver.name] = receiver
        connect(sim, sender, sw1, rate, link_delay)
        connect(sim, sw1, sender, rate, link_delay)
        connect(sim, receiver, sw2, rate, link_delay)
        connect(sim, sw2, receiver, rate, link_delay)
        sw1.add_route(sender.name, sender.name)
        sw2.add_route(receiver.name, receiver.name)
        sw1.add_route(receiver.name, "sw2")
        sw2.add_route(sender.name, "sw1")

    return Network(sim=sim, hosts=hosts,
                   switches={"sw1": sw1, "sw2": sw2},
                   registry=FlowRegistry(), bottleneck_port=bottleneck,
                   mtu_bytes=mtu_bytes, link_rate_bytes=rate,
                   engine=engine)


def install_flow(net: Network, protocol: str, src: str, dst: str,
                 size_bytes: Optional[int], start_time: float,
                 params: object,
                 on_complete: Optional[Callable[[Flow], None]] = None,
                 **sender_kwargs) -> Tuple[object, object]:
    """Create a flow and its sender/receiver agents on ``net``.

    ``params`` must match the protocol:
    :class:`~repro.core.params.DCQCNParams` for ``"dcqcn"``,
    :class:`~repro.core.params.TimelyParams` for ``"timely"``,
    :class:`~repro.core.params.PatchedTimelyParams` for
    ``"patched_timely"``, and :class:`~repro.core.params.DCTCPParams`
    for the window-based ``"dctcp"`` baseline.  Extra keyword
    arguments reach the sender constructor (``pacing=...``,
    ``initial_rate=...``).

    The sender is started immediately (its first emission is scheduled
    at ``start_time``).  Returns ``(sender, receiver)``.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")
    src_host = net.hosts[src]
    dst_host = net.hosts[dst]
    flow = net.registry.create(src, dst, size_bytes, start_time)
    line_rate = net.link_rate_bytes

    if protocol == "dcqcn":
        if not isinstance(params, DCQCNParams):
            raise TypeError(f"dcqcn needs DCQCNParams, got {type(params)}")
        sender = DCQCNSender(net.sim, src_host, flow, params,
                             line_rate=line_rate, **sender_kwargs)
        receiver = DCQCNReceiver(net.sim, dst_host, flow, params,
                                 on_complete=on_complete)
    elif protocol == "timely":
        if not isinstance(params, TimelyParams):
            raise TypeError(f"timely needs TimelyParams, got {type(params)}")
        sender = TimelySender(net.sim, src_host, flow, params,
                              line_rate=line_rate, **sender_kwargs)
        receiver = TimelyReceiver(net.sim, dst_host, flow, params,
                                  on_complete=on_complete)
    elif protocol == "dctcp":
        if not isinstance(params, DCTCPParams):
            raise TypeError(f"dctcp needs DCTCPParams, got {type(params)}")
        sender = DCTCPSender(net.sim, src_host, flow,
                             mtu_bytes=params.mtu_bytes, g=params.g,
                             initial_window_packets=(
                                 params.initial_window_packets),
                             **sender_kwargs)
        receiver = DCTCPReceiver(net.sim, dst_host, flow,
                                 on_complete=on_complete)
    else:
        if not isinstance(params, PatchedTimelyParams):
            raise TypeError(
                f"patched_timely needs PatchedTimelyParams, got "
                f"{type(params)}")
        sender = PatchedTimelySender(net.sim, src_host, flow, params,
                                     line_rate=line_rate, **sender_kwargs)
        receiver = PatchedTimelyReceiver(net.sim, dst_host, flow, params,
                                         on_complete=on_complete)

    from repro.obs.forensics import active_ledger
    ledger = active_ledger()
    if ledger is not None:
        # Registered before start() so even the first emission is
        # attributed; attach_flow_forensics must already have wired
        # the net (it sets the ledger's current context).
        ledger.register_flow(flow, protocol=protocol, sender=sender)
        sender.ledger = ledger

    sender.start()
    net.senders[flow.flow_id] = sender
    net.receivers[flow.flow_id] = receiver
    return sender, receiver
