"""Measurement probes: queue occupancy, flow throughput, utilization."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.link import Port
from repro.sim.packet import Packet


class QueueMonitor:
    """Samples a port's egress occupancy on a fixed interval."""

    def __init__(self, sim: Simulator, port: Port, interval: float,
                 start: float = 0.0, stop: Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.port = port
        self.interval = interval
        self.stop_time = stop
        self.times: List[float] = []
        self.occupancy_bytes: List[int] = []
        sim.schedule_at(max(start, sim.now), self._sample)

    def _sample(self) -> None:
        if self.stop_time is not None and self.sim.now > self.stop_time:
            return
        self.times.append(self.sim.now)
        self.occupancy_bytes.append(self.port.occupancy_bytes)
        self.sim.schedule(self.interval, self._sample)

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(times, occupancy_bytes)`` as numpy arrays."""
        return np.asarray(self.times), np.asarray(self.occupancy_bytes,
                                                  dtype=float)

    def tail_mean_bytes(self, window: float) -> float:
        """Mean occupancy over the final ``window`` seconds sampled."""
        times, occ = self.as_arrays()
        if times.size == 0:
            raise ValueError("no samples recorded")
        mask = times >= times[-1] - window
        return float(np.mean(occ[mask]))

    def tail_std_bytes(self, window: float) -> float:
        """Occupancy standard deviation over the final window."""
        times, occ = self.as_arrays()
        if times.size == 0:
            raise ValueError("no samples recorded")
        mask = times >= times[-1] - window
        return float(np.std(occ[mask]))


class RateMonitor:
    """Samples sender rates (the protocol's R_C) on a fixed interval.

    ``stop=`` bounds the sampling (same convention as
    :class:`QueueMonitor`): past that time the monitor stops
    rescheduling itself, so a monitor on a long run doesn't keep the
    event heap populated -- or the watchdog event budget draining --
    after the window of interest.
    """

    def __init__(self, sim: Simulator, senders: Dict[str, object],
                 interval: float, stop: Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.senders = dict(senders)
        self.interval = interval
        self.stop_time = stop
        self.times: List[float] = []
        self.rates: Dict[str, List[float]] = {
            label: [] for label in self.senders}
        sim.schedule(0.0, self._sample)

    def _sample(self) -> None:
        if self.stop_time is not None and self.sim.now > self.stop_time:
            return
        self.times.append(self.sim.now)
        for label, sender in self.senders.items():
            self.rates[label].append(sender.rate)
        self.sim.schedule(self.interval, self._sample)

    def series(self, label: str) -> "tuple[np.ndarray, np.ndarray]":
        """``(times, rates_bytes_per_s)`` for one sender."""
        return (np.asarray(self.times),
                np.asarray(self.rates[label], dtype=float))

    def final_rates(self) -> Dict[str, float]:
        """Last sampled rate per sender, bytes/s."""
        return {label: values[-1] for label, values in self.rates.items()
                if values}


class ThroughputMeter:
    """Counts delivered bytes at a receive point over windows.

    Attach via ``port.on_transmit`` of the link feeding the receiver,
    or call :meth:`record` from receiver code.
    """

    def __init__(self, sim: Simulator, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.sim = sim
        self.window = window
        self._window_start = 0.0
        self._window_bytes = 0
        self.times: List[float] = []
        self.throughput_bytes_per_s: List[float] = []

    def record(self, packet: Packet) -> None:
        """Account one delivered packet, rolling windows as needed."""
        while self.sim.now >= self._window_start + self.window:
            self.times.append(self._window_start + self.window)
            self.throughput_bytes_per_s.append(
                self._window_bytes / self.window)
            self._window_start += self.window
            self._window_bytes = 0
        self._window_bytes += packet.size_bytes

    def flush(self) -> None:
        """Emit the final, possibly partial window.

        :meth:`record` only closes a window when a *later* packet
        arrives, so without this the bytes delivered since the last
        window boundary -- up to one full window of traffic at the
        very end of a run -- would never appear in
        :meth:`as_arrays`.  The partial window is normalized by the
        elapsed fraction (its true duration), not the full window, so
        its rate is comparable to the complete ones.  Calling flush
        with nothing accumulated is a no-op; recording after a flush
        starts a fresh window.
        """
        elapsed = self.sim.now - self._window_start
        if self._window_bytes == 0 or elapsed <= 0:
            return
        self.times.append(self.sim.now)
        self.throughput_bytes_per_s.append(
            self._window_bytes / elapsed)
        self._window_start = self.sim.now
        self._window_bytes = 0

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(window_end_times, bytes_per_second)`` arrays."""
        return (np.asarray(self.times),
                np.asarray(self.throughput_bytes_per_s, dtype=float))
