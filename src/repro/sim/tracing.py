"""Packet tracing -- the simulator's debugging eyes.

ns-3 ships pcap/ascii traces; this is the equivalent for this
simulator: a :class:`PacketTracer` hooks one or more ports'
``on_transmit`` (and its batched companion ``on_transmit_window``)
and records ``(time, port, packet)`` events, with optional kind/flow
filters so a DCQCN debugging session can watch, say, only the CNPs
crossing the bottleneck.  Tail drops are recorded too, via
``on_drop``, flagged inline so a trace shows losses and not just
departures.

The tracer chains politely: if a port already has a hook installed
(PFC accounting at switches), the tracer calls it first, so tracing
never changes behaviour.  Because it chains the window hook as well,
attaching a tracer does not kick a ``batch_window`` port off the
vectorized path -- and the per-packet finish stamps of a window are
bit-identical to the scalar recurrence, so the recorded stream is
the same either way.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.link import Port
from repro.sim.packet import Packet, PacketBatch


class TraceEvent:
    """One packet leaving one port.

    A ``__slots__`` record rather than a dataclass: traces on a busy
    port allocate one of these per departing packet, and the slotted
    layout keeps a 100k-event trace tens of megabytes smaller.
    """

    __slots__ = ("time", "port_name", "kind", "flow_id", "seq",
                 "size_bytes", "ecn_marked", "sent_time", "dropped")

    def __init__(self, time: float, port_name: str, kind: str,
                 flow_id: int, seq: int, size_bytes: int,
                 ecn_marked: bool, sent_time: Optional[float] = None,
                 dropped: bool = False):
        self.time = time
        self.port_name = port_name
        self.kind = kind
        self.flow_id = flow_id
        self.seq = seq
        self.size_bytes = size_bytes
        self.ecn_marked = ecn_marked
        #: Emission timestamp the sender stamped, if any -- makes
        #: ``time - sent_time`` the sender-to-this-port latency.
        self.sent_time = sent_time
        #: True when this event is a tail drop at the port's FIFO
        #: (the packet never departed; ``time`` is the drop instant).
        self.dropped = dropped

    @property
    def latency(self) -> Optional[float]:
        """Sender-to-this-port latency, seconds (None if unstamped)."""
        if self.sent_time is None:
            return None
        return self.time - self.sent_time

    def __str__(self) -> str:
        mark = " CE" if self.ecn_marked else ""
        drop = " DROP" if self.dropped else ""
        return (f"{self.time * 1e6:10.2f}us {self.port_name:<18} "
                f"{self.kind:<5} flow={self.flow_id} seq={self.seq} "
                f"{self.size_bytes}B{mark}{drop}")


class PacketTracer:
    """Records departures from the attached ports.

    Parameters
    ----------
    sim:
        The simulation clock (timestamps come from it).
    kinds:
        Packet kinds to record (None = all).
    flow_ids:
        Flow ids to record (None = all).
    max_events:
        Hard cap; recording silently stops past it so a forgotten
        tracer cannot eat the machine on a long run.
    """

    def __init__(self, sim: Simulator,
                 kinds: Optional[Sequence[str]] = None,
                 flow_ids: Optional[Iterable[int]] = None,
                 max_events: int = 100_000):
        if max_events < 1:
            raise ValueError(
                f"max_events must be >= 1, got {max_events}")
        self.sim = sim
        self.kinds = set(kinds) if kinds is not None else None
        self.flow_ids = set(flow_ids) if flow_ids is not None else None
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        #: Events past the ``max_events`` cap -- data lost.
        self.dropped_events = 0
        #: Events the kind/flow filters rejected -- deliberately
        #: excluded, not lost.  Counted separately from
        #: :attr:`dropped_events` so "the trace is truncated" and
        #: "the filters are working" are distinguishable.
        self.filtered_events = 0

    def attach(self, port: Port) -> None:
        """Hook a port, chaining any existing hooks.

        All three departure surfaces are chained: ``on_transmit``
        (scalar path), ``on_transmit_window`` (batched path -- so
        tracing does not silently disable PR 7's vectorized windows),
        and ``on_drop`` (tail losses, recorded with ``dropped=True``).
        """
        previous = port.on_transmit

        def hook(packet: Packet, _prev=previous, _port=port) -> None:
            if _prev is not None:
                _prev(packet)
            self._record(_port, packet, self.sim.now)

        port.on_transmit = hook

        previous_window = port.on_transmit_window

        def window_hook(payload, finishes, _prev=previous_window,
                        _port=port) -> None:
            if _prev is not None:
                _prev(payload, finishes)
            self._record_window(_port, payload, finishes)

        port.on_transmit_window = window_hook

        previous_drop = port.on_drop

        def drop_hook(packet: Packet, _prev=previous_drop,
                      _port=port) -> None:
            if _prev is not None:
                _prev(packet)
            self._record(_port, packet, self.sim.now, dropped=True)

        port.on_drop = drop_hook

    def _record(self, port: Port, packet: Packet, time: float,
                dropped: bool = False) -> None:
        if self.kinds is not None and packet.kind not in self.kinds:
            self.filtered_events += 1
            return
        if self.flow_ids is not None and \
                packet.flow_id not in self.flow_ids:
            self.filtered_events += 1
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(
            time=time,
            port_name=port.name,
            kind=packet.kind,
            flow_id=packet.flow_id,
            seq=packet.seq,
            size_bytes=packet.size_bytes,
            ecn_marked=packet.ecn_marked,
            sent_time=packet.sent_time,
            dropped=dropped))

    def _record_window(self, port: Port, payload, finishes) -> None:
        """Record a serialized window's departures.

        List payloads (queue drains) reuse the per-packet recorder
        with each packet's exact finish stamp.  ``PacketBatch``
        payloads are read column-wise -- no materialization -- and
        produce the same events the scalar path would have.
        """
        if not isinstance(payload, PacketBatch):
            for i, packet in enumerate(payload):
                self._record(port, packet, float(finishes[i]))
            return
        if self.kinds is not None and payload.kind not in self.kinds:
            self.filtered_events += payload.count
            return
        if self.flow_ids is not None and \
                payload.flow_id not in self.flow_ids:
            self.filtered_events += payload.count
            return
        sent = payload.sent_time
        for i in range(payload.count):
            if len(self.events) >= self.max_events:
                self.dropped_events += payload.count - i
                return
            self.events.append(TraceEvent(
                time=float(finishes[i]),
                port_name=port.name,
                kind=payload.kind,
                flow_id=payload.flow_id,
                seq=int(payload.seq[i]),
                size_bytes=int(payload.size_bytes[i]),
                ecn_marked=bool(payload.ecn_marked[i]),
                sent_time=None if sent is None else float(sent[i])))

    def marked_fraction(self) -> float:
        """Fraction of recorded data packets carrying a CE mark.

        Returns ``float("nan")`` when no data packets were recorded:
        "no data" is an expected state (a filter excluded ``data``,
        or the run produced none), and NaN propagates harmlessly
        through downstream statistics, whereas raising forced every
        caller computing mark rates over a sweep to wrap this in
        try/except.  Check with ``math.isnan`` when the distinction
        matters.
        """
        data = [e for e in self.events
                if e.kind == "data" and not e.dropped]
        if not data:
            return float("nan")
        return sum(e.ecn_marked for e in data) / len(data)

    def interarrival_times(self) -> "list[float]":
        """Gaps between consecutive recorded events, seconds."""
        return [b.time - a.time
                for a, b in zip(self.events, self.events[1:])]

    def latencies(self, since: float = 0.0) -> "list[float]":
        """Sender-to-port latencies of stamped events, seconds."""
        return [event.latency for event in self.events
                if event.latency is not None and event.time >= since]

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable trace listing (first ``limit`` events)."""
        selected = self.events if limit is None else \
            self.events[:limit]
        lines = [str(event) for event in selected]
        if self.dropped_events:
            lines.append(f"... ({self.dropped_events} events beyond "
                         f"the {self.max_events}-event cap)")
        return "\n".join(lines)
