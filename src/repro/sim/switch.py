"""Output-queued switch with per-port AQM and optional PFC.

Forwarding is static: a FIB maps destination host names to egress
ports (experiments build small fixed topologies, Fig. 13's dumbbell
being the largest).  Each egress port owns its FIFO and marker (see
:mod:`repro.sim.link`); marking therefore reflects that port's queue,
exactly the per-egress-queue marking of Eq. 3.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet, PacketBatch
from repro.sim.pfc import PFCController


class Switch:
    """A named switch: ports toward neighbours plus a destination FIB."""

    def __init__(self, sim: Simulator, name: str,
                 pfc: Optional[PFCController] = None):
        self.sim = sim
        self.name = name
        self.pfc = pfc
        #: Egress ports keyed by neighbour (next-hop device) name.
        self.ports: Dict[str, Port] = {}
        #: Destination host name -> next-hop neighbour name.
        self.fib: Dict[str, str] = {}
        self.packets_forwarded = 0

    def attach_port(self, neighbour: str, port: Port) -> None:
        """Register the egress port toward ``neighbour``."""
        if neighbour in self.ports:
            raise ValueError(
                f"{self.name} already has a port toward {neighbour}")
        self.ports[neighbour] = port
        if self.pfc is not None:
            hook = self._make_egress_hook()
            port.on_transmit = hook
            # A dropped packet also leaves the buffer; without this the
            # PFC byte accounting would leak on every overflow.
            port.on_drop = hook

    def _make_egress_hook(self):
        def hook(packet: Packet) -> None:
            if packet.pfc_ingress is not None:
                self.pfc.on_egress(packet.pfc_ingress, packet.size_bytes)
        return hook

    def add_route(self, dst_host: str, neighbour: str) -> None:
        """Route packets destined to ``dst_host`` via ``neighbour``."""
        if neighbour not in self.ports:
            raise ValueError(
                f"{self.name} has no port toward {neighbour}; attach it "
                "before adding routes")
        self.fib[dst_host] = neighbour

    def port_for(self, dst_host: str) -> Port:
        """The egress port a packet to ``dst_host`` will take."""
        try:
            neighbour = self.fib[dst_host]
        except KeyError:
            raise KeyError(
                f"{self.name} has no route to {dst_host!r}; known: "
                f"{sorted(self.fib)}")
        return self.ports[neighbour]

    def receive(self, packet: Packet, ingress: Optional[str] = None) -> None:
        """Forward an arriving packet toward its destination."""
        if self.pfc is not None and ingress is not None:
            packet.pfc_ingress = ingress
            self.pfc.on_ingress(ingress, packet.size_bytes)
        else:
            packet.pfc_ingress = None
        self.packets_forwarded += 1
        self.port_for(packet.dst).send(packet)

    def receive_window(self, payload, arrival_times,
                       ingress: Optional[str] = None) -> None:
        """Forward a delivered window (batched fast path).

        A batch shares one destination, so forwarding is a single FIB
        lookup plus a batched hand-off to the egress port.  PFC
        switches need per-packet buffer accounting, so they (and plain
        packet-object windows) take the exact per-packet path instead;
        ports never offer windows to a PFC switch in the first place
        because its egress hooks disable their eligibility check.
        """
        if isinstance(payload, PacketBatch) and self.pfc is None:
            self.packets_forwarded += payload.count
            self.port_for(payload.dst).send_batch(payload)
            return
        packets = payload.packets() if isinstance(payload, PacketBatch) \
            else payload
        for packet in packets:
            self.receive(packet, ingress)


def connect(sim: Simulator, src_device, dst_device,
            rate_bytes_per_s: float, delay: float,
            marker: Optional[object] = None,
            marking_point: str = "egress",
            capacity_bytes: Optional[int] = None,
            priority_control: bool = False,
            batch_window: Optional[int] = None) -> Port:
    """Wire ``src_device -> dst_device`` and register the port.

    Works for host->switch, switch->switch and switch->host edges;
    ``src_device`` must expose either ``attach_port`` (switch) or an
    assignable ``port`` attribute (host).  Returns the created port.
    """
    link = Link(sim, delay, dst_device,
                ingress_label=getattr(src_device, "name", None))
    port = Port(sim, rate_bytes_per_s, link, marker=marker,
                marking_point=marking_point, capacity_bytes=capacity_bytes,
                name=f"{getattr(src_device, 'name', 'dev')}->"
                     f"{getattr(dst_device, 'name', 'dev')}",
                priority_control=priority_control,
                batch_window=batch_window)
    if hasattr(src_device, "attach_port"):
        src_device.attach_port(getattr(dst_device, "name"), port)
    else:
        src_device.port = port
    return port
