"""Declarative fault injection for the packet simulator.

The paper's protocols live or die by their feedback signals -- CNPs
for DCQCN, RTT samples for TIMELY -- and Section 5.2 studies what
happens when those signals degrade.  This module makes the degraded
fabric a first-class, *declarative* experiment input: a
:class:`FaultPlan` lists faults (link flaps, seeded packet loss or
corruption, feedback delay/jitter) and a :class:`FaultInjector`
realizes them against a built topology without modifying any device
code.

Injection point
---------------
Every fault acts at the *link*: the injector replaces ``port.link``
with a :class:`FaultyLink` proxy that consults the active rules on
each delivery.  Ports, switches, PFC accounting and the
``on_transmit``/``on_drop`` hook chains are untouched, so

* an **empty plan installs nothing** -- runs are bit-identical to a
  simulation without the fault layer, and
* loss/corruption happen *after* serialization and PFC byte release
  (the packet really crossed the egress), which is where wire faults
  live in real fabrics.

Determinism: the injector draws randomness only when a stochastic rule
is actually active for a matching packet, from one seeded
``numpy`` Generator (optionally shared with the AQM markers via
``rng=``), so a whole faulty simulation replays from a single seed.

Faults reference ports by :attr:`~repro.sim.link.Port.name`, the
``"<src>-><dst>"`` labels assigned by :func:`repro.sim.switch.connect`
(e.g. ``"sw->recv"``, ``"leaf0->spine1"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet

#: Link-flap handling of packets that reach a downed link.
FLAP_MODES = ("drop", "hold")


# -- fault declarations -------------------------------------------------------


@dataclass(frozen=True)
class LinkFlap:
    """Take a link down at ``start`` for ``duration`` seconds.

    ``mode="drop"`` black-holes packets that reach the downed link
    (clean fiber cut); ``mode="hold"`` parks them, preserving order,
    and releases the backlog when the link recovers (a transient
    switch-firmware stall).  ``period``/``count`` repeat the flap for
    frequency sweeps.  ``reroute=True`` asks the injector to invoke
    its topology callbacks on each transition -- used with
    :func:`repro.sim.leaf_spine.reroute_around_spine` so a leaf-spine
    fabric steers new packets onto surviving spines while the link is
    dark.
    """

    port: str
    start: float
    duration: float
    mode: str = "drop"
    period: Optional[float] = None
    count: int = 1
    reroute: bool = False

    def __post_init__(self):
        if self.mode not in FLAP_MODES:
            raise ValueError(
                f"mode must be one of {FLAP_MODES}, got {self.mode!r}")
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                f"need start >= 0 and duration > 0, got "
                f"start={self.start}, duration={self.duration}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.count > 1 and (self.period is None
                               or self.period <= self.duration):
            raise ValueError(
                "repeating flaps need period > duration, got "
                f"period={self.period}, duration={self.duration}")


@dataclass(frozen=True)
class PacketLoss:
    """Seeded Bernoulli loss (or corruption) on one port's link.

    ``kinds`` filters which packets are at risk -- ``("cnp",)`` models
    lossy feedback while data sails through, ``("ack",)`` starves
    TIMELY of RTT samples, ``None`` afflicts everything.  With
    ``corrupt=True`` the packet is delivered but flagged corrupted;
    the destination NIC discards it after it has consumed wire and
    buffer resources (the more expensive failure).
    """

    port: str
    rate: float
    kinds: Optional[Tuple[str, ...]] = None
    start: float = 0.0
    stop: Optional[float] = None
    corrupt: bool = False

    def __post_init__(self):
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(
                f"stop ({self.stop}) must exceed start ({self.start})")

    def matches(self, packet: Packet, now: float) -> bool:
        """Whether this rule applies to ``packet`` at time ``now``."""
        if now < self.start or (self.stop is not None
                                and now >= self.stop):
            return False
        return self.kinds is None or packet.kind in self.kinds


@dataclass(frozen=True)
class FeedbackDelay:
    """Extra (optionally jittered) latency for selected packet kinds.

    The packet-level analogue of the Fig. 20 fluid jitter study:
    ``extra`` shifts every matching packet deterministically, and each
    packet additionally draws uniform extra delay in ``[0, jitter)``.
    Defaults to the feedback kinds (ACKs and CNPs), the signals whose
    staleness the paper's Section 5.2 analysis is about.
    """

    port: str
    extra: float = 0.0
    jitter: float = 0.0
    kinds: Optional[Tuple[str, ...]] = ("ack", "cnp")
    start: float = 0.0
    stop: Optional[float] = None

    def __post_init__(self):
        if self.extra < 0 or self.jitter < 0:
            raise ValueError(
                f"extra and jitter must be >= 0, got extra={self.extra}, "
                f"jitter={self.jitter}")
        if self.extra == 0 and self.jitter == 0:
            raise ValueError("need extra > 0 or jitter > 0")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(
                f"stop ({self.stop}) must exceed start ({self.start})")

    def matches(self, packet: Packet, now: float) -> bool:
        """Whether this rule applies to ``packet`` at time ``now``."""
        if now < self.start or (self.stop is not None
                                and now >= self.stop):
            return False
        return self.kinds is None or packet.kind in self.kinds


class FaultPlan:
    """An ordered schedule of faults to inject into one simulation."""

    def __init__(self, faults: Iterable[object] = ()):
        self.flaps: List[LinkFlap] = []
        self.losses: List[PacketLoss] = []
        self.delays: List[FeedbackDelay] = []
        for fault in faults:
            self.add(fault)

    def add(self, fault: object) -> "FaultPlan":
        """Append one fault; returns self for chaining."""
        if isinstance(fault, LinkFlap):
            self.flaps.append(fault)
        elif isinstance(fault, PacketLoss):
            self.losses.append(fault)
        elif isinstance(fault, FeedbackDelay):
            self.delays.append(fault)
        else:
            raise TypeError(
                f"unsupported fault type {type(fault).__name__}; expected "
                "LinkFlap, PacketLoss or FeedbackDelay")
        return self

    @property
    def is_empty(self) -> bool:
        return not (self.flaps or self.losses or self.delays)

    def ports(self) -> "set[str]":
        """Names of every port any fault references."""
        return {f.port for f in self.flaps} \
            | {f.port for f in self.losses} \
            | {f.port for f in self.delays}

    def __len__(self) -> int:
        return len(self.flaps) + len(self.losses) + len(self.delays)


# -- injection machinery ------------------------------------------------------


@dataclass
class FaultStats:
    """What the injector actually did, for reports and assertions."""

    lost_packets: int = 0
    lost_bytes: int = 0
    lost_by_kind: Dict[str, int] = field(default_factory=dict)
    corrupted_packets: int = 0
    delayed_packets: int = 0
    flap_drops: int = 0
    held_packets: int = 0
    link_downs: int = 0
    link_ups: int = 0

    def summary(self) -> str:
        return (f"lost={self.lost_packets} "
                f"corrupted={self.corrupted_packets} "
                f"delayed={self.delayed_packets} "
                f"flap_drops={self.flap_drops} "
                f"held={self.held_packets} "
                f"flaps={self.link_downs}")

    def publish_metrics(self, registry,
                        prefix: str = "sim.faults") -> None:
        """Scrape injector totals into a metrics registry."""
        from repro.obs.metrics import sanitize
        registry.counter(f"{prefix}.lost_packets_total").inc(
            self.lost_packets)
        registry.counter(f"{prefix}.lost_bytes_total").inc(
            self.lost_bytes)
        for kind, count in sorted(self.lost_by_kind.items()):
            registry.counter(
                f"{prefix}.lost_packets_total.{sanitize(kind)}"
            ).inc(count)
        registry.counter(f"{prefix}.corrupted_packets_total").inc(
            self.corrupted_packets)
        registry.counter(f"{prefix}.delayed_packets_total").inc(
            self.delayed_packets)
        registry.counter(f"{prefix}.flap_drops_total").inc(
            self.flap_drops)
        registry.counter(f"{prefix}.held_packets_total").inc(
            self.held_packets)
        registry.counter(f"{prefix}.link_downs_total").inc(
            self.link_downs)
        registry.counter(f"{prefix}.link_ups_total").inc(
            self.link_ups)


class FaultyLink:
    """Link proxy applying the active fault rules on each delivery."""

    def __init__(self, inner: Link, sim: Simulator, port_name: str,
                 injector: "FaultInjector"):
        self._inner = inner
        self.sim = sim
        self.port_name = port_name
        self.injector = injector
        self.up = True
        self.hold = False
        self._held: List[Packet] = []
        self.losses: List[PacketLoss] = []
        self.delays: List[FeedbackDelay] = []

    # Transparent passthrough of the Link surface devices rely on.
    @property
    def delay(self) -> float:
        return self._inner.delay

    @property
    def dst(self) -> object:
        return self._inner.dst

    @property
    def ingress_label(self) -> Optional[str]:
        return self._inner.ingress_label

    def deliver(self, packet: Packet) -> None:
        """Apply down/loss/delay rules, then defer to the real link."""
        stats = self.injector.stats
        if not self.up:
            if self.hold:
                self._held.append(packet)
                stats.held_packets += 1
            else:
                stats.flap_drops += 1
            return
        now = self.sim.now
        rng = self.injector.rng
        for rule in self.losses:
            if rule.matches(packet, now) and rng.random() < rule.rate:
                if rule.corrupt:
                    packet.corrupted = True
                    stats.corrupted_packets += 1
                    break  # still delivered; skip further loss rules
                stats.lost_packets += 1
                stats.lost_bytes += packet.size_bytes
                stats.lost_by_kind[packet.kind] = \
                    stats.lost_by_kind.get(packet.kind, 0) + 1
                return
        extra = 0.0
        for rule in self.delays:
            if rule.matches(packet, now):
                extra += rule.extra
                if rule.jitter > 0:
                    extra += rule.jitter * rng.random()
        if extra > 0.0:
            stats.delayed_packets += 1
            self.sim.schedule(
                extra, lambda p=packet: self._inner.deliver(p))
            return
        self._inner.deliver(packet)

    # -- flap transitions -----------------------------------------------------

    def take_down(self, hold: bool) -> None:
        """Link goes dark; arriving packets are held or dropped."""
        self.up = False
        self.hold = hold
        self.injector.stats.link_downs += 1

    def bring_up(self) -> None:
        """Link recovers; a held backlog drains in arrival order."""
        self.up = True
        self.injector.stats.link_ups += 1
        held, self._held = self._held, []
        for packet in held:
            self._inner.deliver(packet)


class FaultInjector:
    """Realizes a :class:`FaultPlan` against built topology ports.

    Parameters
    ----------
    sim:
        The simulation clock (flap transitions are scheduled on it).
    ports:
        Port-name -> :class:`~repro.sim.link.Port` map covering at
        least every port the plan references.  Use :func:`collect_ports`
        to harvest them from a :class:`~repro.sim.topology.Network`.
    plan:
        The fault schedule.  An empty plan installs nothing at all.
    rng:
        Optional shared ``numpy.random.Generator`` (the simulation-wide
        stream); falls back to a private generator from ``seed``.
    on_link_down / on_link_up:
        Topology callbacks ``fn(port_name)`` fired on each flap
        transition of a fault with ``reroute=True`` -- the hook for
        leaf-spine FIB reroutes.
    """

    def __init__(self, sim: Simulator, ports: Dict[str, Port],
                 plan: FaultPlan,
                 rng: Optional[np.random.Generator] = None,
                 seed: int = 0,
                 on_link_down: Optional[Callable[[str], None]] = None,
                 on_link_up: Optional[Callable[[str], None]] = None):
        self.sim = sim
        self.plan = plan
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.stats = FaultStats()
        self.on_link_down = on_link_down
        self.on_link_up = on_link_up
        self._links: Dict[str, FaultyLink] = {}

        missing = plan.ports() - set(ports)
        if missing:
            raise KeyError(
                f"fault plan references unknown ports {sorted(missing)}; "
                f"known: {sorted(ports)}")

        for name in sorted(plan.ports()):
            port = ports[name]
            faulty = FaultyLink(port.link, sim, name, self)
            port.link = faulty
            self._links[name] = faulty
        for loss in plan.losses:
            self._links[loss.port].losses.append(loss)
        for delay in plan.delays:
            self._links[delay.port].delays.append(delay)
        for flap in plan.flaps:
            self._schedule_flap(flap)

    def link_is_up(self, port_name: str) -> bool:
        """Current state of an injected link (True for untouched ports)."""
        link = self._links.get(port_name)
        return True if link is None else link.up

    def publish_metrics(self, registry,
                        prefix: str = "sim.faults") -> None:
        """Scrape what the injector did (see :class:`FaultStats`)."""
        self.stats.publish_metrics(registry, prefix=prefix)
        registry.gauge(f"{prefix}.links_down").set(
            sum(1 for link in self._links.values() if not link.up))

    def _log_transition(self, event: str, port_name: str) -> None:
        """Append a fault event to the active run log, if any.

        Flap transitions are rare (a handful per run), so consulting
        the ambient telemetry here costs nothing measurable and saves
        every experiment from plumbing a log handle through.
        """
        from repro.obs import telemetry as _telemetry
        active = _telemetry.current()
        if active is not None:
            active.run_log.fault(event, port=port_name,
                                 sim_time_s=self.sim.now)

    def _schedule_flap(self, flap: LinkFlap) -> None:
        link = self._links[flap.port]
        for i in range(flap.count):
            offset = flap.start + (flap.period or 0.0) * i
            self.sim.schedule_at(
                offset, lambda: self._down(link, flap))
            self.sim.schedule_at(
                offset + flap.duration, lambda: self._up(link, flap))

    def _down(self, link: FaultyLink, flap: LinkFlap) -> None:
        link.take_down(hold=flap.mode == "hold")
        self._log_transition("link_down", link.port_name)
        if flap.reroute and self.on_link_down is not None:
            self.on_link_down(link.port_name)

    def _up(self, link: FaultyLink, flap: LinkFlap) -> None:
        link.bring_up()
        self._log_transition("link_up", link.port_name)
        if flap.reroute and self.on_link_up is not None:
            self.on_link_up(link.port_name)


def collect_ports(network: object) -> Dict[str, Port]:
    """Harvest every port of a built topology, keyed by port name.

    Works on any object with ``hosts`` (name -> Host with ``.port``)
    and ``switches`` (name -> Switch with ``.ports``) mappings --
    i.e. :class:`repro.sim.topology.Network` from any builder.
    """
    ports: Dict[str, Port] = {}
    for host in getattr(network, "hosts", {}).values():
        if getattr(host, "port", None) is not None:
            ports[host.port.name] = host.port
    for switch in getattr(network, "switches", {}).values():
        for port in switch.ports.values():
            ports[port.name] = port
    return ports


def install(network: object, plan: FaultPlan,
            rng: Optional[np.random.Generator] = None,
            seed: int = 0,
            on_link_down: Optional[Callable[[str], None]] = None,
            on_link_up: Optional[Callable[[str], None]] = None
            ) -> FaultInjector:
    """Convenience: build a :class:`FaultInjector` for a ``Network``."""
    return FaultInjector(network.sim, collect_ports(network), plan,
                         rng=rng, seed=seed,
                         on_link_down=on_link_down, on_link_up=on_link_up)
