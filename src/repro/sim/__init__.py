"""Packet-level discrete-event simulator (the ns-3 substitute).

Build a topology (:mod:`repro.sim.topology`,
:mod:`repro.sim.parking_lot`, :mod:`repro.sim.leaf_spine`), install
protocol agents (:mod:`repro.sim.protocols`), attach monitors
(:mod:`repro.sim.monitors`), and run the
:class:`~repro.sim.engine.Simulator`.

For degraded-fabric studies, declare a
:class:`~repro.sim.faults.FaultPlan` (link flaps, seeded packet
loss/corruption, feedback delay) and install it with
:func:`repro.sim.faults.install`; an
:class:`~repro.sim.invariants.InvariantMonitor` audits conservation,
PFC pairing and deadlock while the engine's watchdogs
(``max_events``/``max_wall_seconds``) abort runaway runs with a
structured :class:`~repro.sim.engine.SimulationAborted`.
"""
