"""Packet-level discrete-event simulator (the ns-3 substitute).

Build a topology (:mod:`repro.sim.topology`,
:mod:`repro.sim.parking_lot`, :mod:`repro.sim.leaf_spine`), install
protocol agents (:mod:`repro.sim.protocols`), attach monitors
(:mod:`repro.sim.monitors`), and run the
:class:`~repro.sim.engine.Simulator`.
"""
