"""Calendar-queue event scheduler for near-monotone event horizons.

The binary heap in :mod:`repro.sim.engine` pays two ``O(log n)``
sift operations per event.  Simulation workloads here are *near
monotone*: pacing timers, serialization finishes and propagation
deliveries are almost always scheduled a short, bounded delay ahead
of the clock, and many land close together.  A calendar queue
exploits that shape: events are appended O(1) into a coarse time
bucket, and only the imminent bucket is ever sorted -- once, as a
batch, by timsort in C.

Structure (a dict-keyed calendar with ladder-style adaptation):

* ``_buckets`` -- ``{int(time / width): [entries...]}``.  Push is
  an integer divide, a dict lookup and a ``list.append``.
* ``_keyheap`` -- a ``heapq`` of *occupied bucket keys*, one push
  per bucket creation (not per event), so advancing skips idle gaps
  in ``O(log #buckets)`` instead of scanning empty slots the way
  classic array calendars do, and with no year-wrap bookkeeping.
* ``_near`` -- the bucket currently being served, sorted once when
  opened, consumed by advancing ``_cursor`` (no pops, no memmove).
  A push *into* the open window (a pacing timer shorter than the
  bucket width) merges with ``bisect.insort``; the insertion point
  is bounded below by the cursor since nothing schedules into the
  past.
* Width adapts where the batch size is known: a bucket that opens
  oversized halves the width (rehash; geometric, so rare), a long
  run of under-filled buckets doubles it, and an open window that
  keeps absorbing pushes is split with its tail handed back to the
  calendar -- the ladder-queue move that keeps ``insort`` memmoves
  bounded.

Correctness does not depend on floating-point bucket arithmetic.
``t -> int(t / width)`` is *monotone* (float division and truncation
both are), so serving buckets in key order and each bucket in
``(time, seq)`` order is exactly the global ``(time, seq)`` order,
ulp wobble at bucket boundaries notwithstanding.  Pushes route into
the open window only when ``time <= `` the window's last entry --
a direct time comparison, consistent with the key order by the same
monotonicity.  Equal timestamps always share a bucket, and the
engine's sequence numbers break ties exactly as the heap does: the
calendar backend is **bit-for-bit order-equivalent** to the heap
(property-tested in ``tests/test_scheduler.py``), not approximately
so.

Cancellation stays lazy (the engine skips ``event.cancelled`` at
serve time), and ``__len__`` counts cancelled-but-unserved entries,
matching ``Simulator.pending_events`` semantics on the heap.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Tuple

#: Bucket-size adaptation targets.  A bucket opening with more than
#: SPAN_MAX_BATCH entries (of more than one timestamp) halves the
#: width; a long run of buckets below SPAN_MIN_BATCH doubles it.
SPAN_MIN_BATCH = 16
SPAN_MAX_BATCH = 4096

#: Unserved open-window length at which a push splits the window and
#: returns the tail to the calendar (see :meth:`CalendarScheduler.push`).
#: This bounds the ``insort`` memmove a push into the open window can
#: pay, so it is deliberately much smaller than the sort-batch target
#: (ladder queues keep their bottom rung small for the same reason);
#: a window that receives no pushes never pays a split, however big.
NEAR_SPLIT_LIMIT = 512

#: Consecutive under-filled buckets tolerated before the width grows.
GROW_PATIENCE = 32

#: Floor for the adaptive width, seconds.  Sub-nanosecond buckets
#: would push ``t / width`` beyond exact-integer float range for
#: typical sim times; simulations here resolve microseconds.
WIDTH_MIN_SECONDS = 1e-9

#: Initial bucket width, seconds.  64 us covers a serialization time
#: plus propagation on the paper's 10-40 Gbps fabrics, so steady-state
#: traffic lands a bucket or two ahead of the one being served.
DEFAULT_WIDTH = 64e-6


class CalendarScheduler:
    """Pending-event set with calendar-queue cost profile.

    The public surface mirrors what the engine loop needs: ``push``,
    ``peek``/``pop`` (tests, slow paths), ``__len__``, and the
    internals ``_near``/``_cursor``/``_advance`` that
    :meth:`repro.sim.engine.Simulator.run` drives directly to keep
    per-event overhead at heap-loop levels.  ``_near`` is guaranteed
    to stay the *same list object* for the scheduler's lifetime, so
    the run loop may bind it once.
    """

    __slots__ = ("_near", "_cursor", "_width", "_buckets", "_keyheap",
                 "_count", "_small_run", "_split_at", "rehashes",
                 "spills")

    def __init__(self, width: float = DEFAULT_WIDTH):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        #: Open (currently served) window, sorted; stable list object.
        self._near: List[tuple] = []
        self._cursor = 0
        self._width = width
        self._buckets: Dict[int, List[tuple]] = {}
        self._keyheap: List[int] = []
        #: Entries held in ``_buckets`` (``__len__`` without iteration).
        self._count = 0
        self._small_run = 0
        #: Unserved-window length that triggers the next split attempt.
        #: Normally NEAR_SPLIT_LIMIT; doubled past the current length
        #: when a split fails (giant equal-time run), so a failed
        #: attempt's backward scan is amortized against the pushes
        #: that grew the window since the last one.
        self._split_at = NEAR_SPLIT_LIMIT
        #: Lifetime width adaptations (halvings, doublings, ladder
        #: shrinks).  Plain ints bumped on the cold paths only; the
        #: engine publishes them as ``sim.scheduler.*`` gauges at the
        #: end of each run (aggregation-point rule).
        self.rehashes = 0
        #: Lifetime open-window splits (overflow spills back into the
        #: calendar).
        self.spills = 0

    def __len__(self) -> int:
        return len(self._near) - self._cursor + self._count

    @property
    def width(self) -> float:
        """Current adaptive bucket width, seconds (introspection)."""
        return self._width

    def stats(self) -> Dict[str, float]:
        """Internals snapshot for telemetry: width, wheel occupancy
        (occupied buckets), lifetime rehash/spill counts."""
        return {"width_s": self._width,
                "buckets": len(self._buckets),
                "rehashes": self.rehashes,
                "spills": self.spills,
                "pending": len(self)}

    def push(self, entry: Tuple[float, int, object]) -> None:
        """Add ``(time, seq, event)``; O(1) except into the open window.

        An entry joins the open window when it precedes (or ties,
        losing on seq) something already there, or when it precedes
        every occupied bucket -- ``keyheap[0]`` is always the true
        minimum occupied key, so a lone self-rescheduling chain
        (pacing timer, serialization loop) runs entirely through
        window appends without ever touching a bucket.  Both tests
        are order-exact by key monotonicity in time.  Nothing can be
        scheduled before the entry being served (time >= now, seq is
        monotone), so the insertion point is at or after the cursor
        -- passed as the bisect lower bound.
        """
        near = self._near
        cursor = self._cursor
        if cursor > NEAR_SPLIT_LIMIT and cursor * 2 >= len(near):
            # Compact the served prefix: unlike the heap, serving
            # advances a cursor instead of popping, so a window fed
            # by its own callbacks would otherwise retain every
            # served entry for the length of the run.  Only when the
            # prefix dominates the list, so the O(len) delete is
            # amortized O(1) against the serves that built it up.
            del near[:cursor]
            self._cursor = cursor = 0
            # Whatever giant equal-time run backed the split trigger
            # off has been served and compacted away; re-arm it.
            self._split_at = NEAR_SPLIT_LIMIT
        if near and entry[0] <= near[-1][0]:
            insort(near, entry, cursor)
            if len(near) - cursor > self._split_at:
                self._split_window()
            return
        # Past here the entry is strictly later than everything in the
        # window, so joining the window is a plain append -- the only
        # question is whether it should go to a bucket instead.
        keyheap = self._keyheap
        if not keyheap:
            near.append(entry)
            return
        key = int(entry[0] / self._width)
        if key < keyheap[0]:
            near.append(entry)
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [entry]
            heappush(keyheap, key)
        else:
            bucket.append(entry)
        self._count += 1

    def push_batch(self, entries) -> None:
        """Add many entries at once (batched link deliveries)."""
        push = self.push
        for entry in entries:
            push(entry)

    def _advance(self) -> bool:
        """Open the next occupied bucket; False when nothing is pending.

        Pops bucket keys in time order, sorts the winning bucket into
        the (stable) ``_near`` list.  Width adaptation happens here,
        where the batch size is known: an oversized multi-timestamp
        bucket halves the width and rehashes; a long run of tiny
        batches doubles it.
        """
        near = self._near
        del near[:]
        self._cursor = 0
        self._split_at = NEAR_SPLIT_LIMIT
        while self._keyheap:
            key = heappop(self._keyheap)
            bucket = self._buckets.pop(key, None)
            if bucket is None:
                continue  # stale key left behind by a rehash
            if len(bucket) > SPAN_MAX_BATCH:
                tmin = tmax = bucket[0][0]
                for entry in bucket:
                    t = entry[0]
                    if t < tmin:
                        tmin = t
                    elif t > tmax:
                        tmax = t
                if tmax != tmin:
                    # Oversized and splittable: jump the width straight
                    # to the bucket's observed density (halving one
                    # step at a time would pay an O(n) rehash per step
                    # for tightly clustered buckets).  If the width is
                    # already at its floor, fall through and serve the
                    # batch as-is rather than loop.
                    new_width = max(
                        min(self._width * 0.5,
                            (tmax - tmin) / (SPAN_MAX_BATCH // 4)),
                        WIDTH_MIN_SECONDS)
                    if new_width != self._width:
                        self._buckets[key] = bucket
                        self._rehash(new_width)
                        continue
            self._count -= len(bucket)
            bucket.sort()
            near.extend(bucket)
            if len(bucket) < SPAN_MIN_BATCH and self._buckets:
                self._small_run += 1
                if self._small_run > GROW_PATIENCE:
                    self._rehash(self._width * 2.0)
            else:
                self._small_run = 0
            return True
        return False

    def _split_window(self) -> None:
        """Hand the open window's tail back to the calendar.

        Without this, a window opened under light load would absorb
        every later push that precedes its last entry, and ``insort``
        into the ever-growing window would turn quadratic under dense
        traffic.  The boundary backs off so equal timestamps never
        straddle it (they re-unite in one bucket anyway, but keeping
        them together preserves the window's ``near[-1]`` routing
        invariant cheaply).
        """
        near = self._near
        cursor = self._cursor
        end = len(near)
        split = cursor + (end - cursor) // 2
        boundary = near[split][0]
        while split > cursor and near[split - 1][0] == boundary:
            split -= 1
        if split <= cursor:
            # The lower half is one equal-time run.  Try splitting
            # *after* the run instead -- equal timestamps must stay
            # together in the window (``near[-1]`` routing invariant)
            # but anything strictly later can leave.
            split = cursor + (end - cursor) // 2 + 1
            while split < end and near[split][0] == boundary:
                split += 1
        if split >= end:
            # The entire unserved window is one equal-time run:
            # nothing splittable.  Insort stays cheap -- ties append
            # at the end -- but back the trigger off geometrically so
            # a failed attempt's scan is paid for by the pushes that
            # grew the window since the last one, not by every push.
            self._split_at = (end - cursor) * 2
            return
        self._split_at = NEAR_SPLIT_LIMIT
        self.spills += 1
        tsplit = near[split][0]
        tmax = near[end - 1][0]
        if tmax > tsplit and int(tsplit / self._width) == int(tmax / self._width):
            # The whole tail would collapse into one bucket, which the
            # next advance hands straight back to the window -- a
            # near<->bucket ping-pong that moves every entry many
            # times.  The event horizon is finer than the bucket
            # width; shrink it so the tail spreads out.
            self._rehash(max((tmax - tsplit) / 4.0, WIDTH_MIN_SECONDS))
        width = self._width
        buckets = self._buckets
        keyheap = self._keyheap
        for entry in near[split:]:
            key = int(entry[0] / width)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [entry]
                heappush(keyheap, key)
            else:
                bucket.append(entry)
        self._count += len(near) - split
        del near[split:]

    def _rehash(self, new_width: float) -> None:
        """Re-bucket every pending calendar entry under ``new_width``."""
        new_width = max(new_width, WIDTH_MIN_SECONDS)
        if new_width == self._width:
            return
        self.rehashes += 1
        old = self._buckets
        self._width = new_width
        self._buckets = buckets = {}
        self._small_run = 0
        for bucket in old.values():
            for entry in bucket:
                key = int(entry[0] / new_width)
                existing = buckets.get(key)
                if existing is None:
                    buckets[key] = [entry]
                else:
                    existing.append(entry)
        self._keyheap = list(buckets)
        heapify(self._keyheap)

    # -- convenience surface (tests, non-hot callers) -------------------------

    def peek(self) -> Optional[Tuple[float, int, object]]:
        """The earliest pending entry, or None; does not remove it."""
        if self._cursor >= len(self._near) and not self._advance():
            return None
        return self._near[self._cursor]

    def pop(self) -> Optional[Tuple[float, int, object]]:
        """Remove and return the earliest pending entry, or None."""
        entry = self.peek()
        if entry is not None:
            self._cursor += 1
        return entry
