"""Traffic generation: canonical flow-size distributions and the
Section 5.1 dynamic Poisson workload."""
