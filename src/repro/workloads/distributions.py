"""Flow-size and interarrival distributions for the Section 5.1 traffic.

The paper: "The flow size distribution is derived from the traffic
distribution reported in [2] (DCTCP).  The interarrival time of flows
is picked from an exponential distribution." -- the same generation
model as pFabric and ProjecToR.

We encode the widely-used piecewise-linear approximation of the DCTCP
web-search flow-size CDF (sizes in KB against cumulative probability)
and sample it by inverse transform.  The exact production trace is not
public; this public approximation preserves what the experiments need:
~70% of flows under 100 KB ("small") coexisting with multi-MB
heavy-tail flows that keep the bottleneck loaded.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

import numpy as np

#: DCTCP web-search flow sizes: (size_KB, cumulative probability).
WEB_SEARCH_CDF_KB: List[Tuple[float, float]] = [
    (1.0, 0.0),
    (6.0, 0.15),
    (13.0, 0.30),
    (19.0, 0.45),
    (33.0, 0.60),
    (53.0, 0.70),
    (133.0, 0.80),
    (667.0, 0.90),
    (1467.0, 0.95),
    (3000.0, 0.98),
    (6900.0, 1.00),
]

#: Data-mining flow sizes (the other canonical DC trace, VL2/pFabric
#: lineage): the vast majority of flows are tiny while a sliver of
#: elephants carries most bytes.  Truncated at 30 MB so finite
#: simulations see completed elephants; (size_KB, cumulative prob).
DATA_MINING_CDF_KB: List[Tuple[float, float]] = [
    (1.0, 0.0),
    (3.0, 0.30),
    (7.0, 0.50),
    (15.0, 0.60),
    (35.0, 0.70),
    (100.0, 0.80),
    (400.0, 0.90),
    (3000.0, 0.95),
    (10000.0, 0.98),
    (30000.0, 1.00),
]


class EmpiricalCDF:
    """Inverse-transform sampler over a piecewise-linear CDF.

    Parameters
    ----------
    points:
        ``(value, cumulative_probability)`` pairs, strictly increasing
        in both coordinates, starting at probability 0 and ending at 1.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        values = [p[0] for p in points]
        probs = [p[1] for p in points]
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError(
                "CDF must start at probability 0 and end at 1, got "
                f"[{probs[0]}, {probs[-1]}]")
        if any(b <= a for a, b in zip(values, values[1:])):
            raise ValueError("CDF values must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be nondecreasing")
        self.values = np.asarray(values, dtype=float)
        self.probs = np.asarray(probs, dtype=float)

    def quantile(self, u: float) -> float:
        """The value at cumulative probability ``u`` (linear interp)."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"u must be in [0, 1], got {u}")
        idx = bisect_right(self.probs.tolist(), u)
        if idx == 0:
            return float(self.values[0])
        if idx >= self.probs.size:
            return float(self.values[-1])
        p0, p1 = self.probs[idx - 1], self.probs[idx]
        v0, v1 = self.values[idx - 1], self.values[idx]
        if p1 == p0:
            return float(v0)
        return float(v0 + (u - p0) / (p1 - p0) * (v1 - v0))

    def mean(self) -> float:
        """Exact mean of the piecewise-linear distribution.

        Each CDF segment contributes a uniform slice of probability
        mass centred on the segment's midpoint.
        """
        mass = np.diff(self.probs)
        midpoints = 0.5 * (self.values[:-1] + self.values[1:])
        return float(np.sum(mass * midpoints))

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""
        return self.quantile(float(rng.random()))

    def sample_many(self, rng: np.random.Generator, count: int
                    ) -> np.ndarray:
        """Draw ``count`` values (vectorized interpolation)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        u = rng.random(count)
        return np.interp(u, self.probs, self.values)


def web_search_sizes_bytes() -> EmpiricalCDF:
    """The DCTCP web-search distribution with sizes in bytes."""
    return EmpiricalCDF([(kb * 1024.0, p) for kb, p in WEB_SEARCH_CDF_KB])


def data_mining_sizes_bytes() -> EmpiricalCDF:
    """The data-mining distribution with sizes in bytes.

    Heavier-tailed than web search: more of the load rides on fewer,
    larger flows, which stresses the congestion controllers' long-flow
    behaviour while the many tiny flows probe queueing latency.
    """
    return EmpiricalCDF([(kb * 1024.0, p)
                         for kb, p in DATA_MINING_CDF_KB])


def poisson_interarrivals(rng: np.random.Generator, rate_per_s: float,
                          horizon_s: float) -> np.ndarray:
    """Arrival times of a Poisson process on ``[0, horizon_s)``."""
    if rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    if horizon_s <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_s}")
    # Draw in batches until past the horizon.
    times: List[float] = []
    t = 0.0
    batch = max(16, int(rate_per_s * horizon_s * 1.2))
    while t < horizon_s:
        gaps = rng.exponential(1.0 / rate_per_s, batch)
        for gap in gaps:
            t += gap
            if t >= horizon_s:
                break
            times.append(t)
    return np.asarray(times)


def arrival_rate_for_load(load: float, capacity_bytes_per_s: float,
                          mean_flow_bytes: float) -> float:
    """Flows/second so offered traffic is ``load * capacity``.

    The paper's "load factor of 1 corresponds to an average of 8 Gbps
    on the bottleneck" -- callers pass that 8 Gbps as the capacity
    reference.
    """
    if not 0.0 < load:
        raise ValueError(f"load must be positive, got {load}")
    if capacity_bytes_per_s <= 0 or mean_flow_bytes <= 0:
        raise ValueError("capacity and mean flow size must be positive")
    return load * capacity_bytes_per_s / mean_flow_bytes
