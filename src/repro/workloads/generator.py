"""Dynamic-traffic workload driver for the dumbbell experiments.

Generates the Section 5.1 traffic: flows between randomly selected
sender/receiver pairs, sizes from the DCTCP web-search distribution,
exponential interarrivals scaled to the target load, all installed on
a :class:`~repro.sim.topology.Network` as simulation time advances.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sim.flows import Flow
from repro.sim.topology import Network, install_flow
from repro.workloads.distributions import (EmpiricalCDF,
                                           arrival_rate_for_load,
                                           poisson_interarrivals,
                                           web_search_sizes_bytes)

#: The paper's load normalization: load factor 1 == 8 Gbps offered.
LOAD_ONE_GBPS = 8.0


@dataclass
class WorkloadConfig:
    """Traffic-generation parameters for one run."""

    protocol: str            #: "dcqcn" | "timely" | "patched_timely"
    load: float              #: load factor (1.0 == 8 Gbps offered)
    duration: float          #: arrival horizon, seconds
    seed: int = 0
    size_cdf: Optional[EmpiricalCDF] = None  #: defaults to web-search
    load_one_bytes_per_s: float = LOAD_ONE_GBPS * 1e9 / 8.0


class DynamicWorkload:
    """Installs Poisson flow arrivals on a network and tracks them."""

    def __init__(self, net: Network, config: WorkloadConfig,
                 params: object, **sender_kwargs):
        self.net = net
        self.config = config
        self.params = params
        self.sender_kwargs = sender_kwargs
        self.flows: List[Flow] = []
        self.completed_flows: List[Flow] = []
        rng = np.random.default_rng(config.seed)

        cdf = config.size_cdf or web_search_sizes_bytes()
        mean_size = cdf.mean()
        rate = arrival_rate_for_load(config.load,
                                     config.load_one_bytes_per_s,
                                     mean_size)
        arrivals = poisson_interarrivals(rng, rate, config.duration)
        sizes = cdf.sample_many(rng, arrivals.size)

        sender_names = sorted(
            name for name in net.hosts
            if re.fullmatch(r"s\d+", name))
        receiver_names = sorted(
            name for name in net.hosts
            if re.fullmatch(r"r\d+", name))
        if not sender_names or not receiver_names:
            raise ValueError(
                "network must have s<i>/r<i> host pairs (use the "
                "dumbbell builder)")

        for when, size in zip(arrivals, sizes):
            src = sender_names[rng.integers(len(sender_names))]
            dst = receiver_names[rng.integers(len(receiver_names))]
            size_bytes = max(int(size), net.mtu_bytes)
            self.net.sim.schedule_at(
                float(when),
                self._make_installer(src, dst, size_bytes, float(when)))
        self.scheduled_count = int(arrivals.size)
        self.offered_bytes = float(np.sum(np.maximum(
            sizes.astype(int), net.mtu_bytes)))

    def _make_installer(self, src: str, dst: str, size_bytes: int,
                        when: float):
        def install() -> None:
            sender, _receiver = install_flow(
                self.net, self.config.protocol, src, dst, size_bytes,
                when, self.params, on_complete=self._on_complete,
                **self.sender_kwargs)
            self.flows.append(sender.flow)
        return install

    def _on_complete(self, flow: Flow) -> None:
        self.completed_flows.append(flow)
        # Retire the sender so host dispatch tables stay small and
        # TIMELY's C/(N+1) start-rate rule sees the true active count.
        sender = self.net.senders.pop(flow.flow_id, None)
        if sender is not None:
            sender.stop()
        self.net.receivers.pop(flow.flow_id, None)

    @property
    def completion_fraction(self) -> float:
        """Completed flows over installed flows."""
        if not self.flows:
            return 0.0
        return len(self.completed_flows) / len(self.flows)

    def run(self, drain_time: float = 0.0) -> None:
        """Run the simulation through the arrival horizon plus drain."""
        self.net.sim.run(until=self.config.duration + drain_time)
