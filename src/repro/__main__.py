"""Command-line entry point: regenerate paper figures from the shell.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro run fig04            # one figure
    python -m repro run fig04 fig20      # several
    python -m repro run all              # everything (minutes!)

Each run prints the table of numbers the corresponding paper figure
plots, via the same drivers the benchmarks use.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.registry import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from 'ECN or Delay' "
                    "(CoNEXT 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment ids (see 'list'), or 'all'")
    run.add_argument("--csv", metavar="DIR", default=None,
                     help="also write each result as CSV into DIR")
    return parser


def list_experiments() -> None:
    width = max(len(key) for key in EXPERIMENTS)
    for key in sorted(EXPERIMENTS):
        print(f"{key:<{width}}  {EXPERIMENTS[key].description}")


def run_experiments(names: List[str],
                    csv_dir: "str | None" = None) -> int:
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("use 'python -m repro list' to see what exists",
              file=sys.stderr)
        return 2
    for name in names:
        experiment = EXPERIMENTS[name]
        print(f"=== {name}: {experiment.description} ===")
        started = time.time()
        result = experiment.run()
        print(experiment.report(result))
        if csv_dir is not None:
            from repro.analysis.export import write_csv
            target = write_csv(result, f"{csv_dir}/{name}.csv")
            print(f"[csv written to {target}]")
        print(f"[{name} took {time.time() - started:.1f}s]\n")
    return 0


def main(argv: "List[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        list_experiments()
        return 0
    return run_experiments(args.experiments, csv_dir=args.csv)


if __name__ == "__main__":
    sys.exit(main())
