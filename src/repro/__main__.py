"""Command-line entry point: regenerate paper figures from the shell.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro run fig04            # one figure
    python -m repro run fig04 fig20      # several
    python -m repro run all              # everything (minutes!)
    python -m repro run fig14 --workers 4 --cache
    python -m repro run fig14 --resume --cell-timeout 300
    python -m repro run fig04 --telemetry obs/   # metrics + run log
    python -m repro run ext_incast_pfc --telemetry obs/ --forensics
    python -m repro explain obs/ext_incast_pfc-*.jsonl --worst 3
    python -m repro explain obs/ --flow 7        # one flow's story
    python -m repro report obs/fig04-*.jsonl     # render a run log
    python -m repro report obs/                  # render every log in DIR
    python -m repro watch obs/                   # live dashboard of a run
    python -m repro compare obs_a/ obs_b/        # cross-run regression diff
    python -m repro replay CAPSULE.json          # re-run a failed cell
    python -m repro bench                # write BENCH_PR7.json
    python -m repro fuzz --budget 50 --seed 0 --shrink  # conformance
    python -m repro run fig05 --engine calendar  # pick event backend
    python -m repro run fig05 --profile          # sampling profiler
    python -m repro worker /shared/queue         # drain a sweep queue
    python -m repro run fig14 --backend queue --queue-dir /shared/queue
    python -m repro serve /shared/queue          # live fleet metrics/events
    python -m repro watch --serve http://host:9876   # remote dashboard
    python -m repro report --fleet /shared/queue # stitched fleet trace

Each run prints the table of numbers the corresponding paper figure
plots, via the same drivers the benchmarks use.  ``--workers`` fans
grid experiments over processes and ``--cache`` memoizes their cells
on disk (see :mod:`repro.perf`); both are accepted by every
experiment and ignored by those without a sweep to accelerate.
``--telemetry DIR`` records each run's metrics, spans, warnings and
health findings into DIR (see :mod:`repro.obs`); ``report`` turns the
resulting JSONL logs back into human-readable dashboards, ``watch``
tails one live from another terminal, and ``compare`` diffs two
telemetry directories (or two bench reports) with noise-aware
regression thresholds.  ``--forensics`` additionally attributes every
flow's completion time to named components (serialization, queueing,
PFC pause, rate limiting; see :mod:`repro.obs.forensics`) and logs
one ``flow`` event per flow; ``explain`` renders those attributions
with their causal chains (which switch marked the flow, which pause
storm throttled it).

``--resume`` journals every completed sweep cell so a crashed or
interrupted run picks up where it stopped, bit-identical to an
uninterrupted one; ``--cell-timeout``/``--cell-retries`` bound how
long a single cell may hang and how often it is retried before being
quarantined.  A quarantined cell leaves a crash capsule that
``replay`` re-executes serially (optionally under ``--telemetry``)
to reproduce the original failure for debugging (see
:mod:`repro.perf.resilience`).

``--backend queue --queue-dir DIR`` dispatches sweep cells through a
shared-filesystem job queue drained by any number of ``python -m
repro worker DIR`` processes -- on this host or others mounting the
same directory (see :mod:`repro.perf.backend`).  Workers heartbeat
their leases; dead workers' cells are re-leased automatically, and a
coordinator that sees no live worker degrades back to local
execution instead of hanging.

``serve`` exposes the fleet observability plane over HTTP next to a
queue or telemetry directory: merged Prometheus ``/metrics``
(coordinator + per-worker heartbeat snapshots), a ``/events`` SSE
stream of the run-log shards, ``/fleet`` liveness JSON and the
stitched ``/trace`` tree (see :mod:`repro.obs.serve`).  ``watch
--serve URL`` follows such a plane from a host without the shared
filesystem, and ``report --fleet DIR`` renders the coordinator ->
workers -> cells trace tree of the latest distributed sweep.
``run --profile`` samples the engine hot loops from a sidecar thread
(:mod:`repro.obs.profile`) and prints where the wall time went.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from 'ECN or Delay' "
                    "(CoNEXT 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment ids (see 'list'), or 'all'")
    run.add_argument("--csv", metavar="DIR", default=None,
                     help="also write each result as CSV into DIR")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="fan sweep cells over N processes "
                          "(-1 = all cores; default serial)")
    run.add_argument("--cache", action="store_true",
                     help="memoize sweep cells in the on-disk result "
                          "cache (REPRO_CACHE_DIR or ~/.cache/repro)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="cache directory (implies --cache)")
    run.add_argument("--engine", default=None,
                     choices=["heap", "calendar", "hybrid"],
                     help="packet-engine backend: heap (oracle), "
                          "calendar (bit-identical event queue), or "
                          "hybrid (fluid elephants + packet mice; "
                          "statistical, not bit-exact); experiments "
                          "without a packet engine ignore it")
    run.add_argument("--telemetry", metavar="DIR", default=None,
                     help="record metrics, spans, health findings and "
                          "a JSONL run log per experiment into DIR")
    run.add_argument("--profile", action="store_true",
                     help="sample the engine hot loops from a sidecar "
                          "thread and print the per-category time "
                          "shares after each experiment")
    run.add_argument("--forensics", action="store_true",
                     help="attribute each flow's FCT to named "
                          "components and log per-flow 'flow' events "
                          "for 'repro explain' (requires --telemetry)")
    run.add_argument("--telemetry-fsync", action="store_true",
                     help="fsync every run-log event (promptest "
                          "'repro watch' tail; costs a syscall per "
                          "event)")
    run.add_argument("--resume", action="store_true",
                     help="journal completed sweep cells (beside the "
                          "result cache) and skip cells already "
                          "journaled by an earlier, interrupted run")
    run.add_argument("--cell-timeout", type=float, default=None,
                     metavar="S",
                     help="per-cell wall-clock budget in seconds; a "
                          "hung cell's worker is killed and the cell "
                          "retried (parallel sweeps only)")
    run.add_argument("--cell-retries", type=int, default=None,
                     metavar="N",
                     help="retries before a failing cell is "
                          "quarantined as a CellFailure with a crash "
                          "capsule (default 1 when resilience is on)")
    run.add_argument("--backend", default="auto",
                     choices=["auto", "inprocess", "pool", "queue"],
                     help="where sweep cells execute: auto (serial/"
                          "pool by --workers), inprocess, pool, or "
                          "queue (distributed via --queue-dir; "
                          "default auto)")
    run.add_argument("--queue-dir", default=None, metavar="DIR",
                     help="shared queue directory for --backend "
                          "queue; start workers with 'python -m "
                          "repro worker DIR'")
    run.add_argument("--lease-ttl", type=float, default=None,
                     metavar="S",
                     help="seconds without a heartbeat before a "
                          "queue lease is re-assigned (default 10)")
    run.add_argument("--worker-grace", type=float, default=None,
                     metavar="S",
                     help="seconds the queue coordinator waits for "
                          "any live worker before degrading to "
                          "local execution (default 20)")

    report = sub.add_parser(
        "report", help="render telemetry run logs as dashboards")
    report.add_argument("runlog",
                        help="a <run-id>.jsonl file written by "
                             "--telemetry, or a directory of them "
                             "(every *.jsonl inside is rendered); "
                             "with --fleet, a queue directory "
                             "holding traces/ shards")
    report.add_argument("--validate-only", action="store_true",
                        help="check the log(s) against the RunLog "
                             "schema and exit without rendering")
    report.add_argument("--fleet", action="store_true",
                        help="render the stitched cross-host trace "
                             "tree of a distributed sweep instead of "
                             "run-log dashboards")
    report.add_argument("--trace-id", default=None, metavar="ID",
                        help="with --fleet, pick a specific trace "
                             "(default: the most recent)")

    explain = sub.add_parser(
        "explain", help="per-flow FCT attribution and causal chain "
                        "from a --forensics run log")
    explain.add_argument("runlog",
                         help="a <run-id>.jsonl file from a "
                              "'run --forensics --telemetry' "
                              "invocation, or a directory (newest "
                              "log inside is used)")
    explain.add_argument("--flow", type=int, default=None, metavar="N",
                         help="explain one flow id (all contexts it "
                              "appears in)")
    explain.add_argument("--worst", type=int, default=5, metavar="K",
                         help="show the K worst completed flows by "
                              "FCT (default 5)")
    explain.add_argument("--context", default=None, metavar="C",
                         help="restrict to one experiment context "
                              "(e.g. 'dcqcn+pfc')")

    watch = sub.add_parser(
        "watch", help="live dashboard tailing a run log as it is "
                      "written")
    watch.add_argument("target", nargs="?", default=None,
                       help="a run-log .jsonl path, or a telemetry "
                            "directory (newest log inside is "
                            "followed); omit with --serve")
    watch.add_argument("--experiment", default=None, metavar="ID",
                       help="with a directory target, follow the "
                            "newest log of this experiment")
    watch.add_argument("--interval", type=float, default=0.5,
                       metavar="S", help="poll/redraw period "
                                         "(default 0.5s)")
    watch.add_argument("--once", action="store_true",
                       help="render the current state once and exit")
    watch.add_argument("--serve", default=None, metavar="URL",
                       dest="serve_url",
                       help="follow a 'repro serve' plane's "
                            "/events.json instead of a local file "
                            "(e.g. http://host:9876)")

    compare = sub.add_parser(
        "compare", help="diff two runs: bench reports or telemetry "
                        "dirs, with noise-aware thresholds")
    compare.add_argument("before", help="baseline BENCH_*.json or "
                                        "telemetry directory")
    compare.add_argument("after", help="candidate BENCH_*.json or "
                                       "telemetry directory")
    compare.add_argument("--rtol", type=float, default=None,
                         metavar="R",
                         help="force one relative tolerance for every "
                              "metric (default: per-metric, wide for "
                              "timing noise)")
    compare.add_argument("--fail-on-regression", action="store_true",
                         help="exit 1 on regressions or new health "
                              "findings (the CI gate)")

    replay = sub.add_parser(
        "replay", help="re-execute a crash capsule's cell serially "
                       "to reproduce its failure")
    replay.add_argument("capsule",
                        help="a *.capsule.json file written when a "
                             "sweep cell exhausted its retries")
    replay.add_argument("--telemetry", metavar="DIR", default=None,
                        help="run the replay under full telemetry/"
                             "health, recording into DIR")

    bench = sub.add_parser(
        "bench", help="measure hot-loop throughput, write a JSON report")
    bench.add_argument("--output", default="BENCH_PR7.json",
                       metavar="FILE", help="report path")
    bench.add_argument("--workers", type=int, default=4, metavar="N",
                       help="worker count for the sweep section")
    bench.add_argument("--full", action="store_true",
                       help="also time the (slow) FCT study sweep")

    worker = sub.add_parser(
        "worker", help="serve a shared sweep-queue directory: claim "
                       "cells, heartbeat leases, park results")
    worker.add_argument("queue_dir",
                        help="the queue directory coordinators "
                             "dispatch into (--queue-dir on 'run')")
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="registration name (default host-pid)")
    worker.add_argument("--lease-ttl", type=float, default=None,
                        metavar="S",
                        help="lease/heartbeat TTL; must match the "
                             "coordinator's (default 10)")
    worker.add_argument("--poll", type=float, default=0.2,
                        metavar="S",
                        help="sleep between empty queue scans "
                             "(default 0.2s)")
    worker.add_argument("--max-idle", type=float, default=None,
                        metavar="S",
                        help="exit after this long with nothing to "
                             "do (default: serve forever)")
    worker.add_argument("--max-cells", type=int, default=None,
                        metavar="N",
                        help="exit after processing N cells "
                             "(default: unbounded)")
    worker.add_argument("--telemetry", metavar="DIR", default=None,
                        help="record this worker's cell events and "
                             "metrics into DIR")

    fuzz = sub.add_parser(
        "fuzz", help="differential chaos-conformance fuzzing: "
                     "randomized scenarios across the engine matrix "
                     "under invariant oracles (see repro.qa)")
    fuzz.add_argument("--budget", type=int, default=None, metavar="N",
                      help="number of scenarios to run")
    fuzz.add_argument("--seconds", type=float, default=None,
                      metavar="S",
                      help="wall-clock cap instead of a scenario "
                           "count (at least one scenario runs)")
    fuzz.add_argument("--seed", type=int, default=0, metavar="S",
                      help="fuzzer seed; scenario i of seed s is "
                           "identical on every machine (default 0)")
    fuzz.add_argument("--start-index", type=int, default=0,
                      metavar="I",
                      help="first scenario index (continue a "
                           "previous campaign without re-running "
                           "its scenarios)")
    fuzz.add_argument("--matrix", default=None, metavar="C1,C2",
                      help="comma-separated comparison classes "
                           "(scheduler,window,forensics,hybrid; "
                           "default all)")
    fuzz.add_argument("--skip-oracle", action="append", default=None,
                      metavar="NAME", dest="skip_oracles",
                      help="disable one oracle (repeatable); for "
                           "triage, not for CI")
    fuzz.add_argument("--shrink", action="store_true",
                      help="delta-debug each violating scenario to "
                           "a minimal reproducer before writing its "
                           "capsule")
    fuzz.add_argument("--capsule-dir", default=None, metavar="DIR",
                      help="where violating scenarios are written "
                           "as replay-compatible crash capsules "
                           "(default runs/fuzz-capsules)")
    fuzz.add_argument("--telemetry", metavar="DIR", default=None,
                      help="record qa.* metrics and run-log 'fuzz' "
                           "events into DIR")

    serve = sub.add_parser(
        "serve", help="HTTP observability plane: merged /metrics, "
                      "/events stream, /fleet liveness, /trace tree")
    serve.add_argument("root",
                       help="a queue directory (workers/ inside), a "
                            "telemetry directory of run logs, or a "
                            "directory that is both")
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="bind address (default 127.0.0.1; "
                            "0.0.0.0 exposes the plane to the fleet)")
    serve.add_argument("--port", type=int, default=9876, metavar="N",
                       help="bind port (default 9876; 0 picks a "
                            "free port and prints it)")
    serve.add_argument("--worker-ttl", type=float, default=None,
                       metavar="S",
                       help="seconds before a worker registration "
                            "(and its metrics snapshot) stops "
                            "counting as live (default 30)")
    return parser


def list_experiments() -> None:
    width = max(len(key) for key in EXPERIMENTS)
    for key in sorted(EXPERIMENTS):
        print(f"{key:<{width}}  {EXPERIMENTS[key].description}")


def _print_cache_stats(name: str, cache, baseline: dict) -> dict:
    """Print this experiment's share of the cache traffic.

    ``baseline`` is the stats snapshot before the experiment ran; the
    delta is what this run alone contributed.  Returns the updated
    snapshot for the next experiment.
    """
    snapshot = cache.stats.as_dict()
    delta = {key: snapshot[key] - baseline.get(key, 0)
             for key in ("hits", "misses", "puts", "invalidations")}
    lookups = delta["hits"] + delta["misses"]
    rate = delta["hits"] / lookups if lookups else 0.0
    print(f"[{name} cache: {delta['hits']} hits, "
          f"{delta['misses']} misses, {delta['puts']} puts, "
          f"hit rate {rate:.0%}]")
    return snapshot


def _build_resilience(resume: bool,
                      cell_timeout: "float | None",
                      cell_retries: "int | None",
                      cache_dir: "str | None"):
    """Translate the resilience CLI flags into a policy (or None).

    The journal lives beside the result cache so ``--cache-dir`` (or
    ``REPRO_CACHE_DIR``) relocates both together.
    """
    if not resume and cell_timeout is None and cell_retries is None:
        return None
    from pathlib import Path

    from repro.perf import ResiliencePolicy, default_journal_dir
    journal_dir = None
    if resume:
        journal_dir = (Path(cache_dir) / "journals" if cache_dir
                       else default_journal_dir())
    return ResiliencePolicy(
        cell_timeout=cell_timeout,
        max_retries=1 if cell_retries is None else cell_retries,
        journal_dir=journal_dir)


def _print_failures(name: str, failures) -> None:
    """Summarize quarantined cells and where their capsules went."""
    print(f"[{name}: {len(failures)} cell(s) quarantined after "
          f"exhausting retries]")
    for failure in failures:
        print(f"  cell[{failure.index}] {failure.kind}: "
              f"{failure.error_type}: {failure.error_message} "
              f"({failure.attempts} attempt(s))")
        if failure.capsule_path is not None:
            print(f"    replay: python -m repro replay "
                  f"{failure.capsule_path}")


def _build_backend(backend_spec: "str | None",
                   queue_dir: "str | None",
                   lease_ttl: "float | None",
                   worker_grace: "float | None"):
    """Translate the backend CLI flags into a backend (or None)."""
    from repro.perf import backend as _backend
    kwargs: dict = {}
    if lease_ttl is not None:
        kwargs["lease_ttl"] = lease_ttl
    if worker_grace is not None:
        kwargs["worker_grace"] = worker_grace
    return _backend.resolve_backend(backend_spec, queue_dir=queue_dir,
                                    **kwargs)


def run_experiments(names: List[str],
                    csv_dir: "str | None" = None,
                    workers: Optional[int] = None,
                    use_cache: bool = False,
                    cache_dir: "str | None" = None,
                    telemetry_dir: "str | None" = None,
                    telemetry_fsync: bool = False,
                    resume: bool = False,
                    cell_timeout: Optional[float] = None,
                    cell_retries: Optional[int] = None,
                    backend: "str | None" = None,
                    queue_dir: "str | None" = None,
                    lease_ttl: Optional[float] = None,
                    worker_grace: Optional[float] = None,
                    engine: "str | None" = None,
                    profile: bool = False,
                    forensics: bool = False) -> int:
    if forensics and telemetry_dir is None:
        print("--forensics needs --telemetry DIR (flow events land "
              "in the run log)", file=sys.stderr)
        return 2
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("use 'python -m repro list' to see what exists",
              file=sys.stderr)
        return 2
    try:
        backend_obj = _build_backend(backend, queue_dir, lease_ttl,
                                     worker_grace)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    cache = None
    cache_baseline: dict = {}
    if use_cache or cache_dir is not None:
        from repro.perf import ResultCache, default_cache_dir
        cache = ResultCache(root=cache_dir or default_cache_dir())
    resilience = _build_resilience(resume, cell_timeout, cell_retries,
                                   cache_dir)
    quarantined = 0
    from repro.perf import use_backend
    for name in names:
        experiment = EXPERIMENTS[name]
        print(f"=== {name}: {experiment.description} ===")
        started = time.time()
        telemetry = None
        if telemetry_dir is not None:
            from repro.obs import Telemetry
            telemetry = Telemetry(telemetry_dir, experiment=name,
                                  fsync=telemetry_fsync)
            if forensics:
                from repro.obs.forensics import FlowLedger
                telemetry.forensics = FlowLedger()
        # The ambient default reaches every SweepRunner the
        # experiment builds internally, so sweeps run distributed
        # without each experiment growing a backend parameter.
        extra = {"engine": engine} if engine is not None else {}
        profiler = None
        if profile:
            from repro.obs.profile import SamplingProfiler
            profiler = SamplingProfiler().start()
            if telemetry is not None:
                # Telemetry stops it during finalization and logs
                # the summary as a ``profile`` run-log event before
                # the log closes; the later stop() is a no-op.
                telemetry.profiler = profiler
        try:
            with use_backend(backend_obj):
                result = experiment.run(workers=workers, cache=cache,
                                        telemetry=telemetry,
                                        resilience=resilience,
                                        **extra)
        finally:
            if profiler is not None:
                profiler.stop()
                profiler.publish()
        if profiler is not None:
            print(f"[profile: {name}]")
            print(profiler.format_report())
        failures = []
        if resilience is not None:
            from repro.perf import collect_failures
            failures = collect_failures(result)
        if failures:
            # Report functions assume complete grids; a CellFailure
            # placeholder would crash them, so summarize instead.
            quarantined += len(failures)
            _print_failures(name, failures)
        else:
            print(experiment.report(result))
        if csv_dir is not None:
            from pathlib import Path

            from repro.analysis.export import write_csv
            Path(csv_dir).mkdir(parents=True, exist_ok=True)
            target = write_csv(result, f"{csv_dir}/{name}.csv")
            print(f"[csv written to {target}]")
        if telemetry is not None:
            print(f"[run log: {telemetry.runlog_path}]")
            if telemetry.verdict is not None:
                print(f"[health verdict: {telemetry.verdict}]")
            if telemetry.forensics is not None:
                flows = len(telemetry.forensics.records())
                print(f"[forensics: {flows} flow(s) attributed; "
                      f"explain with: python -m repro explain "
                      f"{telemetry.runlog_path} --worst 5]")
            for path in telemetry.export_paths:
                print(f"[metrics export: {path}]")
        if cache is not None:
            cache_baseline = _print_cache_stats(name, cache,
                                                cache_baseline)
        print(f"[{name} took {time.time() - started:.1f}s]\n")
    if cache is not None:
        stats = cache.stats
        print(f"[cache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.invalidations} invalidated, root={cache.root}]")
    return 1 if quarantined else 0


def run_fuzz_command(budget: "int | None",
                     seconds: "float | None",
                     seed: int,
                     start_index: int,
                     matrix: "str | None",
                     skip_oracles: "List[str] | None",
                     shrink: bool,
                     capsule_dir: "str | None",
                     telemetry_dir: "str | None") -> int:
    """Run a fuzz campaign; exit 0 when every oracle stayed clean.

    Exit codes: 0 all scenarios conformed, 1 at least one oracle
    violation (capsules written for each), 2 bad arguments.
    """
    from repro.qa import format_report, run_fuzz
    from repro.qa.driver import default_capsule_dir

    if budget is None and seconds is None:
        print("fuzz: need --budget N or --seconds S",
              file=sys.stderr)
        return 2
    classes = None
    if matrix is not None:
        classes = [c.strip() for c in matrix.split(",") if c.strip()]
    capsules = capsule_dir if capsule_dir is not None \
        else str(default_capsule_dir())

    def campaign() -> "object":
        return run_fuzz(budget=budget, seconds=seconds, seed=seed,
                        matrix=classes, skip_oracles=skip_oracles,
                        shrink=shrink, capsule_dir=capsules,
                        start_index=start_index, log=print)

    try:
        if telemetry_dir is not None:
            from repro.obs.telemetry import Telemetry
            bundle = Telemetry.ensure(telemetry_dir,
                                      experiment=f"fuzz-seed{seed}")
            with bundle.activate(params={
                    "seed": seed, "budget": budget,
                    "seconds": seconds, "shrink": shrink}):
                report = campaign()
            print(f"[telemetry: {bundle.runlog_path}]")
        else:
            report = campaign()
    except ValueError as error:
        print(f"fuzz: {error}", file=sys.stderr)
        return 2
    print(format_report(report))
    return 0 if report.ok else 1


def replay_crash_capsule(path: str,
                         telemetry_dir: "str | None" = None) -> int:
    """Re-run a crash capsule's cell serially and report the outcome.

    Exit 0 if the cell now succeeds, 1 if it fails again (the usual,
    useful case -- the traceback is printed for debugging), 2 if the
    capsule itself cannot be loaded.
    """
    from repro.perf import replay_capsule

    try:
        outcome = replay_capsule(path, telemetry=telemetry_dir)
    except (OSError, ValueError) as error:
        print(f"cannot replay {path}: {error}", file=sys.stderr)
        return 2
    capsule = outcome.capsule
    print(f"=== replay {capsule.experiment_id} cell "
          f"{capsule.cell_key[:12]} ===")
    print(f"fn:       {capsule.fn}")
    print(f"params:   {capsule.params}")
    print(f"original: {capsule.kind} -- {capsule.error_type}: "
          f"{capsule.error_message} (after {capsule.attempts} "
          f"attempt(s))")
    if outcome.reproduced:
        print(f"replay:   failed again in {outcome.elapsed_s:.2f}s -- "
              f"{outcome.error_type}: {outcome.error_message}")
        match = ("matches the original failure"
                 if outcome.matches_original
                 else "DIFFERS from the original failure")
        print(f"          ({match})")
        if outcome.traceback:
            print()
            print(outcome.traceback.rstrip())
        return 1
    print(f"replay:   succeeded in {outcome.elapsed_s:.2f}s "
          f"(failure did not reproduce)")
    print(f"value:    {outcome.value!r}")
    return 0


def run_worker(queue_dir: str,
               worker_id: "str | None" = None,
               lease_ttl: "float | None" = None,
               poll: float = 0.2,
               max_idle: "float | None" = None,
               max_cells: "int | None" = None,
               telemetry_dir: "str | None" = None) -> int:
    """Serve a queue directory until stopped (the ``worker`` command).

    Exit 0 on clean shutdown (SIGTERM, ``--max-idle``,
    ``--max-cells``); the in-flight lease, if any, is released back
    to the queue either way.
    """
    from repro.perf.backend import DEFAULT_LEASE_TTL
    from repro.perf.worker import QueueWorker

    worker = QueueWorker(
        queue_dir, worker_id=worker_id,
        lease_ttl=DEFAULT_LEASE_TTL if lease_ttl is None
        else lease_ttl,
        poll_interval=poll)
    print(f"[worker {worker.worker_id} serving {queue_dir} "
          f"(lease ttl {worker.lease_ttl:g}s)]")

    def serve() -> int:
        try:
            return worker.run(max_cells=max_cells, max_idle=max_idle)
        except KeyboardInterrupt:
            return worker.completed

    if telemetry_dir is not None:
        from repro.obs import Telemetry
        telemetry = Telemetry(telemetry_dir,
                              experiment=f"worker-{worker.worker_id}")
        with telemetry.activate():
            completed = serve()
        print(f"[run log: {telemetry.runlog_path}]")
    else:
        completed = serve()
    print(f"[worker {worker.worker_id} done: {completed} cell(s) "
          f"completed, {worker.failed} failed, {worker.stolen} "
          f"stolen lease(s) recovered]")
    return 0


def serve_plane(root: str, host: str, port: int,
                worker_ttl: "float | None" = None) -> int:
    """Run the HTTP observability plane until interrupted."""
    from repro.obs.serve import DEFAULT_WORKER_TTL, ObservabilityServer

    try:
        server = ObservabilityServer(
            root=root, host=host, port=port,
            worker_ttl=DEFAULT_WORKER_TTL if worker_ttl is None
            else worker_ttl)
    except (OSError, ValueError) as error:
        print(f"cannot serve {root}: {error}", file=sys.stderr)
        return 2
    print(f"[observability plane for {root} at {server.url}]")
    print("[endpoints: /metrics /events /events.json /fleet "
          "/trace /healthz -- ctrl-c to stop]")
    try:
        server.serve_forever()
    finally:
        server.close()
    return 0


def report_runlog(path: str, validate_only: bool = False) -> int:
    """Validate (and by default render) ``--telemetry`` run logs.

    ``path`` may be one ``.jsonl`` file or a telemetry directory, in
    which case every ``*.jsonl`` inside is validated/rendered; the
    exit code is non-zero if *any* log fails validation.
    """
    from pathlib import Path

    from repro.obs.report import render_report
    from repro.obs.runlog import validate_file

    target = Path(path)
    if target.is_dir():
        logs = sorted(target.glob("*.jsonl"))
        if not logs:
            print(f"{path}: no run logs (*.jsonl) found",
                  file=sys.stderr)
            return 2
    else:
        logs = [target]

    failures = 0
    for index, log in enumerate(logs):
        errors = validate_file(log)
        if errors:
            failures += 1
            print(f"{log}: {len(errors)} schema violation(s)",
                  file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            continue
        if validate_only:
            print(f"{log}: valid run log")
            continue
        if len(logs) > 1 and index:
            print()
        print(render_report(log))
    return 1 if failures else 0


def explain_runlog(path: str, flow_id: "int | None" = None,
                   worst: int = 5,
                   context: "str | None" = None) -> int:
    """Render per-flow FCT attributions (the ``explain`` command).

    ``path`` may be one ``.jsonl`` run log or a telemetry directory
    (the newest log inside is used).  Exit 2 when the target has no
    ``flow`` events -- i.e. the run was made without ``--forensics``.
    """
    from pathlib import Path

    from repro.obs.forensics import render_explain
    from repro.obs.runlog import read_events

    target = Path(path)
    if target.is_dir():
        logs = sorted(target.glob("*.jsonl"),
                      key=lambda p: p.stat().st_mtime)
        if not logs:
            print(f"{path}: no run logs (*.jsonl) found",
                  file=sys.stderr)
            return 2
        target = logs[-1]
    try:
        events = read_events(target)
    except (OSError, ValueError) as error:
        print(f"cannot read {target}: {error}", file=sys.stderr)
        return 2
    flows = [e for e in events if e.get("type") == "flow"]
    if not flows:
        print(f"{target}: no flow events -- re-run with "
              f"'--telemetry DIR --forensics'", file=sys.stderr)
        return 2
    print(f"[{target}]")
    print(render_explain(flows, flow_id=flow_id, worst=worst,
                         context=context))
    return 0


def main(argv: "List[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        list_experiments()
        return 0
    if args.command == "report":
        if args.fleet:
            from repro.obs.report import render_fleet
            print(render_fleet(args.runlog, trace_id=args.trace_id))
            return 0
        return report_runlog(args.runlog,
                             validate_only=args.validate_only)
    if args.command == "explain":
        return explain_runlog(args.runlog, flow_id=args.flow,
                              worst=args.worst,
                              context=args.context)
    if args.command == "watch":
        from repro.obs.live import watch
        try:
            return watch(args.target, experiment=args.experiment,
                         interval=args.interval, once=args.once,
                         serve_url=args.serve_url)
        except (FileNotFoundError, ValueError) as error:
            print(error, file=sys.stderr)
            return 2
    if args.command == "compare":
        from repro.obs.diff import compare, render_report
        try:
            report = compare(args.before, args.after, rtol=args.rtol)
        except FileNotFoundError as error:
            print(error, file=sys.stderr)
            return 2
        print(render_report(report))
        return report.exit_code(args.fail_on_regression)
    if args.command == "replay":
        return replay_crash_capsule(args.capsule,
                                    telemetry_dir=args.telemetry)
    if args.command == "bench":
        from repro.perf.bench import main as bench_main
        return bench_main(path=args.output, workers=args.workers,
                          full=args.full)
    if args.command == "worker":
        return run_worker(args.queue_dir,
                          worker_id=args.worker_id,
                          lease_ttl=args.lease_ttl,
                          poll=args.poll,
                          max_idle=args.max_idle,
                          max_cells=args.max_cells,
                          telemetry_dir=args.telemetry)
    if args.command == "serve":
        return serve_plane(args.root, host=args.host, port=args.port,
                           worker_ttl=args.worker_ttl)
    if args.command == "fuzz":
        return run_fuzz_command(args.budget, args.seconds, args.seed,
                                args.start_index, args.matrix,
                                args.skip_oracles, args.shrink,
                                args.capsule_dir, args.telemetry)
    return run_experiments(args.experiments, csv_dir=args.csv,
                           workers=args.workers,
                           use_cache=args.cache,
                           cache_dir=args.cache_dir,
                           telemetry_dir=args.telemetry,
                           telemetry_fsync=args.telemetry_fsync,
                           resume=args.resume,
                           cell_timeout=args.cell_timeout,
                           cell_retries=args.cell_retries,
                           backend=args.backend,
                           queue_dir=args.queue_dir,
                           lease_ttl=args.lease_ttl,
                           worker_grace=args.worker_grace,
                           engine=args.engine,
                           profile=args.profile,
                           forensics=args.forensics)


if __name__ == "__main__":
    sys.exit(main())
