#!/usr/bin/env python3
"""TIMELY's infinite fixed points, and the patch that removes them.

Reproduces the Section 4 story end to end:

* run the Fig. 9 scenarios -- identical TIMELY flows started
  differently end at wildly different rates (Theorem 4's family);
* enumerate members of that family analytically;
* run patched TIMELY (Algorithm 2) from the worst starting condition
  and watch it converge to the unique Eq. 31 fixed point (Theorem 5).

Run:  python examples/timely_unfairness.py
"""

from repro import (PatchedTimelyFluidModel, PatchedTimelyParams,
                   TimelyParams, dde, jain_fairness, units)
from repro.analysis.reporting import format_table
from repro.core.fixedpoint.timely import (patched_fixed_point,
                                          sample_fixed_points)
from repro.experiments import fig09_timely_unfairness as fig09


def show_fig09():
    print("== TIMELY under three starting conditions (Fig. 9) ==")
    rows = fig09.run(duration=0.06)
    print(fig09.report(rows))
    print()


def show_family():
    print("== A random walk through Theorem 4's fixed-point family ==")
    params = TimelyParams.paper_default(num_flows=4)
    rows = []
    for i, point in enumerate(sample_fixed_points(params, 5, seed=11)):
        rates = "/".join(f"{units.pps_to_gbps(r):.2f}"
                         for r in point.rates)
        rows.append([i, rates, units.packets_to_kb(point.queue),
                     point.fairness_ratio])
    print(format_table(
        ["sample", "rates (Gbps)", "queue (KB)", "max/min"], rows))
    print("every one of these satisfies the Eq. 28 system exactly.\n")


def show_patch():
    print("== Patched TIMELY from the 7/3 Gbps start (Fig. 12a) ==")
    patched = PatchedTimelyParams.paper_default(num_flows=2)
    mtu = patched.base.mtu_bytes
    model = PatchedTimelyFluidModel(
        patched,
        initial_rates=[units.gbps_to_pps(7, mtu),
                       units.gbps_to_pps(3, mtu)])
    trace = dde.integrate(model, 0.08, dt=1e-6, record_stride=50)
    finals = [trace.tail_mean(f"r[{i}]", 0.01) for i in range(2)]
    predicted = patched_fixed_point(patched)
    print(f"final rates: "
          + " / ".join(f"{units.pps_to_gbps(r):.2f} Gbps"
                       for r in finals))
    print(f"Jain index: {jain_fairness(finals):.4f}")
    print(f"queue: {units.packets_to_kb(trace.tail_mean('q', 0.01)):.1f}"
          f" KB (Eq. 31 predicts "
          f"{units.packets_to_kb(predicted.queue):.1f} KB)")


def main():
    show_fig09()
    show_family()
    show_patch()


if __name__ == "__main__":
    main()
