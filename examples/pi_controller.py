#!/usr/bin/env python3
"""The fairness/delay tradeoff (Theorem 6) made concrete.

Runs the two Section 5.2 PI experiments:

* **DCQCN + PI at the switch (Fig. 18)** -- the marking controller
  pins the queue to one reference for any number of flows while the
  shared signal keeps the rates fair: ECN gets *both* properties.
* **Patched TIMELY + PI at the hosts (Fig. 19)** -- each host's
  integrator pins the delay, but the rate split freezes whatever
  asymmetry history left behind: delay-based feedback gets *one*.

Run:  python examples/pi_controller.py
"""

from repro.experiments import fig18_dcqcn_pi as fig18
from repro.experiments import fig19_timely_pi as fig19


def main():
    print("== DCQCN with a PI marker at the switch (Fig. 18) ==")
    print("   (three fluid runs of 0.5 s; ~2-3 minutes)")
    rows = fig18.run(flow_counts=(2, 10, 64))
    print(fig18.report(rows))
    print()
    print("The queue sits at the 100 KB reference for 2, 10 and 64 "
          "flows, while p adapts\nacross an order of magnitude -- the "
          "per-N Eq. 11 marking rate RED cannot reach\nat a fixed "
          "queue.")
    print()

    print("== Patched TIMELY with per-host PI controllers (Fig. 19) ==")
    result = fig19.run()
    print(fig19.report(result))
    print()
    print("Queue controlled to 300 KB, but the host integrators "
          "disagree (p0 != p1) and\nthe rate split stays frozen: "
          "Theorem 6 says no purely delay-fed controller can\nhave "
          "both fairness and fixed delay.")


if __name__ == "__main__":
    main()
