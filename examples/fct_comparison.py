#!/usr/bin/env python3
"""Flow-completion-time shoot-out on the Fig. 13 dumbbell.

Drives the Section 5.1 workload -- DCTCP web-search flow sizes,
Poisson arrivals, 10 senders / 10 receivers across a 10 Gbps
bottleneck -- under DCQCN, TIMELY and patched TIMELY, and prints the
small-flow FCT percentiles plus the bottleneck queue distribution
(the data behind Figs. 14-16).

Run:  python examples/fct_comparison.py [load]
      (load factor, default 0.8; 1.0 == 8 Gbps offered)
"""

import sys

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments import fct_study


def main():
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8
    print(f"running the dumbbell FCT study at load {load:.2f} "
          f"({load * 8:.1f} Gbps offered)...\n")

    runs = []
    for protocol in fct_study.STUDY_PROTOCOLS:
        print(f"  simulating {protocol}...")
        runs.append(fct_study.run_protocol(protocol, load))
    print()

    print(fct_study.report_fct_vs_load(
        {run.protocol: [run] for run in runs}))
    print()
    print(fct_study.report_queue_stats(runs))
    print()

    rows = []
    for run in runs:
        fcts = np.asarray(run.small_fcts)
        rows.append([run.protocol,
                     float(np.percentile(fcts, 50)) * 1e3,
                     float(np.percentile(fcts, 99)) * 1e3,
                     float(fcts.max()) * 1e3,
                     run.utilization])
    print(format_table(
        ["protocol", "p50 (ms)", "p99 (ms)", "max (ms)", "util"],
        rows, title="Small-flow FCT tails and link utilization"))
    print("\nNote the paper's shape: similar utilization everywhere, "
          "but the delay-based protocols pay at the FCT tail because "
          "they cannot hold the queue down.")


if __name__ == "__main__":
    main()
