#!/usr/bin/env python3
"""Quickstart: the three layers of the library in one script.

1. **Analysis** -- solve DCQCN's fixed point (Theorem 1) for a few
   flow counts and compare with the paper's Eq. 14 approximation.
2. **Fluid models** -- integrate the DCQCN delay-ODE (Fig. 1) and
   watch the flows converge to that fixed point.
3. **Packet simulator** -- run the same scenario packet by packet and
   check the two layers agree (the paper's Fig. 2 methodology).

Run:  python examples/quickstart.py
"""

from repro import (DCQCNFluidModel, DCQCNParams, approximate_p_star,
                   dde, solve_fixed_point, units)
from repro.analysis.reporting import format_table
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


def analytic_fixed_points():
    print("== 1. DCQCN fixed points (Theorem 1 vs Eq. 14) ==")
    rows = []
    for n in (2, 10, 32):
        params = DCQCNParams.paper_default(num_flows=n)
        fp = solve_fixed_point(params)
        rows.append([n, fp.p, approximate_p_star(params),
                     units.packets_to_kb(fp.queue),
                     units.pps_to_gbps(fp.rate)])
    print(format_table(
        ["N", "p* exact", "p* Eq.14", "q* (KB)", "R* (Gbps)"], rows))
    print()


def fluid_run(n=2, duration=0.02):
    print(f"== 2. Fluid model: {n} flows at 40 Gbps ==")
    params = DCQCNParams.paper_default(num_flows=n)
    trace = dde.integrate(DCQCNFluidModel(params), duration, dt=2e-6,
                          record_stride=50)
    fp = solve_fixed_point(params)
    print(f"queue(t_end) = "
          f"{units.packets_to_kb(trace.final('q')):.1f} KB "
          f"(fixed point {units.packets_to_kb(fp.queue):.1f} KB)")
    for i in range(n):
        print(f"flow {i} rate = "
              f"{units.pps_to_gbps(trace.final(f'rc[{i}]')):.2f} Gbps "
              f"(fair share "
              f"{units.pps_to_gbps(params.fair_share):.2f} Gbps)")
    print()
    return fp


def packet_run(fp, n=2, duration=0.02):
    print(f"== 3. Packet simulation: same scenario ==")
    params = DCQCNParams.paper_default(num_flows=n)
    marker = REDMarker(params.red, params.mtu_bytes, seed=1)
    net = single_switch(n, link_gbps=40, marker=marker)
    for i in range(n):
        install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0, params)
    queue_mon = QueueMonitor(net.sim, net.bottleneck_port,
                             interval=50e-6)
    rate_mon = RateMonitor(net.sim,
                           {f"s{i}": net.senders[i] for i in range(n)},
                           interval=100e-6)
    net.sim.run(until=duration)
    sim_queue_kb = queue_mon.tail_mean_bytes(duration / 3) / 1024
    print(f"simulated queue tail mean = {sim_queue_kb:.1f} KB "
          f"(fluid fixed point "
          f"{units.packets_to_kb(fp.queue):.1f} KB)")
    for label, rate in sorted(rate_mon.final_rates().items()):
        print(f"{label} rate = {rate * 8 / 1e9:.2f} Gbps")
    print(f"bottleneck utilization = {net.utilization(duration):.1%}")
    print(f"events processed = {net.sim.events_processed:,}")


def main():
    analytic_fixed_points()
    fp = fluid_run()
    packet_run(fp)


if __name__ == "__main__":
    main()
