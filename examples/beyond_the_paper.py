#!/usr/bin/env python3
"""Beyond the paper: the Section 7 future-work experiments.

Runs the extension studies this reproduction adds on top of the
paper's own figures:

1. multi-bottleneck parking lot -- how each protocol family treats a
   flow that crosses several congested hops;
2. incast with finite buffers and PFC -- the lossless substrate the
   paper assumes away, exercised;
3. sub-line-rate burst pacing -- the footnote-6 incast mitigation and
   its fragility;
4. re-convergence time after churn;
5. the DCTCP window-based baseline (and footnote 9's limit cycle).

Run:  python examples/beyond_the_paper.py
"""

from repro import DCTCPFluidModel, dde, units
from repro.experiments import (ext_burst_mitigation,
                               ext_convergence_time,
                               ext_incast_pfc, ext_parking_lot)


def parking_lot_study():
    print("== 1. Multi-bottleneck parking lot ==")
    rows = ext_parking_lot.run(duration=0.05)
    print(ext_parking_lot.report(rows))
    print("DCQCN degrades multiplicatively per hop; the delay-based "
          "protocol starves the\ncross flow outright, because its RTT "
          "sums every hop's queue.\n")


def incast_study():
    print("== 2. Incast, finite buffers, PFC ==")
    rows = ext_incast_pfc.run(duration=0.04)
    print(ext_incast_pfc.report(rows))
    print("PFC alone is lossless but PAUSE-happy; DCQCN alone loses "
          "the first-RTT burst;\ntogether they are lossless with half "
          "the PAUSEs.\n")


def burst_study():
    print("== 3. Sub-line-rate bursts vs the 64KB incast ==")
    rows = ext_burst_mitigation.run(duration=0.1)
    print(ext_burst_mitigation.report(rows))
    print("0.5x bursts defuse the incast completely; 0.25x silently "
          "caps the flows --\nthe fragility the paper warns about.\n")


def convergence_study():
    print("== 4. Re-convergence after a flow joins ==")
    rows = ext_convergence_time.run()
    print(ext_convergence_time.report(rows))
    print()


def dctcp_limit_cycle():
    print("== 5. Footnote 9: DCTCP's window-based limit cycle ==")
    model = DCTCPFluidModel(capacity=units.gbps_to_pps(10.0),
                            num_flows=2, marking_threshold=65.0,
                            prop_delay=units.us(40))
    trace = dde.integrate(model, 0.08, dt=1e-6, record_stride=20)
    mean = trace.tail_mean("q", 0.02)
    swing = trace.tail("q", 0.02)
    print(f"queue orbits K=65 packets: mean {mean:.1f}, swing "
          f"[{swing.min():.1f}, {swing.max():.1f}] -- a limit cycle, "
          "not a fixed point,\nunlike DCQCN (Thm 1) and patched "
          "TIMELY (Thm 5).")


def main():
    parking_lot_study()
    incast_study()
    burst_study()
    convergence_study()
    dctcp_limit_cycle()


if __name__ == "__main__":
    main()
