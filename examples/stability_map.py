#!/usr/bin/env python3
"""Stability maps: where each protocol's control loop breaks.

Prints the Bode phase-margin sweeps behind Fig. 3 (DCQCN) and Fig. 11
(patched TIMELY), then spot-checks two predictions in the time domain
with the fluid models:

* DCQCN, 85 us delay: unstable at 10 flows, stable at 2 and 64 --
  the non-monotonic signature;
* patched TIMELY: stable at 10 flows, oscillating at 64 -- the queue
  (Eq. 31) lengthening its own feedback loop (Eq. 24).

Run:  python examples/stability_map.py
"""

from repro import units
from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fluid.patched_timely import PatchedTimelyFluidModel
from repro.core.params import DCQCNParams, PatchedTimelyParams
from repro.experiments import fig03_dcqcn_phase_margin as fig03
from repro.experiments import fig11_patched_phase_margin as fig11


def margin_tables():
    print("== DCQCN phase margins (Fig. 3a) ==")
    sweeps = fig03.panel_a(delays_us=(4, 55, 85, 100),
                           flow_counts=(1, 2, 6, 10, 20, 50, 100))
    print(fig03.report(sweeps, "phase margin (deg) vs N per delay"))
    print()
    print("== Patched TIMELY phase margins (Fig. 11) ==")
    rows = fig11.run()
    print(fig11.report(rows))
    crossover = fig11.crossover_flows(rows)
    print(f"instability onset: ~{crossover} flows\n")


def spot_check_dcqcn():
    print("== Time-domain spot check: DCQCN @ 85us ==")
    for n in (2, 10, 64):
        params = DCQCNParams.paper_default(num_flows=n,
                                           tau_star_us=85.0)
        trace = dde.integrate(
            DCQCNFluidModel(params, extend_red=True), 0.08, dt=2e-6,
            record_stride=50)
        mean = trace.tail_mean("q", 0.02)
        std = trace.tail_std("q", 0.02)
        verdict = "OSCILLATING" if std > 0.1 * max(mean, 1) else \
            "stable"
        print(f"  N={n:3d}: queue "
              f"{units.packets_to_kb(mean):8.1f} KB "
              f"+/- {units.packets_to_kb(std):6.1f} KB -> {verdict}")
    print()


def spot_check_patched():
    print("== Time-domain spot check: patched TIMELY ==")
    for n in (10, 64):
        patched = PatchedTimelyParams.paper_default(num_flows=n)
        trace = dde.integrate(PatchedTimelyFluidModel(patched), 0.15,
                              dt=1e-6, record_stride=50)
        mean = trace.tail_mean("q", 0.03)
        std = trace.tail_std("q", 0.03)
        verdict = "OSCILLATING" if std > 0.05 * mean else "stable"
        print(f"  N={n:3d}: queue "
              f"{units.packets_to_kb(mean):8.1f} KB "
              f"+/- {units.packets_to_kb(std):6.1f} KB -> {verdict}")


def main():
    margin_tables()
    spot_check_dcqcn()
    spot_check_patched()


if __name__ == "__main__":
    main()
