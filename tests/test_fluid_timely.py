"""TIMELY fluid model: Eq. 20-24 mechanics and limit-cycle behaviour."""

import numpy as np
import pytest

from repro import units
from repro.core.fluid import dde
from repro.core.fluid.history import UniformHistory
from repro.core.fluid.timely import ModifiedTimelyFluidModel, TimelyFluidModel


def make_history(state, dt=1e-6):
    return UniformHistory(0.0, dt, state)


class TestConstruction:
    def test_state_layout(self, timely_params):
        model = TimelyFluidModel(timely_params)
        labels = model.state_labels()
        assert labels == ["q", "g[0]", "g[1]", "r[0]", "r[1]"]

    def test_default_initial_rates_fair(self, timely_params):
        model = TimelyFluidModel(timely_params)
        state = model.initial_state()
        assert np.all(state[model.rate_slice()] == pytest.approx(
            timely_params.fair_share))

    def test_gradients_start_zero(self, timely_params):
        state = TimelyFluidModel(timely_params).initial_state()
        assert np.all(state[1:3] == 0.0)

    def test_rejects_bad_start_times(self, timely_params):
        with pytest.raises(ValueError):
            TimelyFluidModel(timely_params, start_times=[-1.0, 0.0])
        with pytest.raises(ValueError):
            TimelyFluidModel(timely_params, start_times=[0.0])


class TestEquation23And24:
    def test_update_interval_floor_is_min_rtt(self, timely_params):
        model = TimelyFluidModel(timely_params)
        fast = np.array([timely_params.capacity * 10])
        assert model.update_intervals(fast)[0] == pytest.approx(
            timely_params.min_rtt)

    def test_update_interval_segment_bound(self, timely_params):
        model = TimelyFluidModel(timely_params)
        slow = np.array([timely_params.segment
                         / (2 * timely_params.min_rtt)])
        assert model.update_intervals(slow)[0] == pytest.approx(
            2 * timely_params.min_rtt)

    def test_feedback_delay_grows_with_queue(self, timely_params):
        model = TimelyFluidModel(timely_params)
        empty = model.feedback_delay(0.0, 0.0)
        full = model.feedback_delay(1000.0, 0.0)
        assert full - empty == pytest.approx(
            1000.0 / timely_params.capacity)

    def test_feedback_delay_includes_prop_and_mtu(self, timely_params):
        model = TimelyFluidModel(timely_params)
        assert model.feedback_delay(0.0, 0.0) == pytest.approx(
            timely_params.prop_delay + 1.0 / timely_params.capacity)


class TestRateLawBranches:
    """Eq. 21's four branches, probed directly."""

    def branch_rate(self, params, queue, gradient):
        model = TimelyFluidModel(params)
        rates = np.array([params.fair_share] * params.num_flows)
        tau = model.update_intervals(rates)
        gradients = np.full(params.num_flows, gradient)
        return model.rate_derivative(queue, gradients, rates, tau)

    def test_below_t_low_increases(self, timely_params):
        deriv = self.branch_rate(timely_params,
                                 timely_params.q_low * 0.5, gradient=5.0)
        assert np.all(deriv > 0)

    def test_above_t_high_decreases(self, timely_params):
        deriv = self.branch_rate(timely_params,
                                 timely_params.q_high * 2.0,
                                 gradient=-5.0)
        assert np.all(deriv < 0)

    def test_negative_gradient_in_band_increases(self, timely_params):
        queue = (timely_params.q_low + timely_params.q_high) / 2
        deriv = self.branch_rate(timely_params, queue, gradient=-0.5)
        assert np.all(deriv > 0)

    def test_positive_gradient_in_band_decreases(self, timely_params):
        queue = (timely_params.q_low + timely_params.q_high) / 2
        deriv = self.branch_rate(timely_params, queue, gradient=0.5)
        assert np.all(deriv < 0)

    def test_zero_gradient_increases_in_original(self, timely_params):
        queue = (timely_params.q_low + timely_params.q_high) / 2
        deriv = self.branch_rate(timely_params, queue, gradient=0.0)
        assert np.all(deriv > 0)

    def test_zero_gradient_freezes_in_modified(self, timely_params):
        model = ModifiedTimelyFluidModel(timely_params)
        queue = (timely_params.q_low + timely_params.q_high) / 2
        rates = np.array([timely_params.fair_share] * 2)
        tau = model.update_intervals(rates)
        deriv = model.rate_derivative(queue, np.zeros(2), rates, tau)
        # g = 0 lands on the decrease side, whose magnitude is g*beta*R = 0.
        assert np.all(deriv == pytest.approx(0.0))

    def test_t_high_decrease_scales_with_excess(self, timely_params):
        mild = self.branch_rate(timely_params,
                                timely_params.q_high * 1.1, 0.0)
        severe = self.branch_rate(timely_params,
                                  timely_params.q_high * 3.0, 0.0)
        assert np.all(severe < mild)


class TestStartTimes:
    def test_inactive_flow_contributes_nothing(self, timely_params):
        model = TimelyFluidModel(timely_params,
                                 start_times=[0.0, 1.0])
        state = model.initial_state()
        history = make_history(state)
        deriv = model.derivatives(0.0, state, history)
        # Only flow 0 feeds the queue: C/2 total against capacity C
        # cannot grow the (empty) queue.
        assert deriv[model.queue_index] == 0.0
        # Flow 1's state is frozen.
        assert deriv[model.rate_slice()][1] == 0.0
        assert deriv[model.gradient_slice()][1] == 0.0

    def test_active_mask_flips_at_start_time(self, timely_params):
        model = TimelyFluidModel(timely_params, start_times=[0.0, 0.01])
        assert list(model.active_flows(0.005)) == [True, False]
        assert list(model.active_flows(0.02)) == [True, True]


class TestLimitCycles:
    def test_queue_never_settles(self, timely_params):
        """Theorem 3 in action: sustained oscillation, no fixed point."""
        model = TimelyFluidModel(timely_params)
        trace = dde.integrate(model, t_end=0.05, dt=1e-6,
                              record_stride=20)
        assert trace.tail_std("q", 0.01) > 5.0  # packets

    def test_final_rates_depend_on_initial_conditions(self,
                                                      timely_params):
        """Theorem 4: different starts land in different regimes."""
        mtu = timely_params.mtu_bytes
        even = dde.integrate(
            TimelyFluidModel(timely_params), 0.04, dt=1e-6,
            record_stride=20)
        skewed = dde.integrate(
            TimelyFluidModel(
                timely_params,
                initial_rates=[units.gbps_to_pps(7, mtu),
                               units.gbps_to_pps(3, mtu)]),
            0.04, dt=1e-6, record_stride=20)
        gap_even = abs(even.tail_mean("r[0]", 0.01)
                       - even.tail_mean("r[1]", 0.01))
        gap_skewed = abs(skewed.tail_mean("r[0]", 0.01)
                         - skewed.tail_mean("r[1]", 0.01))
        assert gap_skewed > 5 * max(gap_even,
                                    0.01 * timely_params.fair_share)

    def test_total_rate_tracks_capacity(self, timely_params):
        model = TimelyFluidModel(timely_params)
        trace = dde.integrate(model, t_end=0.05, dt=1e-6,
                              record_stride=20)
        total = trace.tail_mean("r[0]", 0.01) \
            + trace.tail_mean("r[1]", 0.01)
        assert total == pytest.approx(timely_params.capacity, rel=0.15)
