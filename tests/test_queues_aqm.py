"""ByteFIFO, RED marker, and PI marker behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import PIParams, REDParams
from repro.sim.packet import Packet
from repro.sim.piaqm import PIMarker
from repro.sim.queues import ByteFIFO
from repro.sim.red import REDMarker


def data_packet(size=1024, flow=0):
    return Packet(flow, size, "s0", "recv", kind="data")


class TestByteFIFO:
    def test_fifo_order(self):
        fifo = ByteFIFO()
        first, second = data_packet(), data_packet()
        fifo.enqueue(first)
        fifo.enqueue(second)
        assert fifo.dequeue() is first
        assert fifo.dequeue() is second

    def test_byte_accounting(self):
        fifo = ByteFIFO()
        fifo.enqueue(data_packet(1000))
        fifo.enqueue(data_packet(500))
        assert fifo.size_bytes == 1500
        fifo.dequeue()
        assert fifo.size_bytes == 500

    def test_high_water_mark(self):
        fifo = ByteFIFO()
        fifo.enqueue(data_packet(1000))
        fifo.enqueue(data_packet(1000))
        fifo.dequeue()
        fifo.dequeue()
        assert fifo.max_bytes == 2000

    def test_capacity_drops(self):
        fifo = ByteFIFO(capacity_bytes=1500)
        assert fifo.enqueue(data_packet(1000))
        assert not fifo.enqueue(data_packet(1000))
        assert fifo.dropped_packets == 1
        assert fifo.dropped_bytes == 1000
        assert fifo.size_bytes == 1000

    def test_empty_operations_raise(self):
        fifo = ByteFIFO()
        with pytest.raises(IndexError):
            fifo.dequeue()
        with pytest.raises(IndexError):
            fifo.peek()

    def test_peek_does_not_remove(self):
        fifo = ByteFIFO()
        packet = data_packet()
        fifo.enqueue(packet)
        assert fifo.peek() is packet
        assert len(fifo) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ByteFIFO(capacity_bytes=0)

    @given(st.lists(st.integers(min_value=64, max_value=9000),
                    min_size=0, max_size=50))
    def test_byte_count_invariant(self, sizes):
        fifo = ByteFIFO()
        for size in sizes:
            fifo.enqueue(data_packet(size))
        assert fifo.size_bytes == sum(sizes)
        drained = 0
        while not fifo.is_empty:
            drained += fifo.dequeue().size_bytes
        assert drained == sum(sizes)
        assert fifo.size_bytes == 0


class TestREDMarker:
    def make(self, seed=0):
        return REDMarker(REDParams.paper_default(), 1024, seed=seed)

    def test_never_marks_below_kmin(self):
        marker = self.make()
        assert not any(marker.should_mark(4 * 1024)
                       for _ in range(1000))

    def test_always_marks_above_kmax(self):
        marker = self.make()
        assert all(marker.should_mark(250 * 1024) for _ in range(100))

    def test_marking_rate_matches_probability(self):
        marker = self.make(seed=42)
        queue = 150 * 1024  # p ~ 0.00743 on the paper profile
        expected = marker.marking_probability(queue)
        trials = 200_000
        marks = sum(marker.should_mark(queue) for _ in range(trials))
        assert marks / trials == pytest.approx(expected, rel=0.1)

    def test_probability_matches_core_profile(self):
        marker = self.make()
        red = REDParams.paper_default()
        assert marker.marking_probability(100 * 1024) == pytest.approx(
            red.marking_probability(100.0))

    def test_deterministic_given_seed(self):
        a = [self.make(seed=7).should_mark(100 * 1024)
             for _ in range(1)]
        b = [self.make(seed=7).should_mark(100 * 1024)
             for _ in range(1)]
        assert a == b

    def test_update_is_noop(self):
        marker = self.make()
        marker.update(1e9, 0.0)
        assert marker.update_interval is None

    def test_rejects_bad_mtu(self):
        with pytest.raises(ValueError):
            REDMarker(REDParams.paper_default(), 0)


class TestPIMarker:
    def make(self, q_ref_kb=100.0, **kw):
        return PIMarker(PIParams.for_dcqcn(q_ref_kb), 1024, **kw)

    def test_starts_at_zero(self):
        assert self.make().p == 0.0

    def test_integrates_positive_error(self):
        marker = self.make()
        for _ in range(100):
            marker.update(200 * 1024, 0.0)
        assert marker.p > 0.0

    def test_unwinds_on_negative_error(self):
        marker = self.make()
        for _ in range(100):
            marker.update(200 * 1024, 0.0)
        peak = marker.p
        for _ in range(200):
            marker.update(0.0, 0.0)
        assert marker.p < peak

    def test_clamped_to_unit_interval(self):
        marker = self.make()
        for _ in range(100000):
            marker.update(10_000 * 1024, 0.0)
        assert marker.p <= 1.0
        for _ in range(100000):
            marker.update(0, 0.0)
        assert marker.p >= 0.0

    def test_equilibrium_at_reference(self):
        marker = self.make()
        marker.update(100 * 1024, 0.0)
        p_before = marker.p
        marker.update(100 * 1024, 0.0)  # at reference, no slope
        assert marker.p == pytest.approx(p_before)

    def test_marking_probability_is_state_not_queue(self):
        marker = self.make()
        for _ in range(50):
            marker.update(500 * 1024, 0.0)
        assert marker.marking_probability(0.0) == marker.p

    def test_should_mark_statistics(self):
        marker = self.make(seed=5)
        marker.p = 0.3
        trials = 100_000
        marks = sum(marker.should_mark(0) for _ in range(trials))
        assert marks / trials == pytest.approx(0.3, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            PIMarker(PIParams.for_dcqcn(100.0), 1024,
                     update_interval=0.0)
        with pytest.raises(ValueError):
            PIMarker(PIParams.for_dcqcn(100.0), 0)
