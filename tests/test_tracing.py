"""Packet tracer: filtering, chaining, and non-intrusiveness."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DCQCNParams
from repro.sim.red import REDMarker
from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet, PacketBatch
from repro.sim.topology import install_flow, single_switch
from repro.sim.tracing import PacketTracer


class Sink:
    name = "sink"

    def receive(self, packet, ingress=None):
        pass


def build_port(sim):
    return Port(sim, 1e9, Link(sim, 0.0, Sink()), name="p0")


class TestRecording:
    def test_records_departures_in_order(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim)
        tracer.attach(port)
        for seq in range(3):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()
        assert [e.seq for e in tracer.events] == [0, 1, 2]
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_kind_filter(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, kinds=["cnp"])
        tracer.attach(port)
        port.send(Packet(0, 1024, "s", "sink", kind="data"))
        port.send(Packet(0, 64, "s", "sink", kind="cnp"))
        sim.run()
        assert [e.kind for e in tracer.events] == ["cnp"]

    def test_flow_filter(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, flow_ids=[7])
        tracer.attach(port)
        port.send(Packet(7, 1024, "s", "sink", kind="data"))
        port.send(Packet(8, 1024, "s", "sink", kind="data"))
        sim.run()
        assert [e.flow_id for e in tracer.events] == [7]

    def test_event_cap(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, max_events=2)
        tracer.attach(port)
        for seq in range(5):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3
        assert "beyond" in tracer.dump()

    def test_chains_existing_hook(self):
        sim = Simulator()
        port = build_port(sim)
        seen = []
        port.on_transmit = seen.append
        tracer = PacketTracer(sim)
        tracer.attach(port)
        port.send(Packet(0, 1024, "s", "sink", kind="data"))
        sim.run()
        assert len(seen) == 1           # original hook still fires
        assert len(tracer.events) == 1  # and the tracer records

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketTracer(Simulator(), max_events=0)

    def test_marked_fraction_nan_when_no_data(self):
        # "No data packets" is an expected state, not an error: the
        # fraction is NaN so sweep statistics degrade gracefully.
        tracer = PacketTracer(Simulator())
        assert math.isnan(tracer.marked_fraction())

    def test_marked_fraction_nan_when_filters_exclude_data(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, kinds=["cnp"])
        tracer.attach(port)
        port.send(Packet(0, 1024, "s", "sink", kind="data"))
        sim.run()
        assert math.isnan(tracer.marked_fraction())

    def test_filtered_counted_separately_from_dropped(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, kinds=["data"], flow_ids=[0],
                              max_events=2)
        tracer.attach(port)
        # 2 recorded, then 2 beyond the cap; 1 wrong kind, 1 wrong
        # flow -- filters and the cap must not share a counter.
        for seq in range(4):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        port.send(Packet(0, 64, "s", "sink", kind="cnp"))
        port.send(Packet(9, 1024, "s", "sink", kind="data"))
        sim.run()
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 2
        assert tracer.filtered_events == 2

    def test_chains_preexisting_on_transmit_before_recording(self):
        # The pre-existing hook (e.g. PFC accounting) must run first
        # and still fire for packets the tracer then filters out.
        sim = Simulator()
        port = build_port(sim)
        order = []
        port.on_transmit = lambda packet: order.append("pfc")
        tracer = PacketTracer(sim, kinds=["cnp"])
        tracer.attach(port)
        port.send(Packet(0, 1024, "s", "sink", kind="data"))
        sim.run()
        assert order == ["pfc"]
        assert tracer.events == []
        assert tracer.filtered_events == 1


class BatchSink:
    """Sink with a batched entry point (keeps ports window-capable)."""

    name = "sink"

    def receive(self, packet, ingress=None):
        pass

    def receive_window(self, payload, arrivals, ingress=None):
        pass


class TestDropVisibility:
    def _drop_three(self, tracer_factory):
        # capacity 2048 B: the first packet goes straight to the
        # wire, two fill the FIFO, the fourth tail-drops.
        sim = Simulator()
        port = Port(sim, 1e9, Link(sim, 0.0, Sink()), name="p0",
                    capacity_bytes=2048)
        tracer = tracer_factory(sim, port)
        for seq in range(4):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()
        return tracer

    def test_drops_recorded_with_flag(self):
        def factory(sim, port):
            tracer = PacketTracer(sim)
            tracer.attach(port)
            return tracer
        tracer = self._drop_three(factory)
        # The drop lands first: it happens at enqueue time (t=0),
        # before any of the accepted packets finish serializing.
        assert [e.dropped for e in tracer.events] == \
            [True, False, False, False]
        (drop,) = [e for e in tracer.events if e.dropped]
        # The drop is stamped at the rejection instant (t=0, while
        # the port was still serializing packet 0) with the dropped
        # packet's identity.
        assert drop.seq == 3
        assert drop.time == 0.0
        assert "DROP" in tracer.dump()

    def test_chains_preexisting_on_drop(self):
        seen = []

        def factory(sim, port):
            port.on_drop = seen.append
            tracer = PacketTracer(sim)
            tracer.attach(port)
            return tracer
        tracer = self._drop_three(factory)
        assert [p.seq for p in seen] == [3]
        assert sum(e.dropped for e in tracer.events) == 1

    def test_drops_excluded_from_marked_fraction(self):
        sim = Simulator()
        port = Port(sim, 1e9, Link(sim, 0.0, Sink()), name="p0",
                    capacity_bytes=1024)
        tracer = PacketTracer(sim)
        tracer.attach(port)
        marked = Packet(0, 1024, "s", "sink", kind="data", seq=0)
        marked.ecn_marked = True
        port.send(marked)                     # departs, CE-marked
        port.send(Packet(0, 1024, "s", "sink", kind="data", seq=1))
        port.send(Packet(0, 1024, "s", "sink", kind="data", seq=2))
        sim.run()
        # One drop among three events; the mark rate is over the two
        # *departed* packets only.
        assert sum(e.dropped for e in tracer.events) == 1
        assert tracer.marked_fraction() == pytest.approx(0.5)


class TestWindowChaining:
    def test_tracer_keeps_port_window_capable(self):
        sim = Simulator()
        port = Port(sim, 1e9, Link(sim, 0.0, BatchSink()), name="p0",
                    batch_window=4)
        assert port._window_capable()
        tracer = PacketTracer(sim)
        tracer.attach(port)
        # The tracer installs the window companion alongside
        # on_transmit, so attaching it must not kick the port onto
        # the slow scalar path.
        assert port.on_transmit is not None
        assert port._window_capable()

    def test_scalar_only_hook_still_disables_window(self):
        sim = Simulator()
        port = Port(sim, 1e9, Link(sim, 0.0, BatchSink()), name="p0",
                    batch_window=4)
        port.on_transmit = lambda packet: None
        assert not port._window_capable()

    def test_window_departures_recorded(self):
        sim = Simulator()
        port = Port(sim, 1e9, Link(sim, 0.0, BatchSink()), name="p0",
                    batch_window=4)
        tracer = PacketTracer(sim)
        tracer.attach(port)
        port.send_batch(PacketBatch.uniform(0, 6, 1024, "s", "sink"))
        sim.run()
        assert port.packets_transmitted == 6
        assert [e.seq for e in tracer.events] == list(range(6))
        times = [e.time for e in tracer.events]
        assert times == sorted(times)
        # Finish stamps follow the serialization recurrence exactly.
        for gap in tracer.interarrival_times():
            assert gap == pytest.approx(1024 / 1e9, rel=1e-12)

    def test_window_path_respects_filters_and_cap(self):
        sim = Simulator()
        port = Port(sim, 1e9, Link(sim, 0.0, BatchSink()), name="p0",
                    batch_window=4)
        tracer = PacketTracer(sim, flow_ids=[0], max_events=3)
        tracer.attach(port)
        port.send_batch(PacketBatch.uniform(0, 5, 1024, "s", "sink"))
        sim.run()
        port.send_batch(PacketBatch.uniform(9, 2, 1024, "s", "sink"))
        sim.run()
        assert len(tracer.events) == 3
        assert tracer.dropped_events == 2     # flow 0 beyond the cap
        assert tracer.filtered_events == 2    # the flow-9 batch


def _trace_stream(ops, scheduler, batch_window):
    """Drive one port with ``ops`` and return its event stream."""
    sim = Simulator(scheduler=scheduler)
    port = Port(sim, 1e9, Link(sim, 0.0, BatchSink()), name="p0",
                batch_window=batch_window)
    tracer = PacketTracer(sim)
    tracer.attach(port)
    seq = 0
    for when, batched, count, size in ops:
        if batched:
            sim.schedule_at(when, port.send_batch,
                            PacketBatch.uniform(0, count, size, "s",
                                                "sink",
                                                seq_start=seq))
        else:
            for i in range(count):
                sim.schedule_at(when, port.send,
                                Packet(0, size, "s", "sink",
                                       kind="data", seq=seq + i))
        seq += count
    sim.run()
    return [(e.time, e.port_name, e.kind, e.flow_id, e.seq,
             e.size_bytes, e.ecn_marked, e.dropped)
            for e in tracer.events]


@st.composite
def _op_schedules(draw):
    """Injection schedules mixing batches and scalar bursts."""
    n = draw(st.integers(min_value=1, max_value=4))
    times = draw(st.lists(st.integers(min_value=0, max_value=40),
                          min_size=n, max_size=n, unique=True))
    return [(t * 1e-6,
             draw(st.booleans()),
             draw(st.integers(min_value=1, max_value=6)),
             draw(st.sampled_from((512, 1024, 1500))))
            for t in sorted(times)]


class TestSchedulerWindowEquivalence:
    """ISSUE 9 property: one trace, whatever the engine internals.

    The tracer stream (times, identities, flags) must be invariant
    across the heap and calendar schedulers and across the scalar vs
    vectorized-window transmit paths -- otherwise traces could not be
    compared between runs that differ only in engine configuration.
    """

    @settings(max_examples=40, deadline=None)
    @given(ops=_op_schedules())
    def test_identical_streams(self, ops):
        reference = _trace_stream(ops, "heap", None)
        assert len(reference) == sum(op[2] for op in ops)
        for scheduler in ("heap", "calendar"):
            for batch_window in (None, 4):
                if (scheduler, batch_window) == ("heap", None):
                    continue
                assert _trace_stream(ops, scheduler, batch_window) \
                    == reference, (scheduler, batch_window)


class TestOnRealScenario:
    def test_marked_fraction_tracks_red(self):
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=2)
        marker = REDMarker(params.red, params.mtu_bytes, seed=3)
        net = single_switch(2, link_gbps=10, marker=marker)
        tracer = PacketTracer(net.sim, kinds=["data"])
        tracer.attach(net.bottleneck_port)
        for i in range(2):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0,
                         params)
        net.sim.run(until=0.01)
        fraction = tracer.marked_fraction()
        # Congested DCQCN marks a small but nonzero fraction.
        assert 0.0 < fraction < 0.2
        # Departures are serialization-limited: gaps >= packet time.
        gaps = tracer.interarrival_times()
        packet_time = 1024 / net.link_rate_bytes
        assert min(gaps) >= packet_time * 0.99

    def test_dump_format(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim)
        tracer.attach(port)
        packet = Packet(3, 1024, "s", "sink", kind="data", seq=9)
        packet.ecn_marked = True
        port.send(packet)
        sim.run()
        text = tracer.dump()
        assert "flow=3" in text
        assert "seq=9" in text
        assert "CE" in text
