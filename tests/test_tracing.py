"""Packet tracer: filtering, chaining, and non-intrusiveness."""

import math

import pytest

from repro.core.params import DCQCNParams
from repro.sim.red import REDMarker
from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet
from repro.sim.topology import install_flow, single_switch
from repro.sim.tracing import PacketTracer


class Sink:
    name = "sink"

    def receive(self, packet, ingress=None):
        pass


def build_port(sim):
    return Port(sim, 1e9, Link(sim, 0.0, Sink()), name="p0")


class TestRecording:
    def test_records_departures_in_order(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim)
        tracer.attach(port)
        for seq in range(3):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()
        assert [e.seq for e in tracer.events] == [0, 1, 2]
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_kind_filter(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, kinds=["cnp"])
        tracer.attach(port)
        port.send(Packet(0, 1024, "s", "sink", kind="data"))
        port.send(Packet(0, 64, "s", "sink", kind="cnp"))
        sim.run()
        assert [e.kind for e in tracer.events] == ["cnp"]

    def test_flow_filter(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, flow_ids=[7])
        tracer.attach(port)
        port.send(Packet(7, 1024, "s", "sink", kind="data"))
        port.send(Packet(8, 1024, "s", "sink", kind="data"))
        sim.run()
        assert [e.flow_id for e in tracer.events] == [7]

    def test_event_cap(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, max_events=2)
        tracer.attach(port)
        for seq in range(5):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3
        assert "beyond" in tracer.dump()

    def test_chains_existing_hook(self):
        sim = Simulator()
        port = build_port(sim)
        seen = []
        port.on_transmit = seen.append
        tracer = PacketTracer(sim)
        tracer.attach(port)
        port.send(Packet(0, 1024, "s", "sink", kind="data"))
        sim.run()
        assert len(seen) == 1           # original hook still fires
        assert len(tracer.events) == 1  # and the tracer records

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketTracer(Simulator(), max_events=0)

    def test_marked_fraction_nan_when_no_data(self):
        # "No data packets" is an expected state, not an error: the
        # fraction is NaN so sweep statistics degrade gracefully.
        tracer = PacketTracer(Simulator())
        assert math.isnan(tracer.marked_fraction())

    def test_marked_fraction_nan_when_filters_exclude_data(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, kinds=["cnp"])
        tracer.attach(port)
        port.send(Packet(0, 1024, "s", "sink", kind="data"))
        sim.run()
        assert math.isnan(tracer.marked_fraction())

    def test_filtered_counted_separately_from_dropped(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim, kinds=["data"], flow_ids=[0],
                              max_events=2)
        tracer.attach(port)
        # 2 recorded, then 2 beyond the cap; 1 wrong kind, 1 wrong
        # flow -- filters and the cap must not share a counter.
        for seq in range(4):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        port.send(Packet(0, 64, "s", "sink", kind="cnp"))
        port.send(Packet(9, 1024, "s", "sink", kind="data"))
        sim.run()
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 2
        assert tracer.filtered_events == 2

    def test_chains_preexisting_on_transmit_before_recording(self):
        # The pre-existing hook (e.g. PFC accounting) must run first
        # and still fire for packets the tracer then filters out.
        sim = Simulator()
        port = build_port(sim)
        order = []
        port.on_transmit = lambda packet: order.append("pfc")
        tracer = PacketTracer(sim, kinds=["cnp"])
        tracer.attach(port)
        port.send(Packet(0, 1024, "s", "sink", kind="data"))
        sim.run()
        assert order == ["pfc"]
        assert tracer.events == []
        assert tracer.filtered_events == 1


class TestOnRealScenario:
    def test_marked_fraction_tracks_red(self):
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=2)
        marker = REDMarker(params.red, params.mtu_bytes, seed=3)
        net = single_switch(2, link_gbps=10, marker=marker)
        tracer = PacketTracer(net.sim, kinds=["data"])
        tracer.attach(net.bottleneck_port)
        for i in range(2):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0,
                         params)
        net.sim.run(until=0.01)
        fraction = tracer.marked_fraction()
        # Congested DCQCN marks a small but nonzero fraction.
        assert 0.0 < fraction < 0.2
        # Departures are serialization-limited: gaps >= packet time.
        gaps = tracer.interarrival_times()
        packet_time = 1024 / net.link_rate_bytes
        assert min(gaps) >= packet_time * 0.99

    def test_dump_format(self):
        sim = Simulator()
        port = build_port(sim)
        tracer = PacketTracer(sim)
        tracer.attach(port)
        packet = Packet(3, 1024, "s", "sink", kind="data", seq=9)
        packet.ecn_marked = True
        port.send(packet)
        sim.run()
        text = tracer.dump()
        assert "flow=3" in text
        assert "seq=9" in text
        assert "CE" in text
