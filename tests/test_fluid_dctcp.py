"""DCTCP fluid model: the footnote-9 limit cycle, checked."""

import numpy as np
import pytest

from repro import units
from repro.core.fluid import dde
from repro.core.fluid.dctcp import DCTCPFluidModel


def make_model(**kw):
    defaults = dict(capacity=units.gbps_to_pps(10.0),
                    num_flows=2,
                    marking_threshold=65.0,
                    prop_delay=units.us(40))
    defaults.update(kw)
    return DCTCPFluidModel(**defaults)


class TestConstruction:
    def test_state_layout(self):
        model = make_model()
        assert model.state_labels() == ["q", "alpha[0]", "alpha[1]",
                                        "w[0]", "w[1]"]

    def test_default_windows_bdp_share(self):
        model = make_model()
        state = model.initial_state()
        bdp = model.capacity * model.prop_delay
        assert np.all(state[model.window_slice()] ==
                      pytest.approx(bdp / 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_model(capacity=0.0)
        with pytest.raises(ValueError):
            make_model(num_flows=0)
        with pytest.raises(ValueError):
            make_model(marking_threshold=0.0)
        with pytest.raises(ValueError):
            make_model(prop_delay=0.0)
        with pytest.raises(ValueError):
            make_model(g=0.0)
        with pytest.raises(ValueError):
            make_model(initial_windows=[1.0])


class TestMechanics:
    def test_step_marking(self):
        model = make_model(marking_threshold=65.0)
        assert model.marking(64.9) == 0.0
        assert model.marking(65.1) == 1.0

    def test_rtt_includes_queuing(self):
        model = make_model()
        base = model.rtt(0.0)
        assert model.rtt(100.0) == pytest.approx(
            base + 100.0 / model.capacity)

    def test_windows_grow_without_marks(self):
        model = make_model()
        from repro.core.fluid.history import UniformHistory
        state = model.initial_state()
        history = UniformHistory(0.0, 1e-6, state)
        deriv = model.derivatives(0.0, state, history)
        assert np.all(deriv[model.window_slice()] > 0)


class TestLimitCycle:
    @pytest.fixture(scope="class")
    def trace(self):
        model = make_model()
        return model, dde.integrate(model, 0.1, dt=1e-6,
                                    record_stride=20)

    def test_queue_orbits_the_threshold(self, trace):
        model, result = trace
        tail_mean = result.tail_mean("q", 0.03)
        assert tail_mean == pytest.approx(model.threshold, rel=0.5)

    def test_sustained_oscillation(self, trace):
        """Footnote 9: window-based DCTCP limit-cycles, it does not
        settle -- unlike DCQCN's fixed point."""
        model, result = trace
        tail = result.tail("q", 0.03)
        assert tail.max() > model.threshold
        assert tail.min() < model.threshold
        assert result.tail_std("q", 0.03) > 1.0

    def test_windows_stay_fair(self, trace):
        model, result = trace
        w0 = result.tail_mean("w[0]", 0.03)
        w1 = result.tail_mean("w[1]", 0.03)
        assert w0 == pytest.approx(w1, rel=0.05)

    def test_throughput_matches_capacity(self, trace):
        model, result = trace
        # Mean aggregate W/RTT over the tail approximates C.
        window = 0.03
        total_w = (result.tail("w[0]", window)
                   + result.tail("w[1]", window))
        rtts = model.prop_delay + result.tail("q", window) \
            / model.capacity
        throughput = np.mean(total_w / rtts)
        assert throughput == pytest.approx(model.capacity, rel=0.1)

    def test_matches_packet_level_dctcp_queue(self, trace):
        """The fluid orbit centre agrees with the packet simulator's
        standing queue (tests/test_protocol_dctcp.py measures ~61 KB
        at the same K=65)."""
        model, result = trace
        assert 40.0 < result.tail_mean("q", 0.03) < 90.0

    def test_amplitude_grows_with_synchronized_flows(self):
        """In the fluid model every flow reacts to the same delayed
        marking signal -- perfectly synchronized cuts -- so the
        aggregate sawtooth swing *grows* with N (the desynchronization
        that softens real deployments is exactly what fluid models
        average away; cf. the paper's per-burst-pacing discussion)."""
        few = dde.integrate(make_model(num_flows=1), 0.1, dt=1e-6,
                            record_stride=20)
        many = dde.integrate(make_model(num_flows=8), 0.1, dt=1e-6,
                             record_stride=20)
        assert many.tail_std("q", 0.03) > few.tail_std("q", 0.03)
