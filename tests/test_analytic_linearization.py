"""Closed-form (Appendix A) vs finite-difference linearization."""

import math

import pytest

from repro.core.fixedpoint.dcqcn import solve_fixed_point
from repro.core.params import DCQCNParams
from repro.core.stability.analytic import (counter_factor, flow_jacobians,
                                           mark_window_factor,
                                           past_recovery_factor)
from repro.core.stability.bode import phase_margin
from repro.core.stability.dcqcn_margin import DCQCNLoopGain


def finite_difference(fn, x, step=1e-7):
    return (fn(x + step) - fn(x - step)) / (2 * step)


class TestFactorDerivatives:
    """Each closed-form partial against a numeric derivative."""

    def test_mark_window_value(self):
        a = mark_window_factor(0.01, 1e6, 50e-6)
        assert a.value == pytest.approx(1 - 0.99 ** 50.0, rel=1e-9)

    def test_mark_window_dp(self):
        rate, window = 1e6, 50e-6
        numeric = finite_difference(
            lambda p: mark_window_factor(p, rate, window).value, 0.01,
            step=1e-8)
        assert mark_window_factor(0.01, rate, window).d_dp == \
            pytest.approx(numeric, rel=1e-5)

    def test_mark_window_dr(self):
        numeric = finite_difference(
            lambda r: mark_window_factor(0.01, r, 50e-6).value, 1e6,
            step=1.0)
        assert mark_window_factor(0.01, 1e6, 50e-6).d_dr == \
            pytest.approx(numeric, rel=1e-5)

    def test_counter_factor_small_p_limit(self):
        # b -> 1/B as p -> 0.
        b = counter_factor(1e-9, 10240.0, 0.0)
        assert b.value == pytest.approx(1.0 / 10240.0, rel=1e-4)

    def test_counter_factor_dp(self):
        numeric = finite_difference(
            lambda p: counter_factor(p, 500.0, 0.0).value, 0.005,
            step=1e-9)
        assert counter_factor(0.005, 500.0, 0.0).d_dp == \
            pytest.approx(numeric, rel=1e-4)

    def test_counter_factor_dr_via_timer_window(self):
        timer, rate, p = 55e-6, 1e6, 0.005

        def value_of(r):
            return counter_factor(p, timer * r, timer).value

        numeric = finite_difference(value_of, rate, step=1.0)
        assert counter_factor(p, timer * rate, timer).d_dr == \
            pytest.approx(numeric, rel=1e-4)

    def test_past_recovery_dp(self):
        p, window = 0.005, 500.0

        def value_of(pp):
            base = counter_factor(pp, window, 0.0)
            return past_recovery_factor(base, pp, 5 * window,
                                        0.0).value

        numeric = finite_difference(value_of, p, step=1e-9)
        base = counter_factor(p, window, 0.0)
        assert past_recovery_factor(base, p, 5 * window, 0.0).d_dp == \
            pytest.approx(numeric, rel=1e-4)

    def test_huge_window_underflows_cleanly(self):
        b = counter_factor(0.5, 1e7, 0.0)
        assert b.value == 0.0
        assert math.isfinite(b.d_dp)
        assert math.isfinite(b.d_dr)


class TestJacobianAgreement:
    @pytest.mark.parametrize("n,tau_star_us", [
        (2, 4.0), (10, 85.0), (64, 100.0)])
    def test_matches_finite_differences(self, n, tau_star_us):
        params = DCQCNParams.paper_default(num_flows=n,
                                           tau_star_us=tau_star_us)
        numeric = DCQCNLoopGain(params, jacobian_mode="numeric")
        analytic = DCQCNLoopGain(params, jacobian_mode="analytic")
        assert numeric.m0 == pytest.approx(analytic.m0, rel=1e-6,
                                           abs=1e-9)
        assert numeric.b_p == pytest.approx(analytic.b_p, rel=1e-6)
        assert numeric.b_r == pytest.approx(analytic.b_r, rel=1e-6,
                                            abs=1e-9)

    def test_margins_identical(self):
        params = DCQCNParams.paper_default(num_flows=10,
                                           tau_star_us=85.0)
        pm_numeric = phase_margin(
            DCQCNLoopGain(params, jacobian_mode="numeric")).margin_deg
        pm_analytic = phase_margin(
            DCQCNLoopGain(params, jacobian_mode="analytic")).margin_deg
        assert pm_numeric == pytest.approx(pm_analytic, abs=1e-3)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DCQCNLoopGain(DCQCNParams.paper_default(),
                          jacobian_mode="symbolic")

    def test_structural_zeros(self):
        """Eq. 5/6: alpha does not appear in dR_T/dt, and R_T/R_C do
        not appear in d(alpha)/dt."""
        params = DCQCNParams.paper_default()
        closed = flow_jacobians(params, solve_fixed_point(
            params, extend_red=True))
        assert closed.m0[0, 1] == 0.0
        assert closed.m0[0, 2] == 0.0
        assert closed.m0[1, 0] == 0.0

    def test_signs_at_fixed_point(self):
        """Physical sanity: marking pushes rates down, alpha up."""
        params = DCQCNParams.paper_default()
        closed = flow_jacobians(params, solve_fixed_point(
            params, extend_red=True))
        assert closed.b_p[0] > 0    # more marking -> alpha grows
        assert closed.b_p[2] < 0    # more marking -> rate falls
        assert closed.m0[2, 1] > 0  # higher target -> rate recovers


class TestPatchedTimelyClosedForm:
    @pytest.mark.parametrize("n", [2, 10, 40])
    def test_matches_finite_differences(self, n):
        from repro.core.params import PatchedTimelyParams
        from repro.core.stability.timely_margin import \
            PatchedTimelyLoopGain
        patched = PatchedTimelyParams.paper_default(num_flows=n)
        numeric = PatchedTimelyLoopGain(patched,
                                        jacobian_mode="numeric")
        analytic = PatchedTimelyLoopGain(patched,
                                         jacobian_mode="analytic")
        assert numeric.m0 == pytest.approx(analytic.m0, rel=1e-5,
                                           abs=1e-9)
        assert numeric.b_q1 == pytest.approx(analytic.b_q1, rel=1e-5)
        assert numeric.b_q2 == pytest.approx(analytic.b_q2, rel=1e-5,
                                             abs=1e-9)

    def test_margins_identical(self):
        from repro.core.params import PatchedTimelyParams
        from repro.core.stability.timely_margin import \
            PatchedTimelyLoopGain
        patched = PatchedTimelyParams.paper_default(num_flows=20)
        pm = [phase_margin(PatchedTimelyLoopGain(
            patched, jacobian_mode=mode)).margin_deg
            for mode in ("numeric", "analytic")]
        assert pm[0] == pytest.approx(pm[1], abs=1e-3)

    def test_invalid_mode_rejected(self):
        from repro.core.params import PatchedTimelyParams
        from repro.core.stability.timely_margin import \
            PatchedTimelyLoopGain
        with pytest.raises(ValueError):
            PatchedTimelyLoopGain(
                PatchedTimelyParams.paper_default(),
                jacobian_mode="magic")

    def test_signs_at_fixed_point(self):
        """A deeper queue must decelerate the rate; a rising gradient
        must too."""
        from repro.core.params import PatchedTimelyParams
        from repro.core.stability.analytic import \
            patched_flow_jacobians
        from repro.core.fixedpoint.timely import patched_fixed_point
        patched = PatchedTimelyParams.paper_default(num_flows=2)
        point = patched_fixed_point(patched)
        closed = patched_flow_jacobians(patched,
                                        float(point.rates[0]),
                                        point.queue)
        assert closed.b_q1[1] < 0   # deeper queue -> rate falls
        assert closed.m0[1, 0] < 0  # rising gradient -> rate falls
        assert closed.m0[0, 0] < 0  # gradient EWMA is a stable pole
