"""DCQCN fluid model: event-rate algebra, dynamics, convergence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.fluid import dde
from repro.core.fluid.dcqcn import (DCQCNFluidModel, MIN_RATE,
                                    qcn_event_rates, survival_exponent)
from repro.core.fluid.history import UniformHistory
from repro.core.params import DCQCNParams


class TestSurvivalExponent:
    def test_p_zero_is_one(self):
        assert survival_exponent(0.0, 1000.0) == pytest.approx(1.0)

    def test_matches_direct_power_for_small_counts(self):
        assert survival_exponent(0.01, 100.0) == pytest.approx(
            0.99 ** 100, rel=1e-9)

    def test_huge_count_underflows_to_zero(self):
        assert survival_exponent(0.5, 1e7) == 0.0

    @given(st.floats(min_value=1e-6, max_value=0.99),
           st.floats(min_value=1.0, max_value=1e6))
    def test_in_unit_interval(self, p, count):
        value = survival_exponent(p, count)
        assert 0.0 <= value <= 1.0


class TestQCNEventRates:
    def test_zero_p_limits(self, dcqcn_params):
        rate = np.array([dcqcn_params.fair_share])
        events = qcn_event_rates(0.0, rate, dcqcn_params)
        assert events.mark_fraction[0] == pytest.approx(0.0)
        # Byte counter fires every B packets -> rate R/B.
        assert events.byte_rate[0] == pytest.approx(
            rate[0] / dcqcn_params.byte_counter)
        # Timer fires every T seconds.
        assert events.timer_rate[0] == pytest.approx(
            1.0 / dcqcn_params.timer)
        # Without marking, every event is past fast recovery.
        assert events.byte_ai_rate[0] == pytest.approx(
            events.byte_rate[0])
        assert events.timer_ai_rate[0] == pytest.approx(
            events.timer_rate[0])

    def test_small_p_continuity(self, dcqcn_params):
        rate = np.array([dcqcn_params.fair_share])
        at_zero = qcn_event_rates(0.0, rate, dcqcn_params)
        near_zero = qcn_event_rates(1e-12, rate, dcqcn_params)
        assert near_zero.byte_rate[0] == pytest.approx(
            at_zero.byte_rate[0], rel=1e-6)
        assert near_zero.timer_rate[0] == pytest.approx(
            at_zero.timer_rate[0], rel=1e-6)

    def test_marking_suppresses_ai_events(self, dcqcn_params):
        rate = np.array([dcqcn_params.fair_share])
        events = qcn_event_rates(0.05, rate, dcqcn_params)
        # Post-fast-recovery events need long unmarked runs, so they
        # are strictly rarer than raw events under marking.
        assert events.byte_ai_rate[0] < events.byte_rate[0]
        assert events.timer_ai_rate[0] < events.timer_rate[0]

    def test_mark_fraction_increases_with_p(self, dcqcn_params):
        rate = np.array([dcqcn_params.fair_share])
        fractions = [qcn_event_rates(p, rate,
                                     dcqcn_params).mark_fraction[0]
                     for p in (1e-4, 1e-3, 1e-2, 1e-1)]
        assert all(a < b for a, b in zip(fractions, fractions[1:]))

    @given(st.floats(min_value=0.0, max_value=0.999))
    @settings(max_examples=50)
    def test_rates_nonnegative_and_finite(self, p):
        params = DCQCNParams.paper_default()
        rate = np.array([params.fair_share])
        events = qcn_event_rates(p, rate, params)
        for field in events:
            assert np.all(field >= 0.0)
            assert np.all(np.isfinite(field))

    def test_vectorized_over_flows(self, dcqcn_params):
        rates = np.array([1e5, 5e5, 2e6])
        events = qcn_event_rates(0.01, rates, dcqcn_params)
        assert events.byte_rate.shape == (3,)
        # Byte-counter event rate grows with the flow's rate.
        assert events.byte_rate[0] < events.byte_rate[2]


class TestModelConstruction:
    def test_state_layout(self, dcqcn_ten_flows):
        model = DCQCNFluidModel(dcqcn_ten_flows)
        labels = model.state_labels()
        assert len(labels) == 1 + 3 * 10
        assert labels[0] == "q"
        assert labels[model.rc_slice()][0] == "rc[0]"

    def test_initial_state_line_rate(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params)
        state = model.initial_state()
        assert np.all(state[model.rc_slice()] ==
                      pytest.approx(dcqcn_params.capacity))
        assert np.all(state[model.alpha_slice()] == 1.0)
        assert state[model.queue_index] == 0.0

    def test_custom_initial_rates(self, dcqcn_params):
        rates = [1e5, 2e5]
        model = DCQCNFluidModel(dcqcn_params, initial_rates=rates)
        state = model.initial_state()
        assert state[model.rc_slice()] == pytest.approx(rates)

    def test_rejects_wrong_rate_count(self, dcqcn_params):
        with pytest.raises(ValueError):
            DCQCNFluidModel(dcqcn_params, initial_rates=[1e5])

    def test_rejects_negative_queue(self, dcqcn_params):
        with pytest.raises(ValueError):
            DCQCNFluidModel(dcqcn_params, initial_queue=-1.0)

    def test_rejects_negative_marking_delay(self, dcqcn_params):
        with pytest.raises(ValueError):
            DCQCNFluidModel(dcqcn_params, marking_delay=-1e-6)


class TestDerivatives:
    def make_history(self, model, state, dt=1e-6):
        return UniformHistory(0.0, dt, state)

    def test_queue_grows_at_line_rate_start(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params)
        state = model.initial_state()
        history = self.make_history(model, state)
        deriv = model.derivatives(0.0, state, history)
        # Two line-rate flows into one line-rate bottleneck: the queue
        # grows at (2 - 1) * C.
        assert deriv[model.queue_index] == pytest.approx(
            dcqcn_params.capacity)

    def test_empty_queue_cannot_drain(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params,
                                initial_rates=[1e3, 1e3])
        state = model.initial_state()
        history = self.make_history(model, state)
        deriv = model.derivatives(0.0, state, history)
        assert deriv[model.queue_index] == 0.0

    def test_no_marking_below_kmin(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params)
        state = model.initial_state()
        history = self.make_history(model, state)
        assert model.marking_probability(0.0, history) == 0.0

    def test_alpha_decays_without_marking(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params)
        state = model.initial_state()
        history = self.make_history(model, state)
        deriv = model.derivatives(0.0, state, history)
        assert np.all(deriv[model.alpha_slice()] < 0.0)

    def test_clamp_bounds_everything(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params)
        state = model.initial_state()
        state[model.queue_index] = -5.0
        state[model.alpha_slice()] = 2.0
        state[model.rc_slice()] = 1e12
        clamped = model.clamp(state)
        assert clamped[model.queue_index] == 0.0
        assert np.all(clamped[model.alpha_slice()] <= 1.0)
        assert np.all(clamped[model.rc_slice()] <= model.line_rate)
        state[model.rc_slice()] = 0.0
        assert np.all(model.clamp(state)[model.rc_slice()] >= MIN_RATE)


class TestConvergence:
    def test_two_flows_converge_to_fair_share(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params)
        trace = dde.integrate(model, t_end=0.03, dt=2e-6,
                              record_stride=20)
        fair = dcqcn_params.fair_share
        assert trace.tail_mean("rc[0]", 0.005) == pytest.approx(
            fair, rel=0.05)
        assert trace.tail_mean("rc[1]", 0.005) == pytest.approx(
            fair, rel=0.05)

    def test_asymmetric_start_converges(self, dcqcn_params):
        mtu = dcqcn_params.mtu_bytes
        model = DCQCNFluidModel(
            dcqcn_params,
            initial_rates=[units.gbps_to_pps(30, mtu),
                           units.gbps_to_pps(10, mtu)])
        trace = dde.integrate(model, t_end=0.05, dt=2e-6,
                              record_stride=20)
        r0 = trace.tail_mean("rc[0]", 0.01)
        r1 = trace.tail_mean("rc[1]", 0.01)
        assert r0 == pytest.approx(r1, rel=0.1)

    def test_queue_settles_between_red_thresholds(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params)
        trace = dde.integrate(model, t_end=0.03, dt=2e-6,
                              record_stride=20)
        queue = trace.tail_mean("q", 0.005)
        assert dcqcn_params.red.kmin < queue < dcqcn_params.red.kmax

    def test_large_delay_ten_flows_oscillates(self):
        params = DCQCNParams.paper_default(num_flows=10,
                                           tau_star_us=85.0)
        model = DCQCNFluidModel(params)
        trace = dde.integrate(model, t_end=0.05, dt=2e-6,
                              record_stride=20)
        stable_params = DCQCNParams.paper_default(num_flows=10,
                                                  tau_star_us=4.0)
        stable = dde.integrate(DCQCNFluidModel(stable_params),
                               t_end=0.05, dt=2e-6, record_stride=20)
        # The 85us system's tail queue swings far more than the 4us one.
        assert trace.tail_std("q", 0.01) > 5 * stable.tail_std("q", 0.01)

    def test_ingress_marking_delay_degrades_stability(self):
        params = DCQCNParams.paper_default(num_flows=2,
                                           tau_star_us=85.0)
        egress = dde.integrate(DCQCNFluidModel(params), 0.05, dt=2e-6,
                               record_stride=20)
        ingress = dde.integrate(
            DCQCNFluidModel(params, marking_delay=units.us(40)),
            0.05, dt=2e-6, record_stride=20)
        assert ingress.tail_std("q", 0.01) > egress.tail_std("q", 0.01)
