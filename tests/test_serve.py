"""The fleet observability plane: ``repro serve`` endpoints, fleet
metric merging, cross-host trace stitching, and the sampling
profiler.

The aggregation layer is exercised both in-process (unit tests on
:class:`FleetAggregator`) and over real HTTP (an
:class:`ObservabilityServer` on an ephemeral port), including the
paper-repro's two headline guarantees: during a live two-worker
queue sweep ``/metrics`` serves the merged fleet counters and
``/fleet`` reports both workers live; and a trace id stamped by the
coordinator survives a SIGKILLed worker, so the stolen cell still
stitches into one tree.
"""

import json
import os
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (SamplingProfiler, classify_frame,
                               profiled, publish_engine_rates)
from repro.obs.report import render_fleet
from repro.obs.serve import FleetAggregator, ObservabilityServer
from repro.obs.spans import (append_trace_record, build_fleet_tree,
                             new_trace_id, read_trace_records,
                             trace_shard_path)
from repro.obs.telemetry import Telemetry
from repro.perf import (QueueBackend, QueueWorker, SweepRunner,
                        spawn_worker)
from repro.perf.backend import QueueLayout, _atomic_write_json
from repro.perf.sweep import WORKER_ENV

# -- module-level cells (resolvable by name across processes) -----------------


def draw(seed):
    rng = np.random.default_rng(seed)
    return float(rng.random())


def trace_kill_cell(x, flag_dir):
    """x == 2 SIGKILLs its worker process -- once (see
    test_backend.kill_once_cell for the full rationale)."""
    flag = Path(flag_dir) / f"killed-{x}"
    if x == 2 and os.environ.get(WORKER_ENV) and not flag.exists():
        flag.touch()
        import signal
        os.kill(os.getpid(), signal.SIGKILL)
    return x + 1000


@pytest.fixture(autouse=True)
def _restore_worker_env():
    saved = os.environ.get(WORKER_ENV)
    yield
    if saved is None:
        os.environ.pop(WORKER_ENV, None)
    else:
        os.environ[WORKER_ENV] = saved


def run_worker_thread(queue_dir, worker_id="peer", max_idle=8.0,
                      lease_ttl=10.0, poll=0.02):
    worker = QueueWorker(queue_dir, worker_id=worker_id,
                        lease_ttl=lease_ttl, poll_interval=poll)
    thread = threading.Thread(
        target=lambda: worker.run(max_idle=max_idle), daemon=True)
    thread.start()
    return worker, thread


def stop_worker(worker, thread, timeout=15.0):
    worker._stop.set()
    thread.join(timeout=timeout)
    assert not thread.is_alive()


def age_file(path, seconds):
    stat = os.stat(path)
    os.utime(path, (stat.st_atime - seconds,
                    stat.st_mtime - seconds))


def register_worker(queue_dir, worker_id, completed=0,
                    extra_metrics=None):
    """Fabricate a heartbeat registration with a piggybacked
    metrics snapshot, exactly as QueueWorker.heartbeat writes it."""
    layout = QueueLayout(queue_dir).ensure()
    metrics = {"perf.worker.cells_completed":
               {"type": "counter", "value": completed}}
    metrics.update(extra_metrics or {})
    _atomic_write_json(layout.worker_path(worker_id), {
        "worker": worker_id, "pid": 12345, "host": "testhost",
        "beats": 1, "fingerprint": "fp-test", "ts": time.time(),
        "metrics": metrics})
    return layout


def http_get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


def write_run(directory, experiment="demo", run_id=None, gauges=()):
    telemetry = Telemetry(directory, experiment=experiment,
                          run_id=run_id)
    with telemetry.activate(params={"n": 1}):
        for name, value in gauges:
            telemetry.registry.gauge(name).set(value)
    return telemetry


# -- FleetAggregator (in-process) ---------------------------------------------


class TestFleetAggregator:
    def test_requires_some_root(self):
        with pytest.raises(ValueError, match="root"):
            FleetAggregator()

    def test_root_autodetects_queue_dir(self, tmp_path):
        register_worker(tmp_path, "w1")
        assert FleetAggregator(tmp_path).queue_dir == tmp_path
        bare = tmp_path / "bare"
        bare.mkdir()
        assert FleetAggregator(bare).queue_dir is None

    def test_merged_counter_sums_and_labels(self, tmp_path):
        register_worker(tmp_path, "w1", completed=2)
        register_worker(tmp_path, "w2", completed=3)
        text = FleetAggregator(tmp_path).metrics_text()
        lines = text.splitlines()
        # One fleet-wide sum plus one labelled series per worker.
        assert "perf_worker_cells_completed 5.0" in lines
        assert 'perf_worker_cells_completed{worker="w1"} 2.0' \
            in lines
        assert 'perf_worker_cells_completed{worker="w2"} 3.0' \
            in lines
        assert "# TYPE perf_worker_cells_completed counter" in lines

    def test_gauges_stay_per_source(self, tmp_path):
        gauge = {"sim.q": {"type": "gauge", "value": 7.0}}
        register_worker(tmp_path, "w1", extra_metrics=gauge)
        register_worker(tmp_path, "w2", extra_metrics=gauge)
        lines = FleetAggregator(tmp_path).metrics_text().splitlines()
        assert 'sim_q{worker="w1"} 7.0' in lines
        assert 'sim_q{worker="w2"} 7.0' in lines
        # No unlabeled merged gauge: a fleet-summed gauge is a lie.
        assert not any(line.startswith("sim_q ") for line in lines)

    def test_stale_worker_snapshot_expired(self, tmp_path):
        layout = register_worker(tmp_path, "fresh", completed=1)
        register_worker(tmp_path, "stale", completed=9)
        age_file(layout.worker_path("stale"), 3600)
        aggregator = FleetAggregator(tmp_path, worker_ttl=30.0)
        sources = aggregator.metrics_sources()
        assert "fresh" in sources and "stale" not in sources
        # The fleet sum must not include the dead worker's counters.
        assert ("perf_worker_cells_completed 1.0"
                in aggregator.metrics_text().splitlines())
        fleet = aggregator.fleet()
        assert fleet["workers_live"] == 1
        by_id = {w["worker"]: w for w in fleet["workers"]}
        assert by_id["fresh"]["live"] is True
        assert by_id["stale"]["live"] is False

    def test_runlog_shards_are_metric_sources(self, tmp_path):
        write_run(tmp_path, run_id="demo-1",
                  gauges=[("demo.q", 5.0)])
        aggregator = FleetAggregator(telemetry_dir=tmp_path)
        sources = aggregator.metrics_sources()
        assert any(name.startswith("run:") for name in sources)
        assert 'demo_q{worker="run:demo-1"} 5.0' \
            in aggregator.metrics_text().splitlines()

    def test_events_since_resumes_from_offset(self, tmp_path):
        write_run(tmp_path, run_id="demo-1")
        aggregator = FleetAggregator(telemetry_dir=tmp_path)
        total, events = aggregator.events_since(0)
        assert total == len(events) > 0
        assert events[0]["type"] == "run_start"
        again, rest = aggregator.events_since(total)
        assert again == total and rest == []
        write_run(tmp_path, run_id="demo-2")
        grown, fresh = aggregator.events_since(total)
        assert grown > total
        assert all(event["_shard"] == "demo-2" for event in fresh)

    def test_events_experiment_filter(self, tmp_path):
        write_run(tmp_path, experiment="fig04", run_id="fig04-1")
        write_run(tmp_path, experiment="fig05", run_id="fig05-1")
        aggregator = FleetAggregator(telemetry_dir=tmp_path)
        total, events = aggregator.events_since(0,
                                                experiment="fig04")
        assert events and all(
            event["_experiment"] == "fig04" for event in events)
        # The offset still indexes the unfiltered stream.
        assert total > len(events)


# -- HTTP endpoints -----------------------------------------------------------


class TestServeEndpoints:
    def test_healthz_index_and_404(self, tmp_path):
        with ObservabilityServer(telemetry_dir=tmp_path) as server:
            assert http_get(server.url + "/healthz") == (200, "ok\n")
            status, body = http_get(server.url + "/")
            assert status == 200 and "/metrics" in body
            request = urllib.request.Request(server.url + "/nope")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10.0)
            assert err.value.code == 404

    def test_metrics_and_fleet_endpoints(self, tmp_path):
        register_worker(tmp_path, "w1", completed=4)
        with ObservabilityServer(tmp_path) as server:
            status, text = http_get(server.url + "/metrics")
            assert status == 200
            assert "perf_worker_cells_completed 4.0" \
                in text.splitlines()
            status, body = http_get(server.url + "/fleet")
            fleet = json.loads(body)
            assert fleet["workers_live"] == 1
            assert fleet["workers"][0]["worker"] == "w1"
            assert fleet["tasks_queued"] == 0

    def test_events_json_longpoll(self, tmp_path):
        write_run(tmp_path, run_id="demo-1")
        with ObservabilityServer(telemetry_dir=tmp_path) as server:
            _, body = http_get(server.url + "/events.json?offset=0")
            payload = json.loads(body)
            offset = payload["offset"]
            assert offset == len(payload["events"]) > 0
            _, body = http_get(
                server.url + f"/events.json?offset={offset}")
            assert json.loads(body)["events"] == []

    def test_sse_stream_ordering(self, tmp_path):
        write_run(tmp_path, run_id="demo-1")
        with ObservabilityServer(telemetry_dir=tmp_path) as server:
            aggregator = server.aggregator
            total, _ = aggregator.events_since(0)
            _, body = http_get(
                server.url + f"/events?max={total}&poll=0.05")
        ids = [int(line.split(":", 1)[1])
               for line in body.splitlines()
               if line.startswith("id:")]
        events = [json.loads(line.split(":", 1)[1])
                  for line in body.splitlines()
                  if line.startswith("data:")]
        assert len(ids) == len(events) == total
        assert ids == sorted(ids) == list(range(total))
        # Per-shard writer order (seq) is preserved end to end.
        seqs = [event["seq"] for event in events
                if "seq" in event]
        assert seqs == sorted(seqs)
        assert events[0]["type"] == "run_start"
        assert events[-1]["type"] == "run_end"

    def test_trace_endpoint(self, tmp_path):
        trace_id = new_trace_id("sweep")
        append_trace_record(trace_shard_path(tmp_path, "coord"), {
            "trace_id": trace_id, "name": "coordinator[sweep]",
            "path": "coordinator[sweep]", "ts": 100.0,
            "wall_s": 1.0, "cpu_s": 0.5})
        with ObservabilityServer(tmp_path / "missing-queue",
                                 telemetry_dir=tmp_path) as server:
            _, text = http_get(server.url + "/trace")
        assert f"fleet trace {trace_id}" in text
        assert "coordinator[sweep]" in text


# -- the headline guarantee: live 2-worker sweep, merged scrape ---------------


class TestLiveFleetScrape:
    def test_two_worker_sweep_serves_merged_fleet(self, tmp_path):
        """During a live two-worker queue sweep the plane serves the
        merged fleet counters and reports both workers live."""
        queue = tmp_path / "q"
        backend = QueueBackend(queue, worker_grace=30.0,
                               poll_interval=0.02)
        workers = [run_worker_thread(queue, worker_id=f"obs-{i}")
                   for i in range(2)]
        runner = SweepRunner(experiment_id="obs-sweep",
                             backend=backend)
        server = ObservabilityServer(queue).start()
        try:
            cells = [{"seed": s} for s in range(6)]
            results = runner.map(draw, cells)
            assert len(results) == 6
            # Workers are still registered and heartbeating; poll
            # until every completion has reached a registration.
            deadline = time.time() + 10.0
            completed_line = None
            while time.time() < deadline:
                _, text = http_get(server.url + "/metrics")
                lines = text.splitlines()
                completed_line = next(
                    (line for line in lines if line.startswith(
                        "perf_worker_cells_completed ")), None)
                if completed_line == \
                        "perf_worker_cells_completed 6.0":
                    break
                time.sleep(0.05)
            assert completed_line == \
                "perf_worker_cells_completed 6.0"
            # Both workers contribute labelled series to the merge.
            for worker_id in ("obs-0", "obs-1"):
                assert any(f'{{worker="{worker_id}"}}' in line
                           for line in lines)
            _, body = http_get(server.url + "/fleet")
            fleet = json.loads(body)
            assert fleet["workers_live"] == 2
            assert sorted(w["worker"] for w in fleet["workers"]) \
                == ["obs-0", "obs-1"]
            # The coordinator stamped a trace; the plane serves it.
            _, trace = http_get(server.url + "/trace")
            assert "fleet trace obs_sweep-" in trace
        finally:
            server.close()
            for worker, thread in workers:
                stop_worker(worker, thread)

    def test_counter_merge_is_monotone(self, tmp_path):
        """Re-registering with higher counts only grows the sum --
        the property the CI serve-smoke job asserts mid-sweep."""
        register_worker(tmp_path, "w1", completed=2)
        aggregator = FleetAggregator(tmp_path)

        def fleet_sum():
            for line in aggregator.metrics_text().splitlines():
                if line.startswith("perf_worker_cells_completed "):
                    return float(line.split()[-1])
            return 0.0

        first = fleet_sum()
        register_worker(tmp_path, "w1", completed=5)
        register_worker(tmp_path, "w2", completed=1)
        assert fleet_sum() >= first
        assert fleet_sum() == 6.0


# -- cross-host trace stitching -----------------------------------------------


class TestTraceStitching:
    def record(self, trace_id, path, ts, wall_s=0.1):
        return {"trace_id": trace_id, "name": path.split("/")[-1],
                "path": path, "ts": ts, "wall_s": wall_s,
                "cpu_s": wall_s / 2}

    def test_synthesizes_missing_worker_levels(self):
        tid = "t-1"
        records = [
            self.record(tid, "coordinator[x]", 100.0, wall_s=1.0),
            self.record(tid, "coordinator[x]/worker:w1/cell[0]",
                        100.1),
            self.record(tid, "coordinator[x]/worker:w1/cell[1]",
                        100.3),
        ]
        chosen, spans = build_fleet_tree(records)
        assert chosen == tid
        paths = {span["path"] for span in spans}
        # The worker level was never recorded; it is synthesized so
        # the cells still hang off one tree.
        assert "coordinator[x]/worker:w1" in paths
        assert "coordinator[x]/worker:w1/cell[0]" in paths

    def test_latest_trace_wins_and_override(self):
        records = [self.record("old", "root-a", 50.0),
                   self.record("new", "root-b", 200.0)]
        chosen, spans = build_fleet_tree(records)
        assert chosen == "new"
        chosen, spans = build_fleet_tree(records, trace_id="old")
        assert chosen == "old"
        assert spans[0]["path"] == "root-a"

    def test_read_records_skips_garbage(self, tmp_path):
        shard = trace_shard_path(tmp_path, "w1")
        append_trace_record(shard, self.record("t", "root", 1.0))
        with open(shard, "a") as stream:
            stream.write('{"torn": \n')  # crashed writer's tail
        assert len(read_trace_records(tmp_path)) == 1

    def test_render_fleet_reports_missing(self, tmp_path):
        assert "no fleet trace records" in render_fleet(tmp_path)
        shard = trace_shard_path(tmp_path, "w1")
        append_trace_record(shard, self.record("t-9", "root", 1.0))
        assert "available traces" in render_fleet(
            tmp_path, trace_id="absent")
        assert "fleet trace t-9" in render_fleet(tmp_path)


def _tests_on_pythonpath(monkeypatch):
    tests_dir = str(Path(__file__).parent)
    existing = os.environ.get("PYTHONPATH")
    monkeypatch.setenv(
        "PYTHONPATH",
        tests_dir if not existing
        else os.pathsep.join([tests_dir, existing]))


class TestTraceSurvivesChaos:
    def test_trace_id_propagates_through_sigkilled_cell(
            self, tmp_path, monkeypatch):
        """A SIGKILLed worker loses its lease, a peer steals and
        completes the cell -- and the recompute carries the
        coordinator's original trace id, so the sweep still stitches
        into exactly one tree."""
        _tests_on_pythonpath(monkeypatch)
        queue = tmp_path / "q"
        flags = tmp_path / "flags"
        flags.mkdir()
        cells = [{"x": x, "flag_dir": str(flags)} for x in (1, 2, 3)]

        procs = [spawn_worker(queue, lease_ttl=1.0, max_idle=20.0,
                              worker_id=f"trace-{i}")
                 for i in range(2)]
        backend = QueueBackend(queue, lease_ttl=1.0,
                               worker_grace=60.0,
                               poll_interval=0.05)
        runner = SweepRunner(experiment_id="chaos-trace",
                             backend=backend)
        try:
            results = runner.map(trace_kill_cell, cells)
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=30)
        assert results == [1001, 1002, 1003]
        assert (flags / "killed-2").exists(), \
            "the chaos cell never fired -- the test proved nothing"

        records = read_trace_records(queue)
        trace_ids = {r["trace_id"] for r in records}
        assert len(trace_ids) == 1, \
            f"stolen cell forked the trace: {trace_ids}"
        ok_cells = {r["path"].rsplit("/", 1)[-1] for r in records
                    if "/cell[" in r["path"]
                    and r.get("status") == "ok"}
        assert ok_cells == {"cell[0]", "cell[1]", "cell[2]"}
        # The killed cell's completion names a surviving worker and
        # records the steal.
        stolen = [r for r in records
                  if r["path"].endswith("cell[1]")
                  and r.get("status") == "ok"]
        assert stolen and stolen[0]["steals"] >= 1
        text = render_fleet(queue)
        assert text.count("fleet trace") == 1
        assert "worker:trace-" in text


# -- sampling profiler --------------------------------------------------------


def _busy(deadline_s):
    total = 0
    deadline = time.perf_counter() + deadline_s
    while time.perf_counter() < deadline:
        total += sum(range(100))
    return total


class TestSamplingProfiler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(interval=0.0)

    def test_double_start_raises(self):
        profiler = SamplingProfiler()
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="running"):
                profiler.start()
        finally:
            profiler.stop()

    def test_samples_land_and_shares_normalize(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy(0.1)
        assert profiler.total_samples > 0
        shares = profiler.shares()
        assert shares and sum(shares.values()) \
            == pytest.approx(1.0)
        # Pure-python busywork in a test file is not engine code.
        assert "other" in shares
        assert "other" in profiler.format_report()

    def test_classify_frame_outside_engine_is_other(self):
        import sys
        assert classify_frame(sys._getframe()) == "other"

    def test_publish_writes_gauges(self):
        registry = MetricsRegistry()
        with SamplingProfiler(interval=0.001) as profiler:
            _busy(0.05)
        profiler.publish(registry=registry)
        snapshot = registry.snapshot()
        assert snapshot["obs.profile.samples_total"]["value"] \
            == profiler.total_samples > 0
        assert snapshot["obs.profile.other_share"]["value"] > 0

    def test_profiled_contextmanager_publishes(self):
        from repro.obs.metrics import use_registry
        with use_registry(MetricsRegistry()) as registry:
            with profiled(interval=0.001) as profiler:
                _busy(0.05)
            snapshot = registry.snapshot()
        assert profiler.total_samples > 0
        assert "obs.profile.samples_total" in snapshot

    def test_publish_engine_rates(self):
        class FakeSim:
            events_processed = 1000
            packets_processed = 400

        registry = MetricsRegistry()
        rates = publish_engine_rates(FakeSim(), wall_s=2.0,
                                     registry=registry)
        assert rates == {"events_per_sec": 500.0,
                         "pkts_per_sec": 200.0}
        snapshot = registry.snapshot()
        assert snapshot["sim.engine.events_per_sec"]["value"] \
            == 500.0
        assert snapshot["sim.engine.pkts_per_sec"]["value"] == 200.0

    def test_report_is_runlog_payload(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy(0.05)
        report = profiler.report()
        assert report["samples"] == profiler.total_samples
        assert report["interval_s"] == 0.001
        assert report["wall_s"] > 0
        json.dumps(report)  # JSON-ready, as the runlog requires

    def test_overhead_within_bound(self):
        """Sampling from the sidecar must not tax the event loop.

        CI gates the full-size run at >= 0.95 (the < 5 % budget);
        here a shorter run with a loose 0.5 floor guards against a
        regression to per-event instrumentation without inviting
        timer flake.
        """
        from repro.perf.bench import bench_profiler_overhead
        result = bench_profiler_overhead(n_events=30_000)
        assert result["on_over_off_ratio"] > 0.5
        assert result["events_per_sec_off"] > 0
        assert "shares" in result
