"""Watch-mode streaming (obs.live) and regression diffing (obs.diff)."""

import io
import json

import pytest

from repro.obs import health as H
from repro.obs.diff import (MetricDelta, compare, load_source,
                            metric_direction, metric_rtol,
                            render_report)
from repro.obs.live import (RunLogTailer, WatchState,
                            render_dashboard, resolve_target, watch)
from repro.obs.telemetry import Telemetry


def write_run(directory, experiment="demo", run_id=None,
              gauges=(), findings=()):
    """One complete telemetry run with the given gauges/findings."""
    telemetry = Telemetry(directory, experiment=experiment,
                          run_id=run_id)
    with telemetry.activate(params={"n": 1}):
        for name, value in gauges:
            telemetry.registry.gauge(name).set(value)
        for finding in findings:
            telemetry.health.add(finding)
    return telemetry


CRITICAL = H.HealthFinding("queue_oscillation", "limit_cycle",
                           "critical", "synthetic cycle")


class TestRunLogTailer:
    def test_reads_incrementally(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"a": 1}\n')
        tailer = RunLogTailer(path)
        assert tailer.poll() == [{"a": 1}]
        assert tailer.poll() == []
        with open(path, "a") as stream:
            stream.write('{"b": 2}\n')
        assert tailer.poll() == [{"b": 2}]

    def test_partial_line_buffered_until_complete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"a": 1}\n{"b": ')
        tailer = RunLogTailer(path)
        assert tailer.poll() == [{"a": 1}]
        with open(path, "a") as stream:
            stream.write('2}\n')
        assert tailer.poll() == [{"b": 2}]

    def test_truncated_file_resets(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n')
        tailer = RunLogTailer(path)
        assert len(tailer.poll()) == 2
        path.write_text('{"c": 3}\n')  # new, shorter run
        assert tailer.poll() == [{"c": 3}]

    def test_missing_file_is_empty_not_error(self, tmp_path):
        tailer = RunLogTailer(tmp_path / "absent.jsonl")
        assert tailer.poll() == []


class TestWatchState:
    def test_folds_run_lifecycle(self, tmp_path):
        telemetry = write_run(
            tmp_path, gauges=[("demo.q", 5.0)], findings=[CRITICAL])
        state = WatchState()
        state.apply_all(RunLogTailer(telemetry.runlog_path).poll())
        assert state.experiment == "demo"
        assert state.finished and state.status == "ok"
        assert state.verdict == "pathological"
        assert len(state.health) == 1
        assert state.metrics["demo.q"]["value"] == 5.0

    def test_dashboard_renders_key_sections(self, tmp_path):
        telemetry = write_run(
            tmp_path, gauges=[("demo.q", 5.0)], findings=[CRITICAL])
        state = WatchState()
        state.apply_all(RunLogTailer(telemetry.runlog_path).poll())
        board = render_dashboard(state)
        assert "repro watch :: demo" in board
        assert "pathological" in board
        assert "limit_cycle" in board or "queue_oscillation" in board
        assert "demo.q" in board
        assert "run finished: ok" in board

    def test_dashboard_before_any_event(self):
        board = render_dashboard(WatchState())
        assert "waiting for run_start" in board


class TestResolveTarget:
    def test_file_passes_through(self, tmp_path):
        telemetry = write_run(tmp_path)
        assert resolve_target(telemetry.runlog_path) \
            == telemetry.runlog_path

    def test_directory_picks_newest(self, tmp_path):
        import os
        first = write_run(tmp_path, run_id="demo-1")
        second = write_run(tmp_path, run_id="demo-2")
        os.utime(first.runlog_path, (1, 1))
        assert resolve_target(tmp_path) == second.runlog_path

    def test_experiment_filter(self, tmp_path):
        write_run(tmp_path, experiment="fig04", run_id="fig04-1")
        write_run(tmp_path, experiment="fig05", run_id="fig05-1")
        assert resolve_target(tmp_path, "fig04").name \
            == "fig04-1.jsonl"

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_target(tmp_path)


class TestWatchLoop:
    def test_once_renders_and_exits(self, tmp_path):
        telemetry = write_run(tmp_path, findings=[CRITICAL])
        out = io.StringIO()
        assert watch(telemetry.runlog_path, once=True,
                     stream=out) == 0
        assert "final verdict: pathological" in out.getvalue()

    def test_follows_until_run_end(self, tmp_path):
        telemetry = write_run(tmp_path)
        out = io.StringIO()
        slept = []
        assert watch(tmp_path, stream=out,
                     sleep=slept.append, max_polls=10) == 0
        # complete log on the first poll -> loop ends without sleeping
        assert slept == []
        assert "run finished: ok" in out.getvalue()


class TestDirectionHeuristics:
    def test_throughput_is_higher_better(self):
        assert metric_direction("micro.event_loop_events_per_sec") == 1
        assert metric_direction("sweeps.x.cache_warm_speedup") == 1

    def test_timings_and_errors_are_lower_better(self):
        assert metric_direction("fig04.run.wall_s") == -1
        assert metric_direction("sim.port.p0.drops_total") == -1
        assert metric_direction("fluid.dde.divergence_aborts_total") \
            == -1

    def test_timing_noise_gets_wide_tolerance(self):
        assert metric_rtol("sweeps.fct_study.serial_s") > 0.2
        assert metric_rtol("sim.engine.events_total") == \
            pytest.approx(0.02)

    def test_classification(self):
        regress = MetricDelta("x.events_per_sec", 100.0, 50.0,
                              direction=1, rtol=0.25)
        assert regress.classification == "regression"
        improve = MetricDelta("x.wall_s", 10.0, 5.0,
                              direction=-1, rtol=0.25)
        assert improve.classification == "improvement"
        noise = MetricDelta("x.wall_s", 10.0, 10.5,
                            direction=-1, rtol=0.25)
        assert noise.classification == "unchanged"


class TestCompare:
    def test_bench_reports(self, tmp_path):
        for name, rate in (("a.json", 1000.0), ("b.json", 400.0)):
            (tmp_path / name).write_text(json.dumps({
                "version": 3, "python": "3.11", "platform": "x",
                "micro": {"event_loop_events_per_sec": rate}}))
        report = compare(tmp_path / "a.json", tmp_path / "b.json")
        assert [d.name for d in report.regressions] \
            == ["micro.event_loop_events_per_sec"]
        assert report.has_regressions
        assert report.exit_code(fail_on_regression=True) == 1
        assert report.exit_code(fail_on_regression=False) == 0

    def test_environment_fields_not_diffed(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps(
            {"python": "3.9", "cpu_count": 1, "micro": {}}))
        (tmp_path / "b.json").write_text(json.dumps(
            {"python": "3.12", "cpu_count": 64, "micro": {}}))
        report = compare(tmp_path / "a.json", tmp_path / "b.json")
        assert not report.regressions and not report.changed

    def test_telemetry_dirs_diff_health_and_verdicts(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        write_run(dir_a, experiment="fig05")
        write_run(dir_b, experiment="fig05", findings=[CRITICAL])
        report = compare(dir_a, dir_b)
        assert report.new_findings \
            == ["fig05: queue_oscillation/limit_cycle"]
        assert report.verdict_changes \
            == ["fig05: clean -> pathological"]
        assert report.has_regressions

    def test_resolved_findings_reported(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        write_run(dir_a, experiment="fig05", findings=[CRITICAL])
        write_run(dir_b, experiment="fig05")
        report = compare(dir_a, dir_b)
        assert report.resolved_findings \
            == ["fig05: queue_oscillation/limit_cycle"]
        assert not report.has_regressions

    def test_latest_run_per_experiment_wins(self, tmp_path):
        import os
        stale = write_run(tmp_path / "a", experiment="fig05",
                          run_id="fig05-old", findings=[CRITICAL])
        os.utime(stale.runlog_path, (1, 1))
        write_run(tmp_path / "a", experiment="fig05",
                  run_id="fig05-new")
        metrics, findings, verdicts = load_source(tmp_path / "a")
        assert findings["fig05"] == set()
        assert verdicts["fig05"] == "clean"

    def test_rtol_override(self, tmp_path):
        for name, value in (("a.json", 100.0), ("b.json", 98.0)):
            (tmp_path / name).write_text(json.dumps(
                {"micro": {"event_loop_events_per_sec": value}}))
        loose = compare(tmp_path / "a.json", tmp_path / "b.json")
        assert not loose.regressions  # -2% within the noisy 25%
        tight = compare(tmp_path / "a.json", tmp_path / "b.json",
                        rtol=0.01)
        assert [d.name for d in tight.regressions] \
            == ["micro.event_loop_events_per_sec"]

    def test_missing_source_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compare(tmp_path / "absent", tmp_path / "alsoabsent")

    def test_render_report_mentions_everything(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        write_run(dir_a, experiment="fig05")
        write_run(dir_b, experiment="fig05", findings=[CRITICAL])
        text = render_report(compare(dir_a, dir_b))
        assert "NEW HEALTH FINDINGS" in text
        assert "clean -> pathological" in text
        assert "RESULT: regressions detected" in text


class TestWorkerRates:
    def worker_event(self, kind, worker="w1", ts=0.0):
        return {"type": "worker", "event": kind, "worker": worker,
                "ts": ts}

    def test_cells_per_min_from_claim_to_last_event(self):
        state = WatchState()
        state.apply(self.worker_event("cell_claimed", ts=100.0))
        state.apply(self.worker_event("cell_completed", ts=130.0))
        state.apply(self.worker_event("cell_claimed", ts=130.0))
        state.apply(self.worker_event("cell_completed", ts=160.0))
        # 2 cells over the 60 s span from first claim to last event.
        assert state.worker_rate_per_min("w1") \
            == pytest.approx(2.0)

    def test_rate_none_before_judgeable(self):
        state = WatchState()
        assert state.worker_rate_per_min("absent") is None
        state.apply(self.worker_event("worker_started", ts=1.0))
        assert state.worker_rate_per_min("w1") is None  # 0 done
        state.apply(self.worker_event("cell_completed", ts=1.0))
        # first cell at the last event: zero-width span, no rate.
        assert state.worker_rate_per_min("w1") is None

    def test_missed_claim_still_rates(self):
        # A late-attaching watcher that never saw the claim uses the
        # first completion as the span start.
        state = WatchState()
        state.apply(self.worker_event("cell_completed", ts=10.0))
        state.apply(self.worker_event("cell_completed", ts=40.0))
        assert state.worker_rate_per_min("w1") \
            == pytest.approx(4.0)

    def test_dashboard_renders_cells_per_min(self):
        state = WatchState()
        state.apply({"type": "run_start", "run_id": "r",
                     "experiment": "demo", "ts": 0.0})
        state.apply(self.worker_event("cell_claimed", ts=100.0))
        state.apply(self.worker_event("cell_completed", ts=130.0))
        state.apply(self.worker_event("cell_completed", ts=160.0))
        board = render_dashboard(state)
        assert "2.0 cells/min" in board


class TestServeTailer:
    def test_polls_and_resumes_offset(self, tmp_path):
        from repro.obs.live import ServeTailer
        from repro.obs.serve import ObservabilityServer
        write_run(tmp_path, run_id="demo-1")
        with ObservabilityServer(telemetry_dir=tmp_path) as server:
            tailer = ServeTailer(server.url)
            events = tailer.poll()
            assert events and events[0]["type"] == "run_start"
            assert tailer.poll() == []  # offset advanced
            write_run(tmp_path, run_id="demo-2")
            fresh = tailer.poll()
            assert fresh and all(e["_shard"] == "demo-2"
                                 for e in fresh)

    def test_network_error_returns_empty(self):
        from repro.obs.live import ServeTailer
        tailer = ServeTailer("http://127.0.0.1:1", timeout=0.2)
        assert tailer.poll() == []
        assert tailer._offset == 0  # did not advance

    def test_watch_over_serve_url(self, tmp_path):
        from repro.obs.serve import ObservabilityServer
        write_run(tmp_path, findings=[CRITICAL])
        out = io.StringIO()
        with ObservabilityServer(telemetry_dir=tmp_path) as server:
            assert watch(serve_url=server.url, once=True,
                         stream=out) == 0
        assert "repro watch :: demo" in out.getvalue()

    def test_watch_without_target_or_url_raises(self):
        with pytest.raises(ValueError, match="target"):
            watch()


class TestCompareEngines:
    def bench(self, tmp_path, name, batched_pps, tolerance_ok):
        (tmp_path / name).write_text(json.dumps({
            "version": 7,
            "engines": {
                "batched": {"port_packets_per_sec": batched_pps},
                "hybrid": {
                    "tail_mean_within_tolerance": tolerance_ok,
                    "cov_ordering_preserved": True}}}))
        return tmp_path / name

    def test_batched_throughput_drop_names_engine(self, tmp_path):
        a = self.bench(tmp_path, "a.json", 1000.0, True)
        b = self.bench(tmp_path, "b.json", 400.0, True)
        report = compare(a, b)
        assert [d.name for d in report.regressions] \
            == ["engines.batched.port_packets_per_sec"]

    def test_tolerance_flag_flip_is_regression(self, tmp_path):
        a = self.bench(tmp_path, "a.json", 1000.0, True)
        b = self.bench(tmp_path, "b.json", 1000.0, False)
        report = compare(a, b)
        assert [d.name for d in report.regressions] \
            == ["engines.hybrid.tail_mean_within_tolerance"]
        assert report.exit_code(fail_on_regression=True) == 1

    def test_identical_engines_clean(self, tmp_path):
        a = self.bench(tmp_path, "a.json", 1000.0, True)
        b = self.bench(tmp_path, "b.json", 1010.0, True)
        assert not compare(a, b).has_regressions
