"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import (DCQCNParams, PatchedTimelyParams,
                               TimelyParams)


@pytest.fixture
def dcqcn_params() -> DCQCNParams:
    """Default 40 Gbps, 2-flow DCQCN configuration."""
    return DCQCNParams.paper_default(capacity_gbps=40.0, num_flows=2)


@pytest.fixture
def dcqcn_ten_flows() -> DCQCNParams:
    """Default 40 Gbps, 10-flow DCQCN configuration."""
    return DCQCNParams.paper_default(capacity_gbps=40.0, num_flows=10)


@pytest.fixture
def timely_params() -> TimelyParams:
    """Default 10 Gbps, 2-flow TIMELY configuration."""
    return TimelyParams.paper_default(capacity_gbps=10.0, num_flows=2)


@pytest.fixture
def patched_params() -> PatchedTimelyParams:
    """Default 10 Gbps, 2-flow patched TIMELY configuration."""
    return PatchedTimelyParams.paper_default(capacity_gbps=10.0,
                                             num_flows=2)
