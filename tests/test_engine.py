"""Event engine: ordering, cancellation, determinism, watchdogs."""

import pytest

from repro.sim.engine import SimulationAborted, Simulator


class TestScheduling:
    def test_time_ordering(self):
        sim = Simulator()
        log = []
        sim.schedule(0.3, lambda: log.append("c"))
        sim.schedule(0.1, lambda: log.append("a"))
        sim.schedule(0.2, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        log = []
        for name in "abcde":
            sim.schedule(0.5, lambda n=name: log.append(n))
        sim.run()
        assert log == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(1.5)]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(2.0)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def chain(depth):
            log.append(sim.now)
            if depth > 0:
                sim.schedule(0.1, lambda: chain(depth - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert log == pytest.approx([0.0, 0.1, 0.2, 0.3])


class TestRunControl:
    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("early"))
        sim.schedule(3.0, lambda: log.append("late"))
        sim.run(until=2.0)
        assert log == ["early"]
        assert sim.now == pytest.approx(2.0)
        sim.run()
        assert log == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == pytest.approx(5.0)

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("no"))
        sim.schedule(2.0, lambda: log.append("yes"))
        event.cancel()
        sim.run()
        assert log == ["yes"]

    def test_stop_aborts_run(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append("one"), sim.stop()))
        sim.schedule(2.0, lambda: log.append("two"))
        sim.run()
        assert log == ["one"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_cancel_among_simultaneous_events(self):
        sim = Simulator()
        log = []
        sim.schedule(0.5, lambda: log.append("a"))
        doomed = sim.schedule(0.5, lambda: log.append("b"))
        sim.schedule(0.5, lambda: log.append("c"))
        doomed.cancel()
        sim.run()
        assert log == ["a", "c"]

    def test_callback_cancels_simultaneous_sibling(self):
        """An event may cancel another one scheduled at the same time
        that has not fired yet -- lazy removal must honour it."""
        sim = Simulator()
        log = []
        events = {}
        sim.schedule(1.0, lambda: events["victim"].cancel())
        events["victim"] = sim.schedule(1.0, lambda: log.append("victim"))
        sim.run()
        assert log == []
        assert sim.pending_events == 0

    def test_stop_then_rerun_processes_remainder(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append("one"), sim.stop()))
        sim.schedule(2.0, lambda: log.append("two"))
        sim.schedule(3.0, lambda: log.append("three"))
        sim.run()
        assert log == ["one"]
        assert sim.pending_events == 2
        sim.run()  # a stopped simulator is immediately resumable
        assert log == ["one", "two", "three"]

    def test_stop_inside_callback_skips_same_timestamp_peer(self):
        """stop() takes effect after the current callback; a peer at
        the same timestamp waits for the next run() call."""
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append("first"), sim.stop()))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first"]
        sim.run()
        assert log == ["first", "second"]
        assert sim.now == pytest.approx(1.0)

    def test_cancel_survives_stop_and_rerun(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: sim.stop())
        doomed = sim.schedule(2.0, lambda: log.append("no"))
        sim.run()
        doomed.cancel()
        sim.run()
        assert log == []


class TestWatchdogs:
    def test_abort_carries_engine_state(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationAborted) as excinfo:
            sim.run(max_events=100)
        abort = excinfo.value
        assert abort.reason == "max_events"
        assert abort.events_processed == 100
        assert abort.sim_time == pytest.approx(9.9)
        assert abort.heap_depth == 1
        assert "max_events=100" in str(abort)

    def test_aborted_run_is_resumable(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), lambda i=i: log.append(i))
        with pytest.raises(SimulationAborted):
            sim.run(max_events=4)
        # Clock sits at the last processed event; heap is intact.
        assert sim.now == pytest.approx(0.4)
        assert log == [0, 1, 2, 3]
        assert sim.pending_events == 6
        sim.run()
        assert log == list(range(10))

    def test_wall_clock_watchdog_fires(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationAborted) as excinfo:
            sim.run(max_wall_seconds=0.0)
        assert excinfo.value.reason == "wall_clock"
        # Checked once per stride, so it fired at a stride boundary.
        assert excinfo.value.events_processed % 1024 == 0
        # Still resumable (the chain reschedules forever, so bound it).
        with pytest.raises(SimulationAborted):
            sim.run(max_events=10)
        assert sim.events_processed >= 1034

    def test_wall_clock_watchdog_quiet_when_fast(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run(max_wall_seconds=60.0)
        assert sim.events_processed == 5

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_determinism_across_instances(self):
        def build_and_run():
            sim = Simulator()
            log = []
            sim.schedule(0.2, lambda: log.append(("b", sim.now)))
            sim.schedule(0.2, lambda: log.append(("c", sim.now)))
            sim.schedule(0.1, lambda: log.append(("a", sim.now)))
            sim.run()
            return log

        assert build_and_run() == build_and_run()


class TestAbortRunlogEvent:
    """Watchdog aborts surface as structured run-log events."""

    def _runaway(self, sim):
        def forever():
            sim.schedule(0.1, forever)
        sim.schedule(0.0, forever)

    def test_max_events_abort_emits_event(self, tmp_path):
        from repro.obs.runlog import read_events
        from repro.obs.telemetry import Telemetry

        bundle = Telemetry.ensure(tmp_path, experiment="abort-smoke")
        with bundle.activate(params={}):
            sim = Simulator()
            self._runaway(sim)
            with pytest.raises(SimulationAborted):
                sim.run(max_events=50)
        aborts = [e for e in read_events(bundle.runlog_path)
                  if e["type"] == "abort"]
        assert len(aborts) == 1
        event = aborts[0]
        assert event["reason"] == "max_events"
        assert event["events_processed"] == 50
        assert event["sim_time"] == pytest.approx(4.9)
        assert event["pending"] == 1

    def test_wall_clock_abort_emits_event(self, tmp_path):
        from repro.obs.runlog import read_events
        from repro.obs.telemetry import Telemetry

        bundle = Telemetry.ensure(tmp_path, experiment="abort-smoke")
        with bundle.activate(params={}):
            sim = Simulator()
            self._runaway(sim)
            with pytest.raises(SimulationAborted):
                sim.run(max_wall_seconds=0.0)
        aborts = [e for e in read_events(bundle.runlog_path)
                  if e["type"] == "abort"]
        assert [e["reason"] for e in aborts] == ["wall_clock"]

    def test_no_telemetry_no_event_no_crash(self):
        # The rare path must stay safe without an active bundle.
        sim = Simulator()
        self._runaway(sim)
        with pytest.raises(SimulationAborted):
            sim.run(max_events=10)
