"""DCQCN endpoint protocol: RP state machine and NP CNP generation."""

import pytest

from repro.core.params import DCQCNParams
from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.node import Host
from repro.sim.packet import Packet
from repro.sim.protocols.dcqcn import DCQCNReceiver, DCQCNSender
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


def make_sender(params=None, flow_size=None):
    params = params or DCQCNParams.paper_default(capacity_gbps=40,
                                                 num_flows=2)
    sim = Simulator()
    host = Host(sim, "s0")
    flow = Flow(0, "s0", "recv", flow_size, 0.0)
    sender = DCQCNSender(sim, host, flow, params)
    return sim, sender, params


def cnp():
    return Packet(0, 64, "recv", "s0", kind="cnp")


class TestRPDecrease:
    def test_starts_at_line_rate(self):
        _, sender, params = make_sender()
        assert sender.rate == pytest.approx(
            params.capacity * params.mtu_bytes)
        assert sender.alpha == 1.0

    def test_cnp_cuts_rate_by_alpha_half(self):
        _, sender, _ = make_sender()
        before = sender.rate
        sender.on_cnp(cnp())
        # alpha starts at 1 -> 50% cut; target remembers the old rate.
        assert sender.rate == pytest.approx(before / 2)
        assert sender.target_rate == pytest.approx(before)

    def test_cnp_updates_alpha_ewma(self):
        _, sender, params = make_sender()
        sender.alpha = 0.5
        sender.on_cnp(cnp())
        assert sender.alpha == pytest.approx(
            (1 - params.g) * 0.5 + params.g)

    def test_consecutive_cnps_compound(self):
        _, sender, _ = make_sender()
        before = sender.rate
        sender.on_cnp(cnp())
        sender.on_cnp(cnp())
        assert sender.rate < before / 3  # two near-halvings

    def test_cnp_resets_increase_stages(self):
        _, sender, _ = make_sender()
        sender._byte_stage = 7
        sender._time_stage = 3
        sender.on_cnp(cnp())
        assert sender._byte_stage == 0
        assert sender._time_stage == 0


class TestRPIncrease:
    def test_fast_recovery_halves_gap_without_target_change(self):
        _, sender, _ = make_sender()
        sender.on_cnp(cnp())
        target = sender.target_rate
        gap = target - sender.rate
        sender._byte_stage = 1
        sender._rate_increase_event()
        assert sender.target_rate == pytest.approx(target)
        assert target - sender.rate == pytest.approx(gap / 2)

    def test_additive_increase_past_fast_recovery(self):
        _, sender, params = make_sender()
        sender.on_cnp(cnp())
        sender.on_cnp(cnp())  # pull the target below line rate
        sender._byte_stage = params.fast_recovery_steps
        target = sender.target_rate
        sender._rate_increase_event()
        assert sender.target_rate == pytest.approx(
            target + params.rate_ai * params.mtu_bytes)

    def test_hyper_increase_when_both_counters_past_f(self):
        _, sender, params = make_sender()
        sender.on_cnp(cnp())
        sender.on_cnp(cnp())
        sender._byte_stage = params.fast_recovery_steps
        sender._time_stage = params.fast_recovery_steps
        target = sender.target_rate
        sender._rate_increase_event()
        assert sender.target_rate == pytest.approx(
            target + params.rate_hai * params.mtu_bytes)

    def test_target_clamped_to_line_rate(self):
        _, sender, params = make_sender()
        sender._byte_stage = params.fast_recovery_steps
        sender._rate_increase_event()
        assert sender.target_rate <= sender.line_rate

    def test_byte_counter_fires_every_b_bytes(self):
        _, sender, params = make_sender()
        sender.on_cnp(cnp())
        byte_counter_bytes = params.byte_counter * params.mtu_bytes
        packet = Packet(0, int(byte_counter_bytes / 2), "s0", "recv",
                        kind="data")
        sender.on_packet_sent(packet)
        assert sender._byte_stage == 0
        sender.on_packet_sent(packet)
        assert sender._byte_stage == 1

    def test_alpha_decay_timer(self):
        sim, sender, params = make_sender()
        # Defer the first emission past the horizon: this probes only
        # the alpha timer (the bare test host has no NIC to emit on).
        sender.flow.start_time = 1.0
        sender.start()
        sim.run(until=params.tau_prime * 3.5)
        # Three decay intervals with no CNP.
        assert sender.alpha == pytest.approx((1 - params.g) ** 3,
                                             rel=1e-6)
        sender.stop()


class TestNP:
    def build_receiver(self):
        params = DCQCNParams.paper_default()
        sim = Simulator()
        host = Host(sim, "recv")
        # Host needs a NIC to emit CNPs; wire it to a sink.
        from repro.sim.link import Link, Port

        class Sink:
            name = "sw"

            def __init__(self):
                self.packets = []

            def receive(self, packet, ingress=None):
                self.packets.append(packet)

        sink = Sink()
        host.port = Port(sim, 1e9, Link(sim, 0.0, sink))
        flow = Flow(0, "s0", "recv", None, 0.0)
        receiver = DCQCNReceiver(sim, host, flow, params)
        return sim, receiver, sink, params

    def marked_packet(self, seq=0):
        packet = Packet(0, 1024, "s0", "recv", kind="data", seq=seq)
        packet.ecn_marked = True
        return packet

    def test_cnp_on_marked_packet(self):
        sim, receiver, sink, _ = self.build_receiver()
        receiver.on_data(self.marked_packet())
        sim.run()
        assert receiver.cnps_sent == 1
        assert sink.packets[0].kind == "cnp"

    def test_no_cnp_on_clean_packet(self):
        sim, receiver, sink, _ = self.build_receiver()
        packet = Packet(0, 1024, "s0", "recv", kind="data")
        receiver.on_data(packet)
        sim.run()
        assert receiver.cnps_sent == 0

    def test_cnp_rate_limited_by_tau(self):
        sim, receiver, sink, params = self.build_receiver()
        # A burst of marked packets within tau produces one CNP.
        for seq in range(10):
            receiver.on_data(self.marked_packet(seq))
        sim.run()
        assert receiver.cnps_sent == 1
        # After tau elapses, the next mark produces another.
        sim.schedule(params.tau * 1.01,
                     lambda: receiver.on_data(self.marked_packet(99)))
        sim.run()
        assert receiver.cnps_sent == 2


class TestEndToEnd:
    def test_two_flows_fair_and_marked(self):
        params = DCQCNParams.paper_default(capacity_gbps=40,
                                           num_flows=2)
        marker = REDMarker(params.red, params.mtu_bytes, seed=2)
        net = single_switch(2, link_gbps=40, marker=marker)
        for i in range(2):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0,
                         params)
        net.sim.run(until=0.02)
        rates = [net.senders[i].rate for i in range(2)]
        fair = net.link_rate_bytes / 2
        for rate in rates:
            assert rate == pytest.approx(fair, rel=0.35)
        assert net.utilization(0.02) > 0.9

    def test_finite_flow_completes(self):
        params = DCQCNParams.paper_default(capacity_gbps=40,
                                           num_flows=2)
        net = single_switch(1, link_gbps=40)
        done = []
        install_flow(net, "dcqcn", "s0", "recv", 100 * 1024, 0.0,
                     params, on_complete=done.append)
        net.sim.run(until=0.01)
        assert len(done) == 1
        flow = done[0]
        assert flow.completed
        assert flow.bytes_delivered >= 100 * 1024
        # 100 KB at 40 Gbps line rate plus ~3 hops of latency.
        assert flow.fct < 100e-6
