"""Struct-of-arrays batching: exactness, FIFO order, protocol parity."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.link import Link, Port
from repro.sim.node import Host
from repro.sim.packet import (
    CONTROL_PACKET_BYTES,
    PACKET_POOL,
    Packet,
    PacketBatch,
    PacketPool,
)
from repro.sim.protocols.dcqcn import DCQCNReceiver, DCQCNSender
from repro.sim.protocols.dctcp import DCTCPReceiver, DCTCPSender
from repro.sim.protocols.timely import TimelySender
from repro.sim.queues import ByteFIFO
from repro.sim.red import REDMarker
from repro.sim.switch import Switch, connect
from repro.core.params import DCQCNParams, REDParams, TimelyParams


class RecordingSink:
    """Terminal device recording exact per-packet arrival stamps."""

    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"
        self.arrivals = []

    def receive(self, packet, ingress=None):
        self.arrivals.append((self.sim.now, packet.seq,
                              packet.size_bytes))

    def receive_window(self, payload, arrival_times, ingress=None):
        if isinstance(payload, PacketBatch):
            for i in range(payload.count):
                self.arrivals.append((float(arrival_times[i]),
                                      int(payload.seq[i]),
                                      int(payload.size_bytes[i])))
        else:
            for t, packet in zip(arrival_times, payload):
                self.arrivals.append((float(t), packet.seq,
                                      packet.size_bytes))


class ScalarSink:
    """Sink without a batched entry point (forces port fallback)."""

    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"
        self.arrivals = []

    def receive(self, packet, ingress=None):
        self.arrivals.append((self.sim.now, packet.seq,
                              packet.size_bytes))


def _port(sim, sink, rate=1.25e9, delay=4e-6, batch_window=None,
          marker=None, capacity=None):
    link = Link(sim, delay, sink, ingress_label="src")
    return Port(sim, rate, link, marker=marker,
                capacity_bytes=capacity, batch_window=batch_window)


class TestWindowExactness:
    def test_batch_arrivals_bit_identical_to_scalar_path(self):
        # Same packet train through a windowed port and a scalar port:
        # every arrival timestamp must match to the last bit, because
        # np.add.accumulate left-folds exactly like the sequential
        # finish-time recurrence.
        rng = np.random.default_rng(3)
        sizes = rng.integers(64, 1500, size=257).astype(float)

        sim_s = Simulator()
        sink_s = ScalarSink(sim_s)
        port_s = _port(sim_s, sink_s)
        for seq, size in enumerate(sizes):
            port_s.send(Packet(1, int(size), "h", "sink", seq=seq))
        sim_s.run()

        sim_b = Simulator()
        sink_b = RecordingSink(sim_b)
        port_b = _port(sim_b, sink_b, batch_window=64)
        batch = PacketBatch(1, sizes, "h", "sink")
        port_b.send_batch(batch)
        sim_b.run()

        assert sink_b.arrivals == sink_s.arrivals

    def test_drain_window_arrivals_bit_identical(self):
        # Object packets queued behind a busy windowed port drain as
        # vectorized windows; stamps still match the scalar engine.
        rng = np.random.default_rng(4)
        sizes = rng.integers(64, 1500, size=200).astype(float)
        arrivals = {}
        for window in (None, 16):
            sim = Simulator()
            sink = RecordingSink(sim) if window else ScalarSink(sim)
            port = _port(sim, sink, batch_window=window)
            for seq, size in enumerate(sizes):
                port.send(Packet(1, int(size), "h", "sink", seq=seq))
            sim.run()
            arrivals[window] = sink.arrivals
        assert arrivals[16] == arrivals[None]

    def test_event_count_collapses(self):
        sizes = np.full(1000, 1024.0)
        counts = {}
        for window in (None, 100):
            sim = Simulator()
            sink = RecordingSink(sim) if window else ScalarSink(sim)
            port = _port(sim, sink, batch_window=window)
            if window:
                port.send_batch(PacketBatch(1, sizes, "h", "sink"))
            else:
                for seq in range(1000):
                    port.send(Packet(1, 1024, "h", "sink", seq=seq))
            sim.run()
            counts[window] = sim.events_processed
        assert counts[100] * 50 < counts[None]

    def test_fifo_order_with_interleaved_scalars(self):
        # A batch accepted while idle, then scalar packets arriving
        # mid-window: the backlog predates the scalars, so all batch
        # seqs serve first.
        sim = Simulator()
        sink = RecordingSink(sim)
        port = _port(sim, sink, batch_window=32)
        port.send_batch(PacketBatch.uniform(1, 10, 1024, "h", "sink"))
        # Arrives while the window is serializing.
        sim.schedule(1e-7, lambda: port.send(
            Packet(1, 1024, "h", "sink", seq=99)))
        sim.run()
        seqs = [seq for _, seq, _ in sink.arrivals]
        assert seqs == list(range(10)) + [99]


class TestEligibilityFallback:
    def test_marked_port_materializes(self):
        sim = Simulator()
        sink = ScalarSink(sim)
        marker = REDMarker(REDParams(kmin=0.5, kmax=1.0, pmax=1.0),
                           mtu_bytes=1024, seed=1)
        port = _port(sim, sink, batch_window=16, marker=marker)
        port.send_batch(PacketBatch.uniform(1, 8, 1024, "h", "sink"))
        sim.run()
        assert len(sink.arrivals) == 8
        assert port.ecn_marks > 0  # marker actually consulted

    def test_scalar_only_dst_materializes(self):
        sim = Simulator()
        sink = ScalarSink(sim)
        port = _port(sim, sink, batch_window=16)
        port.send_batch(PacketBatch.uniform(1, 8, 1024, "h", "sink"))
        sim.run()
        assert [seq for _, seq, _ in sink.arrivals] == list(range(8))

    def test_capacity_port_materializes_and_drops(self):
        sim = Simulator()
        sink = ScalarSink(sim)
        port = _port(sim, sink, batch_window=16, capacity=3 * 1024)
        port.send_batch(PacketBatch.uniform(1, 50, 1024, "h", "sink"))
        sim.run()
        assert port.queue.dropped_packets > 0
        assert len(sink.arrivals) < 50

    def test_batch_window_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            _port(sim, ScalarSink(sim), batch_window=1)


class TestDequeueWindow:
    def test_accounting_matches_scalar_dequeue(self):
        fifo = ByteFIFO()
        for seq in range(10):
            fifo.enqueue(Packet(1, 100 + seq, "a", "b", seq=seq))
        window, total = fifo.dequeue_window(4)
        assert [p.seq for p in window] == [0, 1, 2, 3]
        assert total == sum(100 + s for s in range(4))
        assert fifo.audit() is None
        window, total = fifo.dequeue_window(100)
        assert len(window) == 6
        assert fifo.is_empty and fifo.audit() is None


class TestPacketPool:
    def test_acquire_release_cycle(self):
        pool = PacketPool(max_free=4)
        p = pool.acquire(1, 1024, "a", "b")
        assert p.pooled
        p.ecn_marked = True
        p.echo_time = 3.0
        pool.release(p)
        assert not p.pooled
        pool.release(p)  # idempotent
        q = pool.acquire(2, 64, "c", "d", kind="ack", seq=7)
        assert q is p  # recycled
        assert not q.ecn_marked and q.echo_time is None
        assert (q.flow_id, q.seq, q.kind) == (2, 7, "ack")
        assert pool.reused == 1

    def test_unpooled_packets_ignored(self):
        pool = PacketPool()
        p = Packet(1, 1024, "a", "b")
        pool.release(p)
        assert len(pool) == 0

    def test_batch_materialization_uses_pool(self):
        pool = PacketPool()
        batch = PacketBatch.uniform(5, 3, 512, "a", "b")
        batch.sent_time = np.array([1.0, 2.0, 3.0])
        packets = batch.packets(pool)
        assert [p.seq for p in packets] == [0, 1, 2]
        assert [p.sent_time for p in packets] == [1.0, 2.0, 3.0]
        assert all(p.pooled for p in packets)
        single = batch.packet_at(1, pool)
        assert (single.seq, single.sent_time) == (1, 2.0)


def _dcqcn_pair(sim, params, cnp_timeout=None):
    host_s, host_r = Host(sim, "s"), Host(sim, "r")
    flow = Flow(1, "s", "r", None, 0.0)
    sender = DCQCNSender(sim, host_s, flow, params,
                         cnp_timeout=cnp_timeout)
    receiver = DCQCNReceiver(sim, host_r, flow, params)
    return sender, receiver


class TestProtocolBatchParity:
    """Batch hooks must leave the agent in the scalar loop's state."""

    def test_dcqcn_cnp_batch_matches_scalar_loop(self):
        params = DCQCNParams.paper_default(capacity_gbps=40.0,
                                           num_flows=2)
        states = {}
        for mode in ("scalar", "batch"):
            sim = Simulator()
            sender, _ = _dcqcn_pair(sim, params)
            sender._started = True  # timers unarmed; pure state test
            sim._now = 1e-3
            times = np.array([1e-3, 1e-3, 1e-3])
            if mode == "batch":
                batch = PacketBatch.uniform(1, 3, CONTROL_PACKET_BYTES,
                                            "r", "s", kind="cnp")
                batch.sent_time = times - 20e-6
                sender.on_cnp_batch(batch, times)
            else:
                for t in times:
                    cnp = Packet(1, CONTROL_PACKET_BYTES, "r", "s",
                                 kind="cnp")
                    cnp.sent_time = t - 20e-6
                    sender.on_cnp(cnp)
            states[mode] = (sender.rate, sender.alpha,
                            sender.target_rate, sender.cnps_received,
                            sender.cnp_delay_sum, sender.cnp_delay_max)
        assert states["batch"] == pytest.approx(states["scalar"])

    def test_dcqcn_np_batch_tau_gating_matches_scalar(self):
        params = DCQCNParams.paper_default(capacity_gbps=40.0,
                                           num_flows=2)
        results = {}
        for mode in ("scalar", "batch"):
            sim = Simulator()
            _, receiver = _dcqcn_pair(sim, params)
            receiver.host.port = _port(sim, ScalarSink(sim))
            # Marks spaced straddling tau: some gated, some passed.
            gaps = np.array([0.0, params.tau * 0.4, params.tau * 0.7,
                             params.tau * 1.2, params.tau * 1.3])
            times = 1e-3 + np.add.accumulate(gaps)
            if mode == "batch":
                batch = PacketBatch.uniform(1, 5, 1024, "s", "r")
                batch.ecn_marked[:] = True
                batch.sent_time = times - 1e-5
                sim._now = float(times[-1])
                receiver.on_data_batch(batch, times)
            else:
                for t in times:
                    sim._now = float(t)
                    pkt = Packet(1, 1024, "s", "r")
                    pkt.ecn_marked = True
                    pkt.sent_time = t - 1e-5
                    receiver.on_data(pkt)
            results[mode] = (receiver.cnps_sent,
                            receiver.flow.bytes_delivered)
            receiver.flow.bytes_delivered = 0
        assert results["batch"] == results["scalar"]

    def test_timely_ack_batch_matches_scalar_loop(self):
        params = TimelyParams.paper_default(capacity_gbps=10.0,
                                            num_flows=2)
        rates = {}
        for mode in ("scalar", "batch"):
            sim = Simulator()
            host = Host(sim, "s")
            flow = Flow(1, "s", "r", None, 0.0)
            sender = TimelySender(sim, host, flow, params)
            sender._started = True
            gaps = np.full(40, params.min_rtt * 0.6)
            times = 1e-3 + np.add.accumulate(gaps)
            rtts = params.min_rtt * (1.0 + 0.5 * np.sin(
                np.arange(40.0)))
            if mode == "batch":
                sim._now = float(times[-1])
                batch = PacketBatch.uniform(1, 40, CONTROL_PACKET_BYTES,
                                            "r", "s", kind="ack")
                batch.echo_time = times - rtts
                sender.on_ack_batch(batch, times)
            else:
                for t, rtt in zip(times, rtts):
                    sim._now = float(t)
                    ack = Packet(1, CONTROL_PACKET_BYTES, "r", "s",
                                 kind="ack")
                    ack.echo_time = t - rtt
                    sender.on_ack(ack)
            rates[mode] = (sender.rate, sender.rtt_diff,
                           sender.prev_rtt, sender.rtt_samples)
        assert rates["batch"] == pytest.approx(rates["scalar"])

    def test_dctcp_ack_batch_matches_scalar_loop(self):
        states = {}
        for mode in ("scalar", "batch"):
            sim = Simulator()
            host = Host(sim, "s")
            flow = Flow(1, "s", "r", None, 0.0)
            sender = DCTCPSender(sim, host, flow)
            sender._started = True
            sender._inflight = 20 * 1024
            sender._window_end_bytes = 10 * 1024
            sender._stopped = True  # state walk only, no re-emission
            acked = 1024 * np.arange(1, 13, dtype=np.int64)
            marked = np.zeros(12, dtype=bool)
            marked[4:7] = True
            if mode == "batch":
                batch = PacketBatch.uniform(1, 12, CONTROL_PACKET_BYTES,
                                            "r", "s", kind="ack")
                batch.acked_bytes = acked
                batch.ecn_marked = marked
                sender.on_ack_batch(batch, np.full(12, 1e-3))
            else:
                for a, m in zip(acked, marked):
                    ack = Packet(1, CONTROL_PACKET_BYTES, "r", "s",
                                 kind="ack")
                    ack.acked_bytes = int(a)
                    ack.ecn_marked = bool(m)
                    sender.on_ack(ack)
            states[mode] = (sender.cwnd, sender.alpha,
                            sender._inflight, sender.windows_completed,
                            sender._last_cumulative_ack)
        assert states["batch"] == pytest.approx(states["scalar"])


class TestEndToEndBatched:
    def _run_dctcp(self, batch_window):
        sim = Simulator()
        switch = Switch(sim, "sw")
        h1, h2 = Host(sim, "h1"), Host(sim, "h2")
        for a, b in ((h1, switch), (switch, h2), (h2, switch),
                     (switch, h1)):
            connect(sim, a, b, 1.25e9, 2e-6,
                    batch_window=batch_window)
        switch.add_route("h2", "h2")
        switch.add_route("h1", "h1")
        flow = Flow(1, "h1", "h2", 2_000_000, 0.0)
        done = []
        sender = DCTCPSender(sim, h1, flow)
        DCTCPReceiver(sim, h2, flow, on_complete=done.append)
        sender.start()
        sim.run(until=1.0)
        return sim, flow, done

    def test_flow_completes_with_windows(self):
        sim_s, flow_s, done_s = self._run_dctcp(None)
        sim_b, flow_b, done_b = self._run_dctcp(64)
        assert done_s and done_b
        assert flow_b.bytes_delivered == flow_s.bytes_delivered
        # Window mode coalesces ACK delivery at chunk boundaries, so
        # self-clocking refills slightly later than the scalar engine;
        # the documented drift bound is a couple of window spans.
        assert flow_b.fct == pytest.approx(flow_s.fct, rel=0.2)
        # The point of the exercise: far fewer events.
        assert sim_b.events_processed * 5 < sim_s.events_processed

    def test_pool_recycles_on_live_traffic(self):
        # Warm the pool with one full run; a repeat must then serve
        # entirely from the freelist, allocating nothing new.
        self._run_dctcp(None)
        allocated = PACKET_POOL.allocated
        reused_before = PACKET_POOL.reused
        self._run_dctcp(None)
        assert PACKET_POOL.reused > reused_before
        assert PACKET_POOL.allocated == allocated


class TestPoolMisuseGuard:
    """The debug-session loan tracker behind the fuzz pool oracles."""

    def test_loans_tracked_and_settled(self):
        pool = PacketPool()
        with pool.debug_session() as session:
            p = pool.acquire(1, 1024, "a", "b")
            assert session.outstanding == 1
            assert session.outstanding_packets() == [repr(p)]
            pool.release(p)
            assert session.outstanding == 0
        assert not pool.debug

    def test_double_release_counted_not_raised(self):
        pool = PacketPool()
        with pool.debug_session() as session:
            p = pool.acquire(1, 1024, "a", "b")
            pool.release(p)
            pool.release(p)
            assert session.double_releases == 1
        # Counters survive the block for post-run assertions.
        assert pool.double_releases == 1

    def test_strict_mode_raises(self):
        from repro.sim.packet import PoolMisuseError
        pool = PacketPool()
        with pool.debug_session(strict=True):
            p = pool.acquire(1, 1024, "a", "b")
            pool.release(p)
            with pytest.raises(PoolMisuseError):
                pool.release(p)

    def test_released_packets_poisoned_and_quarantined(self):
        from repro.sim.packet import RELEASED_KIND
        pool = PacketPool()
        with pool.debug_session():
            p = pool.acquire(1, 1024, "a", "b", kind="data")
            pool.release(p)
            # Use-after-release is visible: the kind is poisoned, so
            # no dispatch path recognizes the packet...
            assert p.kind == RELEASED_KIND
            # ...and it is quarantined, never recycled mid-session.
            q = pool.acquire(2, 1024, "c", "d")
            assert q is not p

    def test_sessions_do_not_nest(self):
        pool = PacketPool()
        with pool.debug_session():
            with pytest.raises(RuntimeError, match="nest"):
                with pool.debug_session():
                    pass

    def test_publish_metrics_exposes_leak_gauges(self):
        from repro.obs.metrics import MetricsRegistry
        pool = PacketPool()
        registry = MetricsRegistry()
        with pool.debug_session():
            p = pool.acquire(1, 1024, "a", "b")
            pool.publish_metrics(registry)
            assert registry.gauge(
                "sim.packet.pool_leaked_total").value == 1
            pool.release(p)
            pool.release(p)
            pool.publish_metrics(registry)
            assert registry.gauge(
                "sim.packet.pool_leaked_total").value == 0
            assert registry.gauge(
                "sim.packet.pool_double_releases_total").value == 1
