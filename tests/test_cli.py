"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.experiments.registry import EXPERIMENTS


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_collects_names(self):
        args = build_parser().parse_args(["run", "fig04", "fig20"])
        assert args.experiments == ["fig04", "fig20"]

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_run_executes_driver(self, capsys, monkeypatch):
        # Substitute a trivial experiment to keep the test instant.
        from repro.experiments.registry import Experiment
        fake = Experiment("fake", "a fake experiment",
                          lambda: [1, 2, 3],
                          lambda rows: f"rows={rows}")
        monkeypatch.setitem(EXPERIMENTS, "fake", fake)
        assert main(["run", "fake"]) == 0
        out = capsys.readouterr().out
        assert "rows=[1, 2, 3]" in out
        assert "fake: a fake experiment" in out

    def test_run_all_expands(self, capsys, monkeypatch):
        from repro.experiments.registry import Experiment
        calls = []

        def record(name):
            def runner():
                calls.append(name)
                return name
            return runner

        monkeypatch.setattr(
            "repro.__main__.EXPERIMENTS",
            {"a": Experiment("a", "first", record("a"), str),
             "b": Experiment("b", "second", record("b"), str)})
        assert main(["run", "all"]) == 0
        assert calls == ["a", "b"]
