"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.experiments.registry import EXPERIMENTS


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_collects_names(self):
        args = build_parser().parse_args(["run", "fig04", "fig20"])
        assert args.experiments == ["fig04", "fig20"]

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_run_executes_driver(self, capsys, monkeypatch):
        # Substitute a trivial experiment to keep the test instant.
        from repro.experiments.registry import Experiment
        fake = Experiment("fake", "a fake experiment",
                          lambda: [1, 2, 3],
                          lambda rows: f"rows={rows}")
        monkeypatch.setitem(EXPERIMENTS, "fake", fake)
        assert main(["run", "fake"]) == 0
        out = capsys.readouterr().out
        assert "rows=[1, 2, 3]" in out
        assert "fake: a fake experiment" in out

    def test_run_all_expands(self, capsys, monkeypatch):
        from repro.experiments.registry import Experiment
        calls = []

        def record(name):
            def runner():
                calls.append(name)
                return name
            return runner

        monkeypatch.setattr(
            "repro.__main__.EXPERIMENTS",
            {"a": Experiment("a", "first", record("a"), str),
             "b": Experiment("b", "second", record("b"), str)})
        assert main(["run", "all"]) == 0
        assert calls == ["a", "b"]

    def test_csv_creates_missing_directory(self, tmp_path, capsys,
                                           monkeypatch):
        import dataclasses

        from repro.experiments.registry import Experiment

        @dataclasses.dataclass
        class Row:
            x: int

        fake = Experiment("fake", "a fake experiment",
                          lambda: [Row(x=1)], str)
        monkeypatch.setitem(EXPERIMENTS, "fake", fake)
        target = tmp_path / "deep" / "nested"
        assert main(["run", "fake", "--csv", str(target)]) == 0
        assert (target / "fake.csv").exists()

    def test_telemetry_flag_writes_artifacts(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.experiments.registry import Experiment
        fake = Experiment("fake", "a fake experiment",
                          lambda: [1, 2], str)
        monkeypatch.setitem(EXPERIMENTS, "fake", fake)
        obs_dir = tmp_path / "obs"
        assert main(["run", "fake", "--telemetry",
                     str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "run log:" in out
        logs = list(obs_dir.glob("fake-*.jsonl"))
        assert len(logs) == 1
        from repro.obs import validate_file
        assert validate_file(logs[0]) == []
        assert list(obs_dir.glob("fake-*.prom"))
        assert list(obs_dir.glob("fake-*.metrics.csv"))

    def test_cache_stats_printed_per_experiment(self, tmp_path,
                                                capsys, monkeypatch):
        from repro.experiments.registry import Experiment
        fake = Experiment("fake", "a fake experiment",
                          lambda: [1], str)
        monkeypatch.setitem(EXPERIMENTS, "fake", fake)
        assert main(["run", "fake", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "fake cache:" in out
        assert "hit rate" in out


class TestReportCommand:
    def _write_log(self, directory):
        from repro.obs import Telemetry
        telemetry = Telemetry(directory, experiment="demo",
                              run_id="demo-1")
        with telemetry.activate(params={"n": 1}):
            pass
        return telemetry.runlog_path

    def test_report_renders_dashboard(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "demo-1" in out
        assert "status" in out

    def test_validate_only(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["report", str(path), "--validate-only"]) == 0
        assert "valid run log" in capsys.readouterr().out

    def test_invalid_log_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "a run log"}\n')
        assert main(["report", str(bad)]) == 1
        assert "schema violation" in capsys.readouterr().err

    def test_report_accepts_directory(self, tmp_path, capsys):
        from repro.obs import Telemetry
        for run_id in ("demo-1", "demo-2"):
            telemetry = Telemetry(tmp_path, experiment="demo",
                                  run_id=run_id)
            with telemetry.activate():
                pass
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "demo-1" in out and "demo-2" in out

    def test_report_directory_fails_on_any_invalid_log(
            self, tmp_path, capsys):
        self._write_log(tmp_path)
        (tmp_path / "bad.jsonl").write_text('{"not": "a run log"}\n')
        assert main(["report", str(tmp_path),
                     "--validate-only"]) == 1
        captured = capsys.readouterr()
        assert "schema violation" in captured.err
        assert "valid run log" in captured.out  # the good one

    def test_report_empty_directory_is_an_error(self, tmp_path,
                                                capsys):
        assert main(["report", str(tmp_path)]) == 2
        assert "no run logs" in capsys.readouterr().err


class TestWatchCommand:
    def test_watch_once_renders_dashboard(self, tmp_path, capsys):
        from repro.obs import Telemetry
        telemetry = Telemetry(tmp_path, experiment="demo",
                              run_id="demo-1")
        with telemetry.activate():
            pass
        assert main(["watch", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro watch :: demo" in out
        assert "final verdict: clean" in out

    def test_watch_missing_target_fails(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "absent_dir")]) == 2
        assert "no such" in capsys.readouterr().err


class TestCompareCommand:
    def _bench(self, path, rate):
        import json
        path.write_text(json.dumps(
            {"micro": {"event_loop_events_per_sec": rate}}))

    def test_compare_clean_exits_zero(self, tmp_path, capsys):
        self._bench(tmp_path / "a.json", 1000.0)
        self._bench(tmp_path / "b.json", 1010.0)
        assert main(["compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json"),
                     "--fail-on-regression"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_gate_fails_on_regression(self, tmp_path,
                                              capsys):
        self._bench(tmp_path / "a.json", 1000.0)
        self._bench(tmp_path / "b.json", 100.0)
        assert main(["compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json"),
                     "--fail-on-regression"]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_compare_without_gate_reports_but_passes(self, tmp_path,
                                                     capsys):
        self._bench(tmp_path / "a.json", 1000.0)
        self._bench(tmp_path / "b.json", 100.0)
        assert main(["compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 0

    def test_compare_missing_source_fails(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "nope"),
                     str(tmp_path / "also_nope")]) == 2
        assert "no such" in capsys.readouterr().err
