"""repro.qa -- specs, fuzzer, oracles, differential runner, capsules.

The end-to-end acceptance path (deliberate engine mutation caught,
shrunk and replayed) lives in ``tests/test_qa_mutation.py``; this
file covers the harness's components.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.perf.resilience import replay_capsule
from repro.qa import (
    MATRIX,
    DifferentialRunner,
    FaultSpec,
    FlowSpec,
    OracleSuite,
    OracleViolation,
    ScenarioFuzzer,
    ScenarioOutcome,
    ScenarioSpec,
    Shrinker,
    Variant,
    check_scenario,
    corpus_capsules,
    outcome_digest,
    replay_corpus,
    run_fuzz,
    run_scenario,
)
from repro.qa.capsule import capsule_for_verdict, write_capsule
from repro.qa.driver import format_report
from repro.qa.oracles import (
    HYBRID_QUEUE_ATOL_BYTES,
    HYBRID_QUEUE_RTOL,
)
from repro.qa.scenario import build_network, host_names, port_names
from repro.sim.faults import collect_ports


def tiny_spec(n_flows=2, size=16384, **overrides):
    """A second-or-less single-switch scenario for component tests."""
    flows = tuple(FlowSpec("dcqcn", f"s{i}", "recv", size)
                  for i in range(n_flows))
    base = dict(topology="single_switch",
                topology_args={"n_senders": max(2, n_flows)},
                flows=flows, duration=0.004, seed=3)
    base.update(overrides)
    return ScenarioSpec(**base)


def synthetic_outcome(**overrides):
    """A minimal, oracle-clean outcome to perturb in unit tests."""
    base = dict(
        spec_key="deadbeef0000", variant=Variant("baseline"),
        flows=[], trace=[], ports={}, invariant_violations=[],
        pool={"outstanding": 0, "double_releases": 0,
              "leaked_examples": []},
        fault_stats={}, queue_samples=[], events_processed=10,
        sim_time=0.004)
    base.update(overrides)
    return ScenarioOutcome(**base)


def flow_row(**overrides):
    base = dict(flow_id=0, src="s0", dst="recv", protocol="dcqcn",
                size_bytes=16384, start_time=0.0, bytes_sent=16384,
                bytes_delivered=16384, completed=True, fct=1e-3)
    base.update(overrides)
    return base


class TestScenarioSpec:
    def test_round_trip_is_lossless(self):
        spec = tiny_spec(
            aqm="red", aqm_args={"kmin_kb": 5.0},
            param_overrides={"dcqcn": {"g": 0.125}},
            faults=(FaultSpec("loss", "sw->recv", rate=0.01,
                              stop=0.002),),
            buffer_kb=200.0)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key() == spec.key()

    def test_round_trip_survives_json(self):
        spec = tiny_spec(faults=(FaultSpec("delay", "sw->recv",
                                           extra=1e-5, jitter=1e-6),))
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    def test_key_tracks_content(self):
        spec = tiny_spec()
        assert spec.key() == tiny_spec().key()
        assert spec.key() != spec.replace(duration=0.005).key()
        assert len(spec.key()) == 12

    def test_validate_accepts_the_envelope(self):
        tiny_spec().validate()  # does not raise

    @pytest.mark.parametrize("overrides,fragment", [
        (dict(topology="clos"), "topology"),
        (dict(aqm="codel"), "aqm"),
        (dict(link_gbps=400.0), "link_gbps"),
        (dict(link_delay_us=0.1), "link_delay_us"),
        (dict(duration=0.0), "duration"),
        (dict(flows=()), "at least one flow"),
        (dict(flows=(FlowSpec("bbr", "s0", "recv", 16384),)),
         "protocol"),
        (dict(flows=(FlowSpec("dcqcn", "s9", "recv", 16384),)),
         "outside"),
        (dict(flows=(FlowSpec("dcqcn", "s0", "recv", 100),)),
         ">= 1 KB"),
        (dict(flows=(FlowSpec("dcqcn", "s0", "recv", 16384,
                              start_time=1.0),)), "start"),
        (dict(faults=(FaultSpec("loss", "nowhere", rate=0.1),)),
         "unknown port"),
        (dict(faults=(FaultSpec("meteor", "sw->recv"),)),
         "fault kind"),
    ])
    def test_validate_rejects(self, overrides, fragment):
        with pytest.raises(ValueError, match=fragment):
            tiny_spec(**overrides).validate()

    def test_pfc_and_buffers_are_star_only(self):
        flows = (FlowSpec("dcqcn", "s0", "r0", 16384),)
        spec = ScenarioSpec(topology="dumbbell",
                            topology_args={"n_pairs": 2},
                            flows=flows, duration=0.004, pfc=True)
        with pytest.raises(ValueError, match="pfc"):
            spec.validate()
        with pytest.raises(ValueError, match="buffers"):
            spec.replace(pfc=False, buffer_kb=100.0).validate()

    def test_window_exact_envelope(self):
        assert tiny_spec(aqm="red").window_exact
        assert tiny_spec(n_flows=1).window_exact
        # Multi-flow with no AQM: the converging egress is unmarked,
        # stays window-capable, and stamps mid-window completions at
        # the window boundary.
        assert not tiny_spec().window_exact
        # Any DCTCP flow: cwnd bursts form NIC windows.
        dctcp = tiny_spec(aqm="red").replace(flows=(
            FlowSpec("dctcp", "s0", "recv", 16384),))
        assert not dctcp.window_exact
        # Shared source: one NIC multiplexes two flows.
        shared = tiny_spec(aqm="red").replace(flows=(
            FlowSpec("dcqcn", "s0", "recv", 16384),
            FlowSpec("timely", "s0", "recv", 16384)))
        assert not shared.window_exact
        # A sender that is also a receiver: ACKs land mid-window.
        crossed = tiny_spec(aqm="red").replace(flows=(
            FlowSpec("dcqcn", "s0", "recv", 16384),
            FlowSpec("dcqcn", "s1", "s0", 16384)))
        assert not crossed.window_exact
        # PFC pauses cannot interrupt a committed window.
        assert not tiny_spec(pfc=True, aqm="red").window_exact

    def test_hybrid_envelope(self):
        good = ScenarioSpec(
            topology="single_switch",
            topology_args={"n_senders": 2}, aqm="red",
            flows=(FlowSpec("dcqcn", "s0", "recv", None),
                   FlowSpec("dcqcn", "s1", "recv", None)),
            duration=0.01)
        assert good.long_lived and good.hybrid_eligible
        assert not good.replace(link_gbps=1.0).hybrid_eligible
        assert not good.replace(aqm="pi").hybrid_eligible
        assert not good.replace(
            aqm_args={"kmin_kb": 40.0}).hybrid_eligible
        assert not good.replace(flows=(
            FlowSpec("timely", "s0", "recv", None),)).hybrid_eligible
        assert not tiny_spec().hybrid_eligible  # finite flows


class TestTopologyKnowledge:
    """port_names/host_names must mirror what the builders create."""

    @pytest.mark.parametrize("spec", [
        tiny_spec(n_flows=3),
        ScenarioSpec(topology="dumbbell",
                     topology_args={"n_pairs": 3},
                     flows=(FlowSpec("dcqcn", "s0", "r0", 16384),),
                     duration=0.004),
        ScenarioSpec(topology="parking_lot",
                     topology_args={"n_segments": 3},
                     flows=(FlowSpec("dcqcn", "sx", "rx", 16384),),
                     duration=0.004),
        ScenarioSpec(topology="leaf_spine",
                     topology_args={"n_leaves": 2, "n_spines": 2,
                                    "hosts_per_leaf": 2},
                     flows=(FlowSpec("dcqcn", "h0_0", "h1_0",
                                     16384),),
                     duration=0.004),
        tiny_spec(pfc=True, aqm="red"),
    ])
    def test_analytic_names_match_built_network(self, spec):
        net = build_network(spec)
        assert sorted(port_names(spec)) == sorted(collect_ports(net))
        assert set(host_names(spec)) == set(net.hosts)


class TestFuzzer:
    def test_generation_is_deterministic(self):
        a = ScenarioFuzzer(42)
        b = ScenarioFuzzer(42)
        for index in range(6):
            assert a.generate(index).key() == b.generate(index).key()

    def test_scenarios_differ_across_indexes_and_seeds(self):
        fuzzer = ScenarioFuzzer(0)
        keys = {fuzzer.generate(i).key() for i in range(12)}
        assert len(keys) == 12
        assert ScenarioFuzzer(1).generate(0).key() != \
            fuzzer.generate(0).key()

    def test_every_generated_spec_validates(self):
        fuzzer = ScenarioFuzzer(7)
        for index in range(24):
            spec = fuzzer.generate(index)
            spec.validate()  # in-envelope by construction
            assert spec.duration <= 0.25

    def test_long_lived_specs_land_in_the_hybrid_envelope(self):
        found = 0
        fuzzer = ScenarioFuzzer(2)
        for index in range(80):
            spec = fuzzer.generate(index)
            if spec.long_lived:
                found += 1
                assert spec.hybrid_eligible
        assert found > 0


class TestOracleSuite:
    def check(self, outcome, spec=None):
        return OracleSuite().check_run(spec or tiny_spec(), outcome)

    def test_clean_outcome_passes(self):
        assert self.check(synthetic_outcome()) == []

    def test_abort_flagged(self):
        got = self.check(synthetic_outcome(aborted="max_events"))
        assert [v.oracle for v in got] == ["no_abort"]

    def test_invariant_violations_forwarded(self):
        got = self.check(synthetic_outcome(
            invariant_violations=["queue went negative"]))
        assert got[0].oracle == "invariants_clean"
        assert "negative" in got[0].message

    def test_conservation_catches_over_delivery(self):
        got = self.check(synthetic_outcome(
            flows=[flow_row(bytes_delivered=999999)]))
        assert "conservation" in [v.oracle for v in got]

    def test_conservation_catches_short_completion(self):
        got = self.check(synthetic_outcome(
            flows=[flow_row(bytes_sent=16384,
                            bytes_delivered=8192)]))
        assert "conservation" in [v.oracle for v in got]

    def test_monotone_time_catches_backwards_trace(self):
        got = self.check(synthetic_outcome(
            trace=[(2e-3, "sw->recv", 0), (1e-3, "sw->recv", 1)]))
        assert [v.oracle for v in got] == ["monotone_time"]

    def test_pool_leak_balances_against_drop_counters(self):
        ports = {"sw->recv": {"queue_dropped_packets": 3,
                              "control_dropped_packets": 0,
                              "queued_at_end": 1}}
        clean = synthetic_outcome(
            ports=ports, pool={"outstanding": 4,
                               "double_releases": 0,
                               "leaked_examples": []})
        assert self.check(clean) == []
        leaky = synthetic_outcome(
            ports=ports, pool={"outstanding": 5,
                               "double_releases": 0,
                               "leaked_examples": ["Packet(...)"]})
        got = self.check(leaky)
        assert [v.oracle for v in got] == ["pool_leak"]

    def test_pool_leak_exempts_long_lived_specs(self):
        spec = tiny_spec().replace(flows=(
            FlowSpec("dcqcn", "s0", "recv", None),))
        got = self.check(synthetic_outcome(
            pool={"outstanding": 7, "double_releases": 0,
                  "leaked_examples": []}), spec=spec)
        assert got == []

    def test_double_release_flagged(self):
        got = self.check(synthetic_outcome(
            pool={"outstanding": 0, "double_releases": 2,
                  "leaked_examples": []}))
        assert [v.oracle for v in got] == ["pool_double_release"]

    def test_liveness_only_on_benign_scenarios(self):
        stuck = synthetic_outcome(flows=[flow_row(
            completed=False, bytes_delivered=8192, fct=None)])
        got = self.check(stuck)
        assert "liveness" in [v.oracle for v in got]
        faulty = tiny_spec(faults=(
            FaultSpec("loss", "sw->recv", rate=0.05),))
        assert self.check(stuck, spec=faulty) == []

    def test_attribution_gate(self):
        got = self.check(synthetic_outcome(
            forensics=[{"flow_id": 0, "attributed_share": 0.5}]))
        assert [v.oracle for v in got] == ["fct_attribution"]
        assert self.check(synthetic_outcome(
            forensics=[{"flow_id": 0,
                        "attributed_share": 0.99}])) == []

    def test_skip_disables_an_oracle(self):
        suite = OracleSuite(skip=["no_abort"])
        got = suite.check_run(tiny_spec(),
                              synthetic_outcome(aborted="wall_clock"))
        assert got == []

    def test_bit_identical_pair(self):
        suite = OracleSuite()
        base = synthetic_outcome(trace=[(1e-3, "sw->recv", 0)])
        twin = synthetic_outcome(trace=[(1e-3, "sw->recv", 0)],
                                 variant=Variant("scheduler",
                                                 scheduler="calendar"))
        assert suite.check_pair(tiny_spec(), base, twin) == []
        skewed = synthetic_outcome(
            trace=[(2e-3, "sw->recv", 0)],
            variant=Variant("scheduler", scheduler="calendar"))
        got = suite.check_pair(tiny_spec(), base, skewed)
        assert [v.oracle for v in got] == ["bit_identical"]
        assert "trace event 0" in got[0].message

    def test_truncated_trace_fails_loudly(self):
        suite = OracleSuite()
        base = synthetic_outcome(trace_truncated=True)
        got = suite.check_pair(tiny_spec(), base, synthetic_outcome(
            variant=Variant("window", window=8)))
        assert [v.oracle for v in got] == ["bit_identical"]
        assert "overflow" in got[0].message

    def test_hybrid_combined_tolerance(self):
        suite = OracleSuite()
        spec = tiny_spec(duration=0.01)

        def pair(ref_bytes, got_bytes):
            base = synthetic_outcome(
                queue_samples=[(0.008, ref_bytes)])
            hyb = synthetic_outcome(
                queue_samples=[(0.008, got_bytes)],
                variant=Variant("hybrid", hybrid=True))
            return suite.check_pair(spec, base, hyb)

        # Inside rtol on a deep queue.
        deep = 400 * 1024
        assert pair(deep, deep * (1 + HYBRID_QUEUE_RTOL * 0.9)) == []
        assert pair(deep, deep * 2.2) != []
        # Inside atol on a near-empty queue even when rtol is blown.
        shallow = 4 * 1024
        assert pair(shallow,
                    shallow + HYBRID_QUEUE_ATOL_BYTES * 0.9) == []
        assert pair(shallow,
                    shallow + HYBRID_QUEUE_ATOL_BYTES * 1.5) != []


class TestDifferentialRunner:
    def test_rejects_unknown_classes(self):
        with pytest.raises(ValueError, match="unknown matrix"):
            DifferentialRunner(classes=["scheduler", "quantum"])
        with pytest.raises(ValueError, match="unknown matrix"):
            DifferentialRunner(classes=["baseline"])

    def test_applicable_classes_gate_on_envelopes(self):
        runner = DifferentialRunner()
        # Window-exact, not hybrid-eligible.
        spec = tiny_spec(aqm="red")
        assert runner.applicable_classes(spec) == \
            ["scheduler", "window", "forensics"]
        dctcp = spec.replace(flows=(
            FlowSpec("dctcp", "s0", "recv", 16384),))
        assert "window" not in runner.applicable_classes(dctcp)

    def test_matrix_agrees_on_a_tiny_scenario(self):
        runner = DifferentialRunner(
            classes=["scheduler", "window", "forensics"])
        verdict = runner.run(tiny_spec(aqm="red"))
        assert verdict.ok, [str(v) for v in verdict.violations]
        assert set(verdict.outcomes) == \
            {"baseline", "scheduler", "window", "forensics"}
        digests = {outcome_digest(o)
                   for o in verdict.outcomes.values()}
        assert len(digests) == 1
        assert verdict.skipped == []

    def test_window_skip_is_reported(self):
        runner = DifferentialRunner(classes=["window"])
        verdict = runner.run(tiny_spec(pfc=True, aqm="red"))
        assert verdict.skipped == ["window"]
        assert list(verdict.outcomes) == ["baseline"]


class TestRunScenario:
    def test_hybrid_variant_requires_eligibility(self):
        with pytest.raises(ValueError, match="hybrid"):
            run_scenario(tiny_spec(), MATRIX["hybrid"])

    def test_outcome_shape(self):
        outcome = run_scenario(tiny_spec())
        assert outcome.aborted is None
        assert outcome.trace and not outcome.trace_truncated
        assert outcome.pool["outstanding"] == 0
        assert all(f["completed"] for f in outcome.flows)
        assert outcome.sim_time <= 0.004 + 1e-12

    def test_deterministic_digest(self):
        spec = tiny_spec()
        a = outcome_digest(run_scenario(spec))
        b = outcome_digest(run_scenario(spec))
        assert a == b


class TestShrinkerValueGuard:
    def test_refuses_a_spec_that_does_not_trip(self):
        runner = DifferentialRunner(classes=["scheduler"])
        with pytest.raises(ValueError, match="does not trip"):
            Shrinker(runner).shrink(tiny_spec(), "bit_identical")


class TestCapsuleRoundTrip:
    def test_check_scenario_clean_path(self):
        spec = tiny_spec()
        result = check_scenario(spec.to_dict(), matrix=["scheduler"])
        assert result["spec_key"] == spec.key()
        assert result["variants_run"] == ["baseline", "scheduler"]

    def test_check_scenario_raises_on_violation(self):
        # An aborting scenario (absurdly low event budget is not
        # reachable through specs, so lean on liveness instead: a
        # flow that cannot finish in the run on a lossless star).
        spec = tiny_spec(size=4 * 1024 * 1024, duration=0.002)
        with pytest.raises(OracleViolation) as excinfo:
            check_scenario(spec.to_dict(), matrix=["scheduler"])
        assert "liveness" in excinfo.value.oracles

    def test_capsule_replay_round_trip(self, tmp_path):
        spec = tiny_spec(size=4 * 1024 * 1024, duration=0.002)
        runner = DifferentialRunner(classes=["scheduler"])
        verdict = runner.run(spec)
        assert not verdict.ok
        capsule = capsule_for_verdict(verdict, fuzz_seed=9, index=4,
                                      matrix=["scheduler"])
        path = write_capsule(capsule, tmp_path)
        assert path.exists()
        result = replay_capsule(path)
        assert result.reproduced
        assert result.error_type == "OracleViolation"

    def test_corpus_helpers_on_missing_dir(self, tmp_path):
        assert corpus_capsules(tmp_path / "nope") == []
        assert list(replay_corpus(tmp_path / "nope")) == []


class TestRunFuzz:
    def test_requires_a_bound(self):
        with pytest.raises(ValueError, match="budget"):
            run_fuzz()
        with pytest.raises(ValueError, match=">= 1"):
            run_fuzz(budget=0)

    def test_small_campaign_is_clean(self):
        report = run_fuzz(budget=2, seed=0, matrix=["scheduler"])
        assert report.ok
        assert report.scenarios_run == 2
        assert report.findings == []
        assert "all oracles clean" in format_report(report)

    def test_campaign_bumps_metrics(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            run_fuzz(budget=1, seed=1, matrix=["scheduler"])
        assert registry.counter(
            "qa.fuzz.scenarios_total").value == 1
        assert registry.gauge(
            "qa.fuzz.last_run_scenarios").value == 1


class TestFuzzCLI:
    def test_fuzz_smoke(self, capsys, tmp_path):
        from repro.__main__ import main
        rc = main(["fuzz", "--budget", "1", "--seed", "0",
                   "--matrix", "scheduler",
                   "--capsule-dir", str(tmp_path / "capsules")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuzz seed=0: 1 scenarios" in out
        assert "all oracles clean" in out

    def test_fuzz_requires_a_bound(self, capsys):
        from repro.__main__ import main
        assert main(["fuzz"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_fuzz_rejects_unknown_matrix_class(self, capsys):
        from repro.__main__ import main
        assert main(["fuzz", "--budget", "1",
                     "--matrix", "quantum"]) == 2
        assert "quantum" in capsys.readouterr().err

    def test_fuzz_writes_telemetry(self, capsys, tmp_path):
        from repro.__main__ import main
        from repro.obs.runlog import read_events
        rc = main(["fuzz", "--budget", "1", "--seed", "0",
                   "--matrix", "scheduler",
                   "--capsule-dir", str(tmp_path / "capsules"),
                   "--telemetry", str(tmp_path / "telemetry")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[telemetry:" in out
        log = next((tmp_path / "telemetry").rglob("*.jsonl"))
        fuzz_events = [e for e in read_events(log)
                       if e["type"] == "fuzz"]
        kinds = [e["event"] for e in fuzz_events]
        assert kinds[0] == "summary_start"
        assert kinds[-1] == "summary"
        assert "scenario_ok" in kinds


class TestRegressionCorpus:
    """Checked-in capsules must stay fixed on shipped code."""

    def test_corpus_does_not_reproduce(self):
        from pathlib import Path
        corpus = Path(__file__).parent / "corpus"
        results = list(replay_corpus(corpus))
        assert results, "regression corpus is empty"
        for path, result in results:
            assert not result.reproduced, (
                f"{path.name} reproduced again: "
                f"{result.error_type}: {result.error_message}")
