"""Convergence-time experiment and DCQCN fluid start-time support."""

import numpy as np
import pytest

from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fluid.history import UniformHistory
from repro.experiments import ext_convergence_time


class TestDCQCNStartTimes:
    def test_inactive_flow_frozen(self, dcqcn_params):
        model = DCQCNFluidModel(dcqcn_params, start_times=[0.0, 1.0])
        state = model.initial_state()
        history = UniformHistory(0.0, 1e-6, state)
        deriv = model.derivatives(0.0, state, history)
        # Flow 1 contributes nothing and does not evolve; the single
        # active line-rate flow exactly fills the link.
        assert deriv[model.queue_index] == pytest.approx(0.0)
        assert deriv[model.rc_slice()][1] == 0.0
        assert deriv[model.rt_slice()][1] == 0.0
        assert deriv[model.alpha_slice()][1] == 0.0

    def test_rejects_bad_start_times(self, dcqcn_params):
        with pytest.raises(ValueError):
            DCQCNFluidModel(dcqcn_params, start_times=[0.0])
        with pytest.raises(ValueError):
            DCQCNFluidModel(dcqcn_params, start_times=[-1.0, 0.0])

    def test_late_flow_claims_fair_share(self, dcqcn_params):
        join = 0.01
        model = DCQCNFluidModel(dcqcn_params, start_times=[0.0, join])
        trace = dde.integrate(model, 0.06, dt=2e-6, record_stride=20)
        fair = dcqcn_params.fair_share
        # Before the join the incumbent holds the whole link.
        before = np.searchsorted(trace.times, join * 0.9)
        assert trace.column("rc[0]")[before] == pytest.approx(
            dcqcn_params.capacity, rel=0.05)
        # After convergence both sit at C/2.
        assert trace.tail_mean("rc[0]", 0.01) == pytest.approx(
            fair, rel=0.1)
        assert trace.tail_mean("rc[1]", 0.01) == pytest.approx(
            fair, rel=0.1)


class TestExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_convergence_time.run(duration=0.25)

    def test_everyone_settles(self, rows):
        for row in rows:
            assert row.newcomer_settle_ms is not None, row.protocol
            assert row.incumbent_settle_ms is not None, row.protocol

    def test_dcqcn_settles_within_tens_of_ms(self, rows):
        dcqcn = next(r for r in rows if r.protocol == "dcqcn")
        assert dcqcn.newcomer_settle_ms < 80.0

    def test_timid_start_is_much_slower(self, rows):
        confident = next(r for r in rows if "C/2" in r.protocol)
        timid = next(r for r in rows if "C/20" in r.protocol)
        # The additive-only climb makes the timid newcomer several
        # times slower -- the delta-limited ramp the paper's Fig. 10(b)
        # recovery suffers from.
        assert timid.newcomer_settle_ms > \
            2 * confident.newcomer_settle_ms

    def test_report_renders(self, rows):
        out = ext_convergence_time.report(rows)
        assert "dcqcn" in out
        assert "newcomer settles" in out
