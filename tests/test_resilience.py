"""Chaos tests for the resilient sweep layer.

Every failure mode the resilience machinery claims to survive is
induced on purpose here: cells that raise, cells that hang past their
wall-clock budget, workers that die by SIGKILL, journals truncated
mid-line by a crash, and runs interrupted and resumed.  The contracts
under test are the ones ``docs/PERFORMANCE.md`` promises: a poison
cell costs its own slot (a :class:`CellFailure`) and nothing else, a
resumed sweep is bit-identical to an uninterrupted one, and a crash
capsule replays the original failure deterministically.
"""

import json
import os
import pickle
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.perf import (CellFailure, CrashCapsule, ResiliencePolicy,
                        ResultCache, SweepJournal, SweepRunner,
                        collect_failures, is_failure, journal_for,
                        replay_capsule)
from repro.perf.cache import FINGERPRINT_ENV
from repro.perf.resilience import decode_value, encode_value
from repro.perf.sweep import WORKER_ENV

# -- module-level cells (picklable into worker processes) ---------------------


def square(x):
    return x * x


def seeded_draw(seed):
    """A vector result that is a pure function of the seed: any
    nondeterminism in transport or journaling shows up as inequality."""
    rng = np.random.default_rng(seed)
    return rng.random(8)


def counted_cell(x, counter_dir):
    """Record every invocation on disk so tests can count executions
    across processes and resumed runs."""
    Path(counter_dir, f"call-{x}-{os.getpid()}-{time.monotonic_ns()}"
         ).touch()
    return x * 10


def poison_cell(x):
    if x == 3:
        raise ValueError(f"poison {x}")
    return x * 10


def flaky_cell(x, counter_dir):
    """Fail the first two attempts for x == 2, then succeed."""
    attempts = len(list(Path(counter_dir).glob(f"flaky-{x}-*")))
    Path(counter_dir, f"flaky-{x}-{attempts}").touch()
    if x == 2 and attempts < 2:
        raise RuntimeError(f"transient {x} attempt {attempts}")
    return x + 100


def hang_cell(x):
    """x == 1 hangs far past any test timeout; the pool must kill it."""
    if x == 1:
        time.sleep(300)
    return x * 7


def crash_cell(x):
    """x == 2 SIGKILLs its worker -- but only inside a pool worker.

    The guard matters twice over: without it a degraded-to-serial
    drain would kill the pytest process itself, and the sweep runner's
    serial fallback is exactly how such a cell is supposed to finally
    succeed (the parent is not expendable, so it does not crash).
    """
    if x == 2 and os.environ.get(WORKER_ENV):
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 5


def interrupting_cell(x):
    if x == 2:
        raise KeyboardInterrupt
    return x


# -- policy -------------------------------------------------------------------


class TestResiliencePolicy:
    def test_backoff_schedule(self):
        policy = ResiliencePolicy(backoff_base=0.25, backoff_factor=2.0,
                                  backoff_max=1.0)
        assert policy.backoff(0) == 0.0
        assert policy.backoff(1) == 0.25
        assert policy.backoff(2) == 0.5
        assert policy.backoff(3) == 1.0  # capped
        assert policy.backoff(10) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(cell_timeout=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_pool_respawns=-1)


# -- retries and quarantine ---------------------------------------------------


class TestRetries:
    def test_serial_transient_failure_retried(self, tmp_path):
        slept = []
        policy = ResiliencePolicy(max_retries=2, backoff_base=0.25,
                                  write_capsules=False,
                                  sleep=slept.append)
        runner = SweepRunner(experiment_id="flaky", resilience=policy)
        result = runner.map(flaky_cell,
                            [{"x": i, "counter_dir": str(tmp_path)}
                             for i in range(4)])
        assert result == [100, 101, 102, 103]
        # Two failures before success: backoff(1) then backoff(2).
        assert slept == [0.25, 0.5]
        attempts = len(list(tmp_path.glob("flaky-2-*")))
        assert attempts == 3

    def test_parallel_transient_failure_retried(self, tmp_path):
        policy = ResiliencePolicy(max_retries=2, backoff_base=0.0,
                                  write_capsules=False)
        runner = SweepRunner(workers=2, experiment_id="flaky",
                             resilience=policy)
        result = runner.map(flaky_cell,
                            [{"x": i, "counter_dir": str(tmp_path)}
                             for i in range(4)])
        assert result == [100, 101, 102, 103]

    def test_quarantine_preserves_other_cells(self, tmp_path):
        policy = ResiliencePolicy(max_retries=1, backoff_base=0.0,
                                  capsule_dir=tmp_path / "capsules")
        runner = SweepRunner(experiment_id="poison", resilience=policy)
        result = runner.map(poison_cell, [{"x": i} for i in range(5)])
        assert result[:3] == [0, 10, 20]
        assert result[4] == 40
        failure = result[3]
        assert is_failure(failure)
        assert failure.kind == "exception"
        assert failure.error_type == "ValueError"
        assert "poison 3" in failure.error_message
        assert failure.attempts == 2  # first try + one retry
        assert failure.index == 3
        assert "poison 3" in failure.traceback
        assert "poison[3]" in str(failure)

    def test_quarantine_emits_sweep_events(self, tmp_path):
        from repro.obs import Telemetry, read_events, validate_file
        policy = ResiliencePolicy(max_retries=1, backoff_base=0.0,
                                  capsule_dir=tmp_path / "capsules")
        telemetry = Telemetry(tmp_path / "obs", experiment="poison")
        with telemetry.activate():
            SweepRunner(experiment_id="poison", resilience=policy) \
                .map(poison_cell, [{"x": i} for i in range(5)])
        events = [e for e in read_events(telemetry.runlog_path)
                  if e["type"] == "sweep"]
        kinds = [e["event"] for e in events]
        assert kinds.count("cell_retry") == 1
        assert kinds.count("cell_quarantined") == 1
        assert validate_file(telemetry.runlog_path) == []

    def test_collect_failures_walks_containers(self):
        failure = CellFailure("x", 0, {}, "exception", "E", "m", 1)
        nested = {"a": [1, failure, (2, failure)], "b": "text"}
        assert collect_failures(nested) == [failure, failure]
        assert collect_failures([1, 2, 3]) == []

    def test_without_policy_first_error_raises(self):
        runner = SweepRunner(experiment_id="poison")
        with pytest.raises(ValueError, match="poison 3"):
            runner.map(poison_cell, [{"x": i} for i in range(5)])

    def test_without_policy_parallel_error_raises(self):
        runner = SweepRunner(workers=2, experiment_id="poison")
        with pytest.raises(ValueError, match="poison 3"):
            runner.map(poison_cell, [{"x": i} for i in range(5)])


class TestTimeouts:
    def test_hung_cell_quarantined_innocents_survive(self, tmp_path):
        policy = ResiliencePolicy(cell_timeout=1.0, max_retries=0,
                                  capsule_dir=tmp_path / "capsules")
        runner = SweepRunner(workers=2, experiment_id="hang",
                             resilience=policy)
        started = time.monotonic()
        result = runner.map(hang_cell, [{"x": i} for i in range(4)])
        elapsed = time.monotonic() - started
        assert elapsed < 60  # nowhere near the cell's 300s sleep
        assert result[0] == 0
        assert result[2] == 14
        assert result[3] == 21
        failure = result[1]
        assert is_failure(failure)
        assert failure.kind == "timeout"
        assert failure.attempts == 1


class TestPoolSupervision:
    def test_sigkilled_worker_sweep_still_completes(self, monkeypatch):
        # Every parallel attempt of cell 2 kills its worker; the
        # runner respawns the pool, halves its width past the respawn
        # budget, and the final serial drain (parent process, no
        # WORKER_ENV) completes the cell.  Spawn cost pinned to zero
        # so the cheap grid still goes through the pool under test.
        from repro.perf import sweep as sweep_module
        monkeypatch.setattr(sweep_module, "POOL_SPAWN_COST_S", 0.0)
        policy = ResiliencePolicy(max_pool_respawns=1, max_retries=3,
                                  backoff_base=0.0,
                                  write_capsules=False)
        runner = SweepRunner(workers=2, experiment_id="crash",
                             resilience=policy)
        result = runner.map(crash_cell, [{"x": i} for i in range(5)])
        assert result == [0, 5, 10, 15, 20]

    def test_no_policy_worker_loss_still_raises(self, monkeypatch):
        # Pool supervision is always on, but without a policy a cell
        # that keeps losing its worker must surface an error -- never
        # a silent CellFailure placeholder.  The grid is cheap, so pin
        # the spawn-cost estimate to keep the probe dispatcher from
        # (correctly) keeping it serial -- the pool path is the one
        # under test.
        from repro.perf import sweep as sweep_module
        monkeypatch.setattr(sweep_module, "POOL_SPAWN_COST_S", 0.0)
        runner = SweepRunner(workers=2, experiment_id="crash")
        with pytest.raises(RuntimeError, match="lost its worker"):
            runner.map(crash_cell, [{"x": i} for i in range(5)])


# -- the journal --------------------------------------------------------------


class TestSweepJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, fingerprint="fp") as journal:
            journal.record_cell("exp", "k1", {"a": np.arange(3)},
                                attempts=1, elapsed=0.5)
        reloaded = SweepJournal(path, fingerprint="fp")
        hit, value = reloaded.lookup("k1")
        assert hit
        np.testing.assert_array_equal(value["a"], np.arange(3))
        assert reloaded.lookup("missing") == (False, None)

    def test_fingerprint_mismatch_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, fingerprint="old") as journal:
            journal.record_cell("exp", "k1", 1, attempts=1, elapsed=0)
        reloaded = SweepJournal(path, fingerprint="new")
        assert reloaded.lookup("k1") == (False, None)
        assert reloaded.stale_entries == 1

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, fingerprint="fp") as journal:
            journal.record_cell("exp", "k1", 1, attempts=1, elapsed=0)
            journal.record_cell("exp", "k2", 2, attempts=1, elapsed=0)
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"version": 1, "type": "cell_done", "ke')
        reloaded = SweepJournal(path, fingerprint="fp")
        assert reloaded.torn_lines == 1
        assert reloaded.lookup("k1") == (True, 1)
        assert reloaded.lookup("k2") == (True, 2)

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, fingerprint="fp") as journal:
            journal.record_cell("exp", "k1", 1, attempts=1, elapsed=0)
        text = path.read_text()
        path.write_text("garbage not json\n" + text)
        with pytest.raises(json.JSONDecodeError):
            SweepJournal(path, fingerprint="fp")

    def test_success_supersedes_failure(self, tmp_path):
        path = tmp_path / "j.jsonl"
        failure = CellFailure("exp", 0, {}, "exception", "E", "m", 2)
        with SweepJournal(path, fingerprint="fp") as journal:
            journal.record_failure(failure, "k1")
            journal.record_cell("exp", "k1", 42, attempts=3, elapsed=0)
        reloaded = SweepJournal(path, fingerprint="fp")
        assert reloaded.lookup("k1") == (True, 42)
        assert "k1" not in reloaded.failed

    def test_encode_decode_is_pickle_faithful(self):
        value = {"arr": np.linspace(0, 1, 7), "t": (1, "x")}
        decoded = decode_value(encode_value(value))
        assert pickle.dumps(decoded) == pickle.dumps(value)


class TestResume:
    def _policy(self, tmp_path):
        return ResiliencePolicy(journal_dir=tmp_path / "journals",
                                capsule_dir=tmp_path / "capsules")

    def test_resume_skips_journaled_cells(self, tmp_path):
        cells = [{"x": i, "counter_dir": str(tmp_path)}
                 for i in range(5)]
        policy = self._policy(tmp_path)
        # "Interrupted" first run: only the first three cells ran.
        first = SweepRunner(experiment_id="resume", resilience=policy)
        assert first.map(counted_cell, cells[:3]) == [0, 10, 20]
        ran_before = len(list(tmp_path.glob("call-*")))
        assert ran_before == 3
        # The resumed run recomputes only the two missing cells.
        second = SweepRunner(experiment_id="resume", resilience=policy)
        assert second.map(counted_cell, cells) == [0, 10, 20, 30, 40]
        assert len(list(tmp_path.glob("call-*"))) == ran_before + 2

    def test_resumed_run_bit_identical_to_clean_serial(self, tmp_path):
        cells = [{"seed": 100 + i} for i in range(6)]
        clean = SweepRunner(experiment_id="bits").map(seeded_draw,
                                                      cells)
        policy = self._policy(tmp_path)
        partial = SweepRunner(workers=2, experiment_id="bits",
                              resilience=policy)
        partial.map(seeded_draw, cells[:4])
        resumed = SweepRunner(workers=2, experiment_id="bits",
                              resilience=policy)
        result = resumed.map(seeded_draw, cells)
        # Per-value byte equality: every float bit survives the
        # journal round trip.  (Whole-list pickles can differ in memo
        # structure -- shared vs per-array dtype objects -- without
        # any value differing.)
        assert [pickle.dumps(r) for r in result] \
            == [pickle.dumps(c) for c in clean]

    def test_journal_promoted_into_cache(self, tmp_path):
        # A journal hit backfills the result cache so later runs hit
        # the cache directly.
        cache = ResultCache(root=tmp_path / "cache")
        policy = self._policy(tmp_path)
        first = SweepRunner(experiment_id="promote", resilience=policy)
        first.map(square, [{"x": 2}])
        cache_runner = SweepRunner(cache=cache,
                                   experiment_id="promote",
                                   resilience=policy)
        assert cache_runner.map(square, [{"x": 2}]) == [4]
        assert cache.stats.puts == 1

    def test_code_change_invalidates_journal(self, tmp_path,
                                             monkeypatch):
        cells = [{"x": i, "counter_dir": str(tmp_path)}
                 for i in range(3)]
        policy = self._policy(tmp_path)
        monkeypatch.setenv(FINGERPRINT_ENV, "fp-one")
        SweepRunner(experiment_id="inval",
                    resilience=policy).map(counted_cell, cells)
        assert len(list(tmp_path.glob("call-*"))) == 3
        monkeypatch.setenv(FINGERPRINT_ENV, "fp-two")
        SweepRunner(experiment_id="inval",
                    resilience=policy).map(counted_cell, cells)
        assert len(list(tmp_path.glob("call-*"))) == 6

    def test_journal_requires_experiment_id(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(resilience=self._policy(tmp_path))

    def test_keyboard_interrupt_flushes_journal(self, tmp_path):
        policy = self._policy(tmp_path)
        runner = SweepRunner(experiment_id="interrupt",
                             resilience=policy)
        with pytest.raises(KeyboardInterrupt):
            runner.map(interrupting_cell, [{"x": i} for i in range(5)])
        journal = journal_for("interrupt", policy.journal_dir)
        assert len(journal.completed) == 2  # cells 0 and 1 survived


# -- crash capsules and replay ------------------------------------------------


class TestCrashCapsules:
    def _capsule(self, tmp_path, fn=poison_cell, kwargs=None):
        failure = CellFailure("caps", 3, {"x": 3}, "exception",
                              "ValueError", "poison 3", 2,
                              traceback="Traceback...")
        capsule = CrashCapsule.from_failure(
            fn, kwargs if kwargs is not None else {"x": 3}, failure,
            cell_key="abcdef1234567890", fingerprint="fp")
        return capsule.write(tmp_path / "c.capsule.json")

    def test_roundtrip_preserves_kwargs_exactly(self, tmp_path):
        kwargs = {"x": 3, "arr": np.arange(4), "seed": 7}
        path = self._capsule(tmp_path, kwargs=kwargs)
        loaded = CrashCapsule.load(path)
        assert loaded.fn.endswith(":poison_cell")
        assert loaded.seed == 7
        np.testing.assert_array_equal(loaded.kwargs["arr"],
                                      np.arange(4))

    def test_version_gate(self, tmp_path):
        path = self._capsule(tmp_path)
        data = json.loads(path.read_text())
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            CrashCapsule.load(path)

    def test_replay_reproduces_original_failure(self, tmp_path):
        path = self._capsule(tmp_path)
        outcome = replay_capsule(path)
        assert outcome.reproduced
        assert outcome.error_type == "ValueError"
        assert "poison 3" in outcome.error_message
        assert "poison 3" in outcome.traceback
        assert outcome.matches_original

    def test_replay_detects_nonreproducing_failure(self, tmp_path):
        path = self._capsule(tmp_path, fn=square, kwargs={"x": 3})
        outcome = replay_capsule(path)
        assert not outcome.reproduced
        assert outcome.value == 9
        assert not outcome.matches_original

    def test_sweep_writes_replayable_capsule(self, tmp_path):
        policy = ResiliencePolicy(max_retries=0,
                                  capsule_dir=tmp_path / "capsules")
        runner = SweepRunner(experiment_id="caps", resilience=policy)
        result = runner.map(poison_cell, [{"x": i} for i in range(5)])
        [failure] = collect_failures(result)
        assert failure.capsule_path is not None
        outcome = replay_capsule(failure.capsule_path)
        assert outcome.matches_original
        assert outcome.capsule.params == {"x": 3}


# -- cache hardening ----------------------------------------------------------


class TestStaleTmpReaping:
    def test_old_tmp_files_removed(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("exp", {"x": 1}, "value")
        stale = tmp_path / "exp" / "deadbeef.pkl.tmp"
        stale.write_bytes(b"partial write from a dead process")
        assert cache.reap_stale_tmp(max_age_s=0.0) == 1
        assert not stale.exists()
        assert cache.stats.stale_tmp_reaped == 1
        # The real entry is untouched.
        assert cache.get("exp", {"x": 1}) == (True, "value")

    def test_fresh_tmp_files_kept(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        fresh = tmp_path / "live.pkl.tmp"
        fresh.write_bytes(b"a concurrent writer owns this")
        assert cache.reap_stale_tmp(max_age_s=3600.0) == 0
        assert fresh.exists()


# -- CLI ----------------------------------------------------------------------


class TestCLI:
    def test_run_resume_and_replay(self, tmp_path, monkeypatch,
                                   capsys):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "ext_faults", "--resume",
                     "--cell-retries", "1"]) == 0
        # Journal appends go to a per-process shard (base name plus
        # -<host>-<pid>) so concurrent writers never share a file.
        journals = list((tmp_path / "journals").glob(
            "ext_fault_resilience.journal*.jsonl"))
        assert journals
        capsys.readouterr()
        assert main(["run", "ext_faults", "--resume"]) == 0
        # Second run served entirely from the journal: near-instant.
        out = capsys.readouterr().out
        assert "ext_faults took 0." in out

    def test_replay_missing_capsule_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main
        missing = tmp_path / "nope.capsule.json"
        assert main(["replay", str(missing)]) == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_replay_reports_reproduction(self, tmp_path, capsys):
        from repro.__main__ import main
        failure = CellFailure("cli", 0, {"x": 3}, "exception",
                              "ValueError", "poison 3", 1)
        capsule = CrashCapsule.from_failure(
            poison_cell, {"x": 3}, failure, cell_key="feedface0000",
            fingerprint="fp")
        path = capsule.write(tmp_path / "cli.capsule.json")
        assert main(["replay", str(path)]) == 1
        out = capsys.readouterr().out
        assert "matches the original failure" in out
