"""JitterProcess: determinism, bounds, and growth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fluid.jitter import JitterProcess, no_jitter


class TestNoJitter:
    def test_always_zero(self):
        for t in (-1.0, 0.0, 0.5, 100.0):
            assert no_jitter(t) == 0.0


class TestJitterProcess:
    def test_within_amplitude(self):
        jitter = JitterProcess(100e-6, seed=1)
        samples = [jitter(t * 10e-6) for t in range(1000)]
        assert min(samples) >= 0.0
        assert max(samples) <= 100e-6

    def test_piecewise_constant_within_interval(self):
        jitter = JitterProcess(100e-6, resample_interval=10e-6, seed=2)
        assert jitter(20e-6) == jitter(29.9e-6)

    def test_changes_across_intervals(self):
        jitter = JitterProcess(100e-6, resample_interval=10e-6, seed=2)
        values = {jitter(i * 10e-6 + 1e-6) for i in range(50)}
        assert len(values) > 10  # genuinely random per interval

    def test_deterministic_given_seed(self):
        a = JitterProcess(50e-6, seed=7)
        b = JitterProcess(50e-6, seed=7)
        times = np.linspace(0, 1e-3, 100)
        assert [a(t) for t in times] == [b(t) for t in times]

    def test_independent_of_call_order(self):
        """Values derive from the interval index, so evaluation order
        (which RK steppers scramble) cannot change the process."""
        forward = JitterProcess(50e-6, seed=3)
        backward = JitterProcess(50e-6, seed=3)
        times = [i * 10e-6 for i in range(200)]
        values_fwd = [forward(t) for t in times]
        values_bwd = [backward(t) for t in reversed(times)]
        assert values_fwd == list(reversed(values_bwd))

    def test_negative_times_use_first_sample(self):
        jitter = JitterProcess(50e-6, seed=4)
        assert jitter(-1.0) == jitter(0.0)

    def test_table_extends_arbitrarily_far(self):
        jitter = JitterProcess(50e-6, resample_interval=10e-6, seed=5)
        assert 0.0 <= jitter(10.0) <= 50e-6  # one million intervals in

    def test_zero_amplitude_is_zero(self):
        jitter = JitterProcess(0.0, seed=6)
        assert jitter(0.5) == 0.0
        assert jitter(5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            JitterProcess(-1e-6)
        with pytest.raises(ValueError):
            JitterProcess(1e-6, resample_interval=0.0)

    @given(st.floats(min_value=1e-7, max_value=1e-3),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_bounds_property(self, amplitude, seed):
        jitter = JitterProcess(amplitude, seed=seed)
        for t in (0.0, 1e-4, 1e-2, 1.0):
            value = jitter(t)
            assert 0.0 <= value <= amplitude
