"""Chaos tests for the distributed sweep backend.

Every failure mode the queue protocol claims to survive is induced
on purpose: workers SIGKILLed mid-lease (the cell is re-leased and
completed by a peer), stale leases from clock-skewed workers (mtime,
not embedded timestamps, decides staleness), poison cells that
exhaust their cross-worker steal budget (quarantined globally,
in-queue), and coordinators with no live workers (graceful fallback
to local execution instead of a hang).  The meta-contract throughout:
whatever chaos happens, the surviving results are bit-identical to a
serial run.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.perf import (InProcessBackend, PoolBackend, QueueBackend,
                        QueueWorker, ResiliencePolicy, SweepJournal,
                        SweepRunner, is_failure, journal_for,
                        resolve_backend, spawn_worker, use_backend)
from repro.perf.backend import (TASK_VERSION, QueueLayout,
                                _atomic_write_json, _read_json,
                                default_backend, make_task,
                                steal_expired_leases)
from repro.perf.cache import code_fingerprint
from repro.perf.resilience import _qualified_name, encode_value
from repro.perf.sweep import WORKER_ENV

# -- module-level cells (resolvable by name across processes) -----------------


def square(x):
    return x * x


def seeded_draw(seed):
    """Pure function of the seed: transport nondeterminism shows up
    as inequality."""
    rng = np.random.default_rng(seed)
    return rng.random(8)


def poison_cell(x):
    if x == 3:
        raise ValueError(f"poison {x}")
    return x * 10


def kill_once_cell(x, flag_dir):
    """x == 2 SIGKILLs its worker process -- once.

    The first worker to claim the cell dies mid-lease (heartbeats
    stop, the lease expires); the flag file makes every later attempt
    succeed, so a peer completes the stolen cell.  Only fires inside
    a sweep worker process -- the pytest process is not expendable.
    """
    flag = Path(flag_dir) / f"killed-{x}"
    if x == 2 and os.environ.get(WORKER_ENV) and not flag.exists():
        flag.touch()
        import signal
        os.kill(os.getpid(), signal.SIGKILL)
    return x + 1000


@pytest.fixture(autouse=True)
def _restore_worker_env():
    """In-thread QueueWorkers set WORKER_ENV in this process; keep
    that from leaking into later tests."""
    saved = os.environ.get(WORKER_ENV)
    yield
    if saved is None:
        os.environ.pop(WORKER_ENV, None)
    else:
        os.environ[WORKER_ENV] = saved


def run_worker_thread(queue_dir, worker_id="peer", max_idle=8.0,
                      lease_ttl=10.0, poll=0.02):
    """A QueueWorker serving from a daemon thread (fast, in-process)."""
    worker = QueueWorker(queue_dir, worker_id=worker_id,
                         lease_ttl=lease_ttl, poll_interval=poll)
    thread = threading.Thread(
        target=lambda: worker.run(max_idle=max_idle), daemon=True)
    thread.start()
    return worker, thread


def stop_worker(worker, thread, timeout=15.0):
    """Ask an in-thread worker to exit now and wait for it."""
    worker._stop.set()
    thread.join(timeout=timeout)
    assert not thread.is_alive()


def age_file(path, seconds):
    """Backdate a file's mtime so its lease/registration looks stale."""
    stat = os.stat(path)
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


# -- queue layout and file protocol -------------------------------------------


class TestQueueLayout:
    def test_ensure_and_paths(self, tmp_path):
        layout = QueueLayout(tmp_path / "q").ensure()
        for directory in (layout.tasks, layout.claims, layout.results,
                          layout.workers):
            assert directory.is_dir()
        assert layout.task_path("abc").name == "abc.json"
        assert layout.task_keys() == []

    def test_task_keys_sorted(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        for key in ("bb", "aa", "cc"):
            _atomic_write_json(layout.task_path(key), {"key": key})
        assert layout.task_keys() == ["aa", "bb", "cc"]

    def test_live_workers_by_mtime(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        _atomic_write_json(layout.worker_path("fresh"), {"w": 1})
        _atomic_write_json(layout.worker_path("dead"), {"w": 2})
        age_file(layout.worker_path("dead"), 3600)
        live = layout.live_workers(ttl=60.0)
        assert "fresh" in live and "dead" not in live

    def test_live_workers_fingerprint_filter(self, tmp_path):
        # A heartbeating worker on a different checkout is live, but
        # not live-for-our-purposes: it will never claim our tasks.
        layout = QueueLayout(tmp_path).ensure()
        _atomic_write_json(layout.worker_path("ours"),
                           {"fingerprint": "fp-a"})
        _atomic_write_json(layout.worker_path("theirs"),
                           {"fingerprint": "fp-b"})
        _atomic_write_json(layout.worker_path("legacy"), {"w": 3})
        assert set(layout.live_workers(ttl=60.0)) == \
            {"ours", "theirs", "legacy"}
        assert set(layout.live_workers(ttl=60.0,
                                       fingerprint="fp-a")) == \
            {"ours"}

    def test_read_json_tolerates_garbage(self, tmp_path):
        target = tmp_path / "torn.json"
        target.write_text('{"half": ')
        assert _read_json(target) is None
        assert _read_json(tmp_path / "missing.json") is None

    def test_claim_is_atomic_rename(self, tmp_path):
        # Exactly one renamer wins; the loser gets FileNotFoundError.
        layout = QueueLayout(tmp_path).ensure()
        _atomic_write_json(layout.task_path("k"), {"key": "k"})
        os.rename(layout.task_path("k"), layout.claim_path("k"))
        with pytest.raises(FileNotFoundError):
            os.rename(layout.task_path("k"),
                      tmp_path / "claims" / "k2.json")


# -- lease expiry and stealing ------------------------------------------------


def make_claim(layout, key, steals=0, max_steals=3, **extra):
    task = make_task("exp", 0, key, _qualified_name(square),
                     {"x": 1}, code_fingerprint(), max_attempts=1,
                     max_steals=max_steals)
    task["steals"] = steals
    task.update(extra)
    _atomic_write_json(layout.claim_path(key), task)
    return task


class TestLeaseStealing:
    def test_fresh_lease_not_stolen(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        make_claim(layout, "k")
        assert steal_expired_leases(layout, lease_ttl=60.0) == (0, 0)
        assert layout.claim_path("k").exists()
        assert not layout.task_path("k").exists()

    def test_expired_lease_requeued_with_steal_count(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        make_claim(layout, "k", worker="dead-worker")
        age_file(layout.claim_path("k"), 3600)
        assert steal_expired_leases(layout, lease_ttl=60.0) == (1, 0)
        assert not layout.claim_path("k").exists()
        task = _read_json(layout.task_path("k"))
        assert task["steals"] == 1
        # Lease bookkeeping is stripped before re-queue.
        assert "worker" not in task and "beats" not in task

    def test_clock_skewed_worker_cannot_fake_freshness(self, tmp_path):
        # A worker whose wall clock is hours off writes whatever
        # timestamps it likes *inside* the claim -- staleness is
        # decided by the file mtime, which the filesystem stamps.
        layout = QueueLayout(tmp_path).ensure()
        make_claim(layout, "skewed", claimed_ts=time.time() + 7200)
        assert steal_expired_leases(layout, lease_ttl=60.0) == (0, 0)
        assert layout.claim_path("skewed").exists()
        # And symmetrically: an mtime-stale lease is stolen no matter
        # how fresh its embedded timestamps claim to be.
        make_claim(layout, "stale", claimed_ts=time.time() + 7200)
        age_file(layout.claim_path("stale"), 3600)
        assert steal_expired_leases(layout, lease_ttl=60.0) == (1, 0)

    def test_steal_budget_exhaustion_quarantines_in_queue(
            self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        make_claim(layout, "poison", steals=3, max_steals=3)
        age_file(layout.claim_path("poison"), 3600)
        stolen, quarantined = steal_expired_leases(layout, 60.0)
        assert (stolen, quarantined) == (0, 1)
        result = _read_json(layout.result_path("poison",
                                               code_fingerprint()))
        assert result["ok"] is False
        assert result["kind"] == "worker-lost"
        assert result["steals"] == 4
        assert not layout.task_path("poison").exists()


# -- the worker loop ----------------------------------------------------------


class TestQueueWorker:
    def enqueue(self, layout, key, fn, kwargs, max_attempts=1,
                fingerprint=None):
        task = make_task("exp", 0, key, _qualified_name(fn), kwargs,
                         fingerprint or code_fingerprint(),
                         max_attempts=max_attempts, max_steals=3)
        _atomic_write_json(layout.task_path(key), task)
        return task

    def test_step_executes_and_parks_result(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        self.enqueue(layout, "k1", square, {"x": 7})
        worker = QueueWorker(tmp_path, worker_id="w")
        assert worker.step() is True
        result = _read_json(layout.result_path("k1",
                                               code_fingerprint()))
        assert result["ok"] is True
        assert result["worker"] == "w"
        from repro.perf.resilience import decode_value
        assert decode_value(result["value"]) == 49
        # The lease is gone and nothing is left to claim.
        assert not layout.claim_path("k1").exists()
        assert worker.step() is False

    def test_failing_cell_requeued_then_terminal(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        self.enqueue(layout, "k3", poison_cell, {"x": 3},
                     max_attempts=2)
        worker = QueueWorker(tmp_path, worker_id="w")
        assert worker.step() is True  # attempt 1: re-queued
        task = _read_json(layout.task_path("k3"))
        assert task["attempts"] == 1
        assert worker.step() is True  # attempt 2: terminal
        result = _read_json(layout.result_path("k3",
                                               code_fingerprint()))
        assert result["ok"] is False
        assert result["error_type"] == "ValueError"
        assert "poison 3" in result["error_message"]
        assert "error_pickle" in result

    def test_foreign_fingerprint_left_alone(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        self.enqueue(layout, "kf", square, {"x": 1},
                     fingerprint="someone-elses-code")
        worker = QueueWorker(tmp_path, worker_id="w")
        assert worker.step() is False
        assert layout.task_path("kf").exists()

    def test_registration_advertises_fingerprint(self, tmp_path):
        # Coordinators only count fingerprint-compatible workers
        # when deciding whether anyone can serve their tasks.
        layout = QueueLayout(tmp_path).ensure()
        worker = QueueWorker(tmp_path, worker_id="w")
        worker.register()
        payload = _read_json(layout.worker_path("w"))
        assert payload["fingerprint"] == code_fingerprint()
        assert "w" in layout.live_workers(
            ttl=60.0, fingerprint=code_fingerprint())
        assert "w" not in layout.live_workers(
            ttl=60.0, fingerprint="someone-elses-code")

    def test_claim_of_stale_task_gets_fresh_lease(self, tmp_path,
                                                  monkeypatch):
        # rename preserves mtime, and lease age is mtime age: a task
        # that sat queued longer than lease_ttl must not become a
        # claim that is already expired (a stealer would re-queue it
        # while we execute, double-counting steals).  The leased
        # rewrite normally refreshes the mtime too -- no-op it to
        # prove the claim is fresh from the rename itself.
        layout = QueueLayout(tmp_path).ensure()
        self.enqueue(layout, "old", square, {"x": 2})
        age_file(layout.task_path("old"), 3600)
        monkeypatch.setattr("repro.perf.worker._atomic_write_json",
                            lambda *args, **kwargs: None)
        worker = QueueWorker(tmp_path, worker_id="w")
        assert worker._claim() is not None
        assert steal_expired_leases(layout, lease_ttl=60.0) == (0, 0)
        assert layout.claim_path("old").exists()

    def test_release_skips_withdrawn_claim(self, tmp_path):
        # The coordinator withdrew the sweep (Ctrl-C) while we held
        # the lease: releasing must not resurrect an orphan task no
        # coordinator will ever consume.
        layout = QueueLayout(tmp_path).ensure()
        self.enqueue(layout, "kw", square, {"x": 2})
        worker = QueueWorker(tmp_path, worker_id="w")
        claim_path, task = worker._claim()
        os.unlink(claim_path)  # the withdrawal
        worker._release(claim_path, task)
        assert not layout.task_path("kw").exists()
        assert not layout.claim_path("kw").exists()

    def test_release_requeues_held_claim(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        self.enqueue(layout, "kr", square, {"x": 2})
        worker = QueueWorker(tmp_path, worker_id="w")
        claim_path, task = worker._claim()
        worker._release(claim_path, task)
        assert layout.task_path("kr").exists()
        assert not layout.claim_path("kr").exists()
        # The released cell is claimable again.
        assert worker.step() is True

    def test_run_registers_heartbeats_and_deregisters(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        worker = QueueWorker(tmp_path, worker_id="hb",
                             heartbeat_interval=0.05,
                             poll_interval=0.02)
        thread = threading.Thread(
            target=lambda: worker.run(max_idle=0.5), daemon=True)
        thread.start()
        deadline = time.time() + 5.0
        seen = False
        while time.time() < deadline and not seen:
            seen = "hb" in layout.live_workers(ttl=10.0)
            time.sleep(0.02)
        assert seen, "worker never registered"
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert "hb" not in layout.live_workers(ttl=10.0)
        assert worker._beats >= 1

    def test_idle_worker_steals_expired_peer_lease(self, tmp_path):
        layout = QueueLayout(tmp_path).ensure()
        make_claim(layout, "orphan", worker="dead-peer")
        age_file(layout.claim_path("orphan"), 3600)
        worker = QueueWorker(tmp_path, worker_id="scavenger",
                             lease_ttl=60.0, poll_interval=0.02)
        worker.run(max_idle=1.0)
        assert worker.stolen == 1
        # The stolen cell went back to tasks/ and was then claimed
        # and completed by this same worker.
        result = _read_json(layout.result_path("orphan",
                                               code_fingerprint()))
        assert result is not None and result["ok"] is True


# -- the coordinator ----------------------------------------------------------


class TestQueueBackend:
    def serial_rows(self):
        runner = SweepRunner(experiment_id="qtest")
        return runner.map(seeded_draw, [{"seed": s}
                                        for s in (11, 22, 33)])

    def queue_rows(self, tmp_path, policy=None, **backend_kwargs):
        backend_kwargs.setdefault("worker_grace", 30.0)
        backend_kwargs.setdefault("poll_interval", 0.02)
        backend = QueueBackend(tmp_path / "q", **backend_kwargs)
        worker, thread = run_worker_thread(tmp_path / "q")
        runner = SweepRunner(experiment_id="qtest",
                             resilience=policy, backend=backend)
        try:
            return runner.map(seeded_draw, [{"seed": s}
                                            for s in (11, 22, 33)])
        finally:
            stop_worker(worker, thread)

    def test_bit_identical_to_serial(self, tmp_path):
        serial = self.serial_rows()
        queued = self.queue_rows(tmp_path)
        assert all(np.array_equal(a, b)
                   for a, b in zip(serial, queued))

    def test_queue_is_drained_after_sweep(self, tmp_path):
        self.queue_rows(tmp_path)
        layout = QueueLayout(tmp_path / "q")
        assert layout.task_keys() == []
        assert layout.claim_keys() == []
        assert list(layout.results.glob("*.json")) == []

    def test_no_policy_reraises_original_exception(self, tmp_path):
        backend = QueueBackend(tmp_path / "q", worker_grace=30.0,
                               poll_interval=0.02)
        worker, thread = run_worker_thread(tmp_path / "q")
        runner = SweepRunner(experiment_id="qpoison", backend=backend)
        try:
            with pytest.raises(ValueError, match="poison 3"):
                runner.map(poison_cell, [{"x": x} for x in (1, 3)])
        finally:
            stop_worker(worker, thread)

    def test_policy_quarantines_as_cell_failure(self, tmp_path):
        policy = ResiliencePolicy(max_retries=1, write_capsules=False,
                                  backoff_base=0.0)
        results = self.queue_poison(tmp_path, policy)
        assert results[0] == 10 and results[2] == 40
        failure = results[1]
        assert is_failure(failure)
        assert failure.kind == "exception"
        assert failure.error_type == "ValueError"
        # One initial attempt + one retry, counted across workers.
        assert failure.attempts >= 2

    def queue_poison(self, tmp_path, policy):
        backend = QueueBackend(tmp_path / "q", worker_grace=30.0,
                               poll_interval=0.02)
        worker, thread = run_worker_thread(tmp_path / "q")
        runner = SweepRunner(experiment_id="qpoison",
                             resilience=policy, backend=backend)
        try:
            return runner.map(poison_cell,
                              [{"x": x} for x in (1, 3, 4)])
        finally:
            stop_worker(worker, thread)

    def test_fallback_when_no_worker_ever_claims(self, tmp_path,
                                                 recwarn):
        backend = QueueBackend(tmp_path / "q", worker_grace=0.2,
                               poll_interval=0.02)
        runner = SweepRunner(experiment_id="qfall", backend=backend)
        results = runner.map(square, [{"x": x} for x in (2, 3)])
        assert results == [4, 9]
        assert any("no live workers" in str(w.message)
                   for w in recwarn.list)
        # The withdrawn tasks are not left behind for later sweeps.
        assert QueueLayout(tmp_path / "q").task_keys() == []

    def test_stale_parked_result_discarded(self, tmp_path):
        # Junk parked in our own fingerprint namespace (here: the
        # payload's embedded fingerprint doesn't match the filename's)
        # must be recomputed, not trusted.
        queue = tmp_path / "q"
        layout = QueueLayout(queue).ensure()
        runner = SweepRunner(experiment_id="qstale")
        key = runner._cell_key(square, {"x": 5})
        _atomic_write_json(layout.result_path(key,
                                              code_fingerprint()), {
            "version": TASK_VERSION, "ok": True, "key": key,
            "experiment": "qstale", "fingerprint": "stale-code",
            "value": encode_value(999), "elapsed_s": 0.0,
            "attempts": 0, "steals": 0, "worker": "old", "ts": 0.0})
        backend = QueueBackend(queue, worker_grace=30.0,
                               poll_interval=0.02)
        worker, thread = run_worker_thread(queue)
        runner = SweepRunner(experiment_id="qstale", backend=backend)
        try:
            assert runner.map(square, [{"x": 5}]) == [25]
        finally:
            stop_worker(worker, thread)

    def test_foreign_coordinator_result_left_alone(self, tmp_path):
        # Two coordinators on different code versions sharing one
        # queue: ours must not destroy (or consume) the other's
        # parked result for the same cell key -- results are
        # namespaced by fingerprint.
        queue = tmp_path / "q"
        layout = QueueLayout(queue).ensure()
        runner = SweepRunner(experiment_id="qshare")
        key = runner._cell_key(square, {"x": 5})
        foreign = layout.result_path(key, "foreign-code")
        _atomic_write_json(foreign, {
            "version": TASK_VERSION, "ok": True, "key": key,
            "experiment": "qshare", "fingerprint": "foreign-code",
            "value": encode_value(999), "elapsed_s": 0.0,
            "attempts": 0, "steals": 0, "worker": "other", "ts": 0.0})
        backend = QueueBackend(queue, worker_grace=30.0,
                               poll_interval=0.02)
        worker, thread = run_worker_thread(queue)
        runner = SweepRunner(experiment_id="qshare", backend=backend)
        try:
            assert runner.map(square, [{"x": 5}]) == [25]
        finally:
            stop_worker(worker, thread)
        # The foreign coordinator can still consume its own result.
        assert _read_json(foreign)["fingerprint"] == "foreign-code"

    def test_fallback_despite_incompatible_live_workers(
            self, tmp_path, recwarn):
        # The version-skew scenario: a heartbeating fleet on another
        # checkout must not hold off the grace fallback forever --
        # those workers skip our tasks, so they don't count as live
        # for our purposes.
        layout = QueueLayout(tmp_path / "q").ensure()
        _atomic_write_json(layout.worker_path("skewed"),
                           {"worker": "skewed",
                            "fingerprint": "someone-elses-code"})
        backend = QueueBackend(tmp_path / "q", worker_grace=0.2,
                               poll_interval=0.02)
        runner = SweepRunner(experiment_id="qforeign",
                             backend=backend)
        assert runner.map(square, [{"x": 6}]) == [36]
        assert any("no live workers" in str(w.message)
                   for w in recwarn.list)
        assert layout.task_keys() == []

    def test_ambient_default_backend(self, tmp_path):
        assert default_backend() is None
        backend = InProcessBackend()
        with use_backend(backend):
            assert default_backend() is backend
            runner = SweepRunner(experiment_id="ambient")
            assert runner._effective_backend() is backend
        assert default_backend() is None

    def test_resolve_backend_specs(self, tmp_path):
        assert resolve_backend(None) is None
        assert resolve_backend("auto") is None
        assert isinstance(resolve_backend("inprocess"),
                          InProcessBackend)
        assert isinstance(resolve_backend("pool"), PoolBackend)
        queue = resolve_backend("queue", queue_dir=tmp_path)
        assert isinstance(queue, QueueBackend)
        with pytest.raises(ValueError, match="--queue-dir"):
            resolve_backend("queue")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("carrier-pigeon")


# -- cross-process chaos ------------------------------------------------------


def _tests_on_pythonpath(monkeypatch):
    """Let spawned workers import this test module by name."""
    tests_dir = str(Path(__file__).parent)
    existing = os.environ.get("PYTHONPATH")
    monkeypatch.setenv(
        "PYTHONPATH",
        tests_dir if not existing
        else os.pathsep.join([tests_dir, existing]))


class TestSubprocessChaos:
    def test_sigkilled_worker_cell_completed_by_peer(
            self, tmp_path, monkeypatch):
        """The tentpole guarantee: SIGKILL mid-lease loses nothing.

        Two real worker processes drain the queue; the first to claim
        x == 2 SIGKILLs itself mid-cell.  Its lease stops
        heartbeating, expires after lease_ttl, and the peer steals
        and completes the cell.  The sweep's results are identical to
        serial and record at least one steal.
        """
        _tests_on_pythonpath(monkeypatch)
        queue = tmp_path / "q"
        flags = tmp_path / "flags"
        flags.mkdir()
        cells = [{"x": x, "flag_dir": str(flags)} for x in (1, 2, 3)]
        serial = [x + 1000 for x in (1, 2, 3)]

        procs = [spawn_worker(queue, lease_ttl=1.0, max_idle=20.0,
                              worker_id=f"chaos-{i}")
                 for i in range(2)]
        backend = QueueBackend(queue, lease_ttl=1.0,
                               worker_grace=60.0, poll_interval=0.05)
        runner = SweepRunner(experiment_id="chaos", backend=backend)
        try:
            results = runner.map(kill_once_cell, cells)
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=30)
        assert results == serial
        assert (flags / "killed-2").exists(), \
            "the chaos cell never fired -- the test proved nothing"

    def test_worker_cli_exits_on_max_idle(self, tmp_path):
        from repro.__main__ import main
        queue = tmp_path / "q"
        QueueLayout(queue).ensure()
        assert main(["worker", str(queue), "--max-idle", "0.3",
                     "--worker-id", "cli-test"]) == 0


# -- journal shards -----------------------------------------------------------


class TestJournalShards:
    def test_shard_write_path(self, tmp_path):
        base = tmp_path / "exp.journal.jsonl"
        journal = SweepJournal(base, fingerprint="fp", shard="h-1")
        journal.record_cell("exp", "k1", 41, 1, 0.0)
        journal.close()
        assert not base.exists()
        assert (tmp_path / "exp.journal-h-1.jsonl").exists()

    def test_reads_merge_all_shards(self, tmp_path):
        base = tmp_path / "exp.journal.jsonl"
        for shard, key, value in (("a", "k1", 1), ("b", "k2", 2)):
            journal = SweepJournal(base, fingerprint="fp",
                                   shard=shard)
            journal.record_cell("exp", key, value, 1, 0.0)
            journal.close()
        # An unsharded reader -- and any third shard -- sees the union.
        merged = SweepJournal(base, fingerprint="fp")
        assert merged.lookup("k1") == (True, 1)
        assert merged.lookup("k2") == (True, 2)
        third = SweepJournal(base, fingerprint="fp", shard="c")
        assert third.lookup("k1") == (True, 1)

    def test_journal_for_shard(self, tmp_path):
        journal = journal_for("exp", tmp_path, fingerprint="fp",
                              shard="w1")
        journal.record_cell("exp", "k", "v", 1, 0.0)
        journal.close()
        assert (tmp_path / "exp.journal-w1.jsonl").exists()

    def test_torn_shard_tail_tolerated(self, tmp_path):
        base = tmp_path / "exp.journal.jsonl"
        journal = SweepJournal(base, fingerprint="fp", shard="a")
        journal.record_cell("exp", "k1", 7, 1, 0.0)
        journal.close()
        shard_path = tmp_path / "exp.journal-a.jsonl"
        with open(shard_path, "a", encoding="utf-8") as stream:
            stream.write('{"version": 1, "type": "cell_do')
        merged = SweepJournal(base, fingerprint="fp")
        assert merged.lookup("k1") == (True, 7)
        assert merged.torn_lines == 1

    def test_resumed_sweep_merges_other_shards(self, tmp_path):
        """A resumed run (fresh pid => fresh shard) must see cells
        journaled by any earlier process."""
        policy = ResiliencePolicy(journal_dir=tmp_path,
                                  write_capsules=False)
        runner = SweepRunner(experiment_id="shardres",
                             resilience=policy)
        first = runner.map(square, [{"x": x} for x in (1, 2, 3)])
        runner.journal.close()
        # Simulate another process: move the (compacted) journal
        # into a foreign shard, as a peer's appends would appear.
        base = tmp_path / "shardres.journal.jsonl"
        base.rename(tmp_path / "shardres.journal-otherhost-1.jsonl")
        resumed_runner = SweepRunner(experiment_id="shardres",
                                     resilience=policy)
        resumed = resumed_runner.map(
            square, [{"x": x} for x in (1, 2, 3)])
        assert resumed == first
        assert resumed_runner.journal.completed  # served from merge

    def test_sweep_completion_compacts_shards(self, tmp_path):
        """A finished sweep folds its per-process shard into the
        base journal; long-lived experiments don't accumulate one
        shard file per run ever executed."""
        policy = ResiliencePolicy(journal_dir=tmp_path,
                                  write_capsules=False)
        runner = SweepRunner(experiment_id="cmpact",
                             resilience=policy)
        runner.map(square, [{"x": x} for x in (1, 2)])
        assert (tmp_path / "cmpact.journal.jsonl").exists()
        assert list(tmp_path.glob("cmpact.journal-*.jsonl")) == []
        # The compacted journal still resumes every cell.
        resumed = SweepRunner(experiment_id="cmpact",
                              resilience=policy)
        assert resumed.map(square, [{"x": x} for x in (1, 2)]) \
            == [1, 4]

    def test_compact_merges_and_unlinks_shards(self, tmp_path):
        base = tmp_path / "exp.journal.jsonl"
        for shard, key, value in (("a", "k1", 1), ("b", "k2", 2)):
            journal = SweepJournal(base, fingerprint="fp",
                                   shard=shard)
            journal.record_cell("exp", key, value, 1, 0.0)
            journal.close()
        journal = SweepJournal(base, fingerprint="fp", shard="c")
        journal.record_cell("exp", "k3", 3, 1, 0.0)
        assert journal.compact() == 3
        assert base.exists()
        assert list(tmp_path.glob("exp.journal-*.jsonl")) == []
        merged = SweepJournal(base, fingerprint="fp")
        for key, value in (("k1", 1), ("k2", 2), ("k3", 3)):
            assert merged.lookup(key) == (True, value)

    def test_compact_drops_foreign_fingerprints(self, tmp_path):
        # Orphaned entries (stale code) are garbage-collected by
        # compaction, exactly like cache invalidation.
        base = tmp_path / "exp.journal.jsonl"
        old = SweepJournal(base, fingerprint="old", shard="a")
        old.record_cell("exp", "k-old", 1, 1, 0.0)
        old.close()
        new = SweepJournal(base, fingerprint="new", shard="b")
        new.record_cell("exp", "k-new", 2, 1, 0.0)
        new.compact()
        reloaded = SweepJournal(base, fingerprint="new")
        assert reloaded.lookup("k-new") == (True, 2)
        assert reloaded.stale_entries == 0

    def test_compact_without_shards_is_noop(self, tmp_path):
        base = tmp_path / "exp.journal.jsonl"
        journal = SweepJournal(base, fingerprint="fp")
        journal.record_cell("exp", "k", 1, 1, 0.0)
        assert journal.compact() == 0
        assert SweepJournal(base,
                            fingerprint="fp").lookup("k") == (True, 1)


# -- telemetry surfaces -------------------------------------------------------


class TestWorkerEvents:
    def test_runlog_worker_event(self, tmp_path):
        from repro.obs.runlog import (RUNLOG_VERSION, RunLog,
                                      read_events, validate_events)
        assert RUNLOG_VERSION == 7
        path = tmp_path / "log.jsonl"
        with RunLog(path, run_id="r1") as log:
            log.start("exp", params_hash="abc")
            log.worker("cell_claimed", worker="w0", key="k")
            with pytest.raises(ValueError, match="missing fields"):
                log.emit("worker", worker="w0")  # no event field
            log.finish()
        events = read_events(path)
        assert validate_events(events) == []
        assert events[1]["type"] == "worker"
        assert events[1]["event"] == "cell_claimed"

    def test_watch_state_folds_worker_health(self):
        from repro.obs.live import WatchState, render_dashboard
        state = WatchState()
        state.apply({"type": "run_start", "run_id": "r",
                     "experiment": "exp", "ts": 1.0})
        state.apply({"type": "worker", "event": "worker_seen",
                     "worker": "host-1", "ts": 2.0})
        state.apply({"type": "worker", "event": "cell_completed",
                     "worker": "host-1", "ts": 3.0})
        state.apply({"type": "worker", "event": "cell_stolen",
                     "worker": "coordinator",
                     "previous_holder": "host-2", "ts": 4.0})
        assert state.workers["host-1"]["completed"] == 1
        assert state.workers["host-2"]["status"] == "lost"
        assert state.cells_stolen == 1
        board = render_dashboard(state, now=5.0)
        assert "workers:" in board
        assert "host-1" in board
        assert "1 cell(s) re-leased" in board

    def test_queue_sweep_emits_worker_events(self, tmp_path):
        from repro.obs import Telemetry
        from repro.obs.runlog import read_events
        queue = tmp_path / "q"
        backend = QueueBackend(queue, worker_grace=30.0,
                               poll_interval=0.02)
        worker, thread = run_worker_thread(queue)
        telemetry = Telemetry(tmp_path / "obs", experiment="qtel")
        runner = SweepRunner(experiment_id="qtel", backend=backend)
        try:
            with telemetry.activate():
                runner.map(square, [{"x": 4}])
        finally:
            stop_worker(worker, thread)
        events = read_events(telemetry.runlog_path)
        kinds = {e.get("event") for e in events
                 if e["type"] == "worker"}
        assert "cell_completed" in kinds


# -- CLI integration ----------------------------------------------------------


class TestBackendCLI:
    def test_queue_without_queue_dir_exits_2(self, capsys):
        from repro.__main__ import main
        assert main(["run", "ext_stability_map",
                     "--backend", "queue"]) == 2
        assert "--queue-dir" in capsys.readouterr().err

    def test_run_installs_ambient_backend(self, capsys, monkeypatch):
        # --backend reaches SweepRunners the experiment builds
        # internally, without the experiment taking a parameter.
        from repro.__main__ import main
        from repro.experiments.registry import EXPERIMENTS, Experiment
        seen = {}

        def fake_run():
            seen["backend"] = default_backend()
            runner = SweepRunner(experiment_id="fake")
            return runner.map(square, [{"x": 2}])

        fake = Experiment("fake", "a fake experiment", fake_run,
                          lambda rows: f"rows={rows}")
        monkeypatch.setitem(EXPERIMENTS, "fake", fake)
        assert main(["run", "fake", "--backend", "inprocess"]) == 0
        assert isinstance(seen["backend"], InProcessBackend)
        assert "rows=[4]" in capsys.readouterr().out
        # And the default is restored once the CLI returns.
        assert default_backend() is None

    def test_parser_accepts_backend_flags(self):
        from repro.__main__ import build_parser
        args = build_parser().parse_args(
            ["run", "fig14", "--backend", "queue",
             "--queue-dir", "/shared/q", "--lease-ttl", "5",
             "--worker-grace", "12"])
        assert args.backend == "queue"
        assert args.queue_dir == "/shared/q"
        assert args.lease_ttl == 5.0
        assert args.worker_grace == 12.0
        args = build_parser().parse_args(
            ["worker", "/shared/q", "--max-idle", "3",
             "--max-cells", "7"])
        assert args.queue_dir == "/shared/q"
        assert args.max_idle == 3.0
        assert args.max_cells == 7
