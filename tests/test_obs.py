"""The telemetry layer: metrics, spans, run logs, and the wiring.

Covers the :mod:`repro.obs` primitives themselves plus the two
system-level guarantees the package makes:

* **Correct plumbing** -- a run under ``Telemetry.activate`` produces
  a schema-valid JSONL log, a coherent metrics snapshot, and the
  Prometheus/CSV exports.
* **Zero overhead when off** -- instrumented hot paths interact with
  the registry O(1) times per run (never per event), and with no
  telemetry active the shared null registry absorbs everything.
"""

import json
import math
import warnings

import numpy as np
import pytest

from repro.obs import (NULL_REGISTRY, MetricsRegistry, NullRegistry,
                       RunLog, SpanRecorder, Telemetry, current,
                       format_span_tree, get_registry, read_events,
                       sanitize, scrape_network, use_registry,
                       validate_file)
from repro.obs import spans as spans_module
from repro.obs.export import to_csv, to_prometheus, write_exports
from repro.obs.metrics import (Counter, Gauge, Histogram, P2Quantile,
                               top_metrics)
from repro.obs.runlog import validate_events


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        est = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            est.observe(x)
        assert est.value() == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.9).value())

    def test_tracks_large_streams(self):
        rng = np.random.default_rng(7)
        samples = rng.normal(100.0, 15.0, size=20_000)
        est = P2Quantile(0.9)
        for x in samples:
            est.observe(float(x))
        exact = float(np.quantile(samples, 0.9))
        assert est.value() == pytest.approx(exact, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        assert math.isnan(gauge.value)
        gauge.inc()     # first touch treats NaN as zero
        gauge.inc(4)
        gauge.dec(2)
        assert gauge.value == 3.0
        gauge.set(-7)
        assert gauge.value == -7.0

    def test_histogram_snapshot(self):
        hist = Histogram("h")
        for x in range(1, 101):
            hist.observe(float(x))
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(5050.0)
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["quantiles"]["0.5"] == pytest.approx(50.5, rel=0.1)
        assert set(snap["quantiles"]) == {"0.5", "0.9", "0.99"}

    def test_empty_histogram_snapshot_uses_none(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert all(v is None for v in snap["quantiles"].values())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("sim.port.sw->recv.bytes")

    def test_sanitize_maps_onto_alphabet(self):
        assert sanitize("sw->recv") == "sw_recv"
        assert sanitize("  ") == "unnamed"
        registry = MetricsRegistry()
        registry.counter(f"sim.port.{sanitize('sw->recv')}.bytes")

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.gauge("a").set(1.5)
        registry.histogram("m").observe(2.0)
        snap = registry.snapshot()
        assert list(snap) == ["a", "m", "z"]
        json.dumps(snap)  # must serialize without a default=

    def test_top_metrics_orders_by_magnitude(self):
        registry = MetricsRegistry()
        registry.counter("small").inc(1)
        registry.counter("big").inc(1000)
        registry.gauge("negative").set(-500)
        ranked = [name for name, _ in
                  top_metrics(registry.snapshot())]
        assert ranked == ["big", "negative", "small"]

    def test_null_registry_is_default_and_inert(self):
        assert get_registry() is NULL_REGISTRY
        null = NullRegistry()
        instrument = null.counter("anything.goes")
        instrument.inc(5)
        instrument.observe(1.0)
        instrument.set(2.0)
        assert len(null) == 0
        assert null.snapshot() == {}

    def test_use_registry_restores_previous(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert get_registry() is registry
            get_registry().counter("inside").inc()
        assert get_registry() is NULL_REGISTRY
        assert "inside" in registry


class TestSpans:
    def test_nesting_builds_paths_and_depths(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        by_name = {r.name: r for r in recorder.records}
        assert by_name["inner"].path == "outer/inner"
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        # Children complete first but never outlast the parent.
        assert by_name["inner"].wall_s <= by_name["outer"].wall_s

    def test_module_span_is_noop_without_recorder(self):
        assert spans_module.get_recorder() is None
        with spans_module.span("ignored") as record:
            assert record is None

    def test_module_span_uses_active_recorder(self):
        recorder = SpanRecorder()
        previous = spans_module.set_recorder(recorder)
        try:
            with spans_module.span("seen"):
                pass
        finally:
            spans_module.set_recorder(previous)
        assert [r.name for r in recorder.records] == ["seen"]

    def test_format_span_tree_merges_repeats(self):
        recorder = SpanRecorder()
        with recorder.span("sweep"):
            for _ in range(3):
                with recorder.span("cell"):
                    pass
        text = format_span_tree(recorder.records)
        assert "sweep" in text
        cell_line = next(line for line in text.splitlines()
                         if "cell" in line)
        assert " 3 " in cell_line  # three calls merged to one row
        # Also accepts the dict form a run log stores.
        as_dicts = [r.as_dict() for r in recorder.records]
        assert format_span_tree(as_dicts) == text

    def test_format_span_tree_empty(self):
        assert "no spans" in format_span_tree([])


class TestRunLog:
    def test_roundtrip_and_validation(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path, "run-1")
        log.start("fig04", params_hash="abc", params={"n": 3}, seed=7)
        log.note("halfway")
        log.metrics({"c": {"type": "counter", "value": 1.0}})
        log.finish(status="ok")
        log.close()
        events = read_events(path)
        assert [e["type"] for e in events] == \
            ["run_start", "note", "metrics", "run_end"]
        assert events[0]["seed"] == 7
        assert validate_file(path) == []

    def test_sweep_and_retry_events_validate(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path, "run-1")
        log.start("fig14", params_hash="abc")
        log.sweep("cell_retry", index=3, attempt=2)
        log.retry(component="fluid.dde", t=0.004, step=4, dt=1e-3)
        log.finish(status="ok")
        log.close()
        events = read_events(path)
        assert [e["type"] for e in events] == \
            ["run_start", "sweep", "retry", "run_end"]
        assert events[1]["event"] == "cell_retry"
        assert events[2]["component"] == "fluid.dde"
        assert validate_file(path) == []

    def test_dde_halved_step_retry_emits_retry_event(self, tmp_path):
        # A stiff model under explicit euler diverges at dt and is
        # rescued at dt/2; with telemetry active the integrator must
        # leave a breadcrumb saying where and why it retried.
        from repro.core.fluid import dde
        from repro.core.fluid.base import FluidModel

        class Stiff(FluidModel):
            def initial_state(self):
                return np.array([1.0])

            def derivatives(self, t, state, history):
                return -3000.0 * state

            def state_labels(self):
                return ["x"]

        telemetry = Telemetry(tmp_path, experiment="stiff")
        with telemetry.activate():
            dde.integrate(Stiff(), t_end=0.05, dt=1e-3,
                          method="euler", max_retries=1)
        events = read_events(telemetry.runlog_path)
        retries = [e for e in events if e["type"] == "retry"]
        assert len(retries) == 1
        event = retries[0]
        assert event["component"] == "fluid.dde"
        assert event["dt"] == pytest.approx(1e-3)
        assert event["next_dt"] == pytest.approx(5e-4)
        assert event["step"] > 0
        assert event["t"] == pytest.approx(event["step"] * 1e-3,
                                           rel=1e-6)
        assert event["cause"]  # why the attempt died, human-readable
        assert validate_file(telemetry.runlog_path) == []

    def test_first_event_must_be_run_start(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl", "run-1")
        with pytest.raises(ValueError):
            log.note("too early")
        log.close()

    def test_unknown_type_and_missing_fields_rejected(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl", "run-1")
        log.start("x", params_hash="h")
        with pytest.raises(ValueError):
            log.emit("bogus_type")
        with pytest.raises(ValueError):
            log.emit("run_end")  # missing status/wall_s
        log.close()

    def test_close_marks_unfinished_run_abandoned(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path, "run-1")
        log.start("x", params_hash="h")
        log.close()
        events = read_events(path)
        assert events[-1]["type"] == "run_end"
        assert events[-1]["status"] == "abandoned"

    def test_validator_catches_truncation_and_bad_seq(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path, "run-1") as log:
            log.start("x", params_hash="h")
            log.note("still running")
        events = read_events(path)[:-1]  # drop run_end: truncated
        errors = validate_events(events)
        assert any("run_end" in e for e in errors)
        events[1]["seq"] = 99
        assert any("seq" in e for e in validate_events(events))

    def test_validator_rejects_empty(self):
        assert validate_events([]) != []

    def test_health_event_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path, "run-1") as log:
            log.start("fig05", params_hash="h")
            log.health("queue_oscillation", "critical",
                       "limit cycle", kind="limit_cycle",
                       sim_time_s=0.02)
        events = read_events(path)
        assert validate_events(events) == []
        health = events[1]
        assert health["type"] == "health"
        assert health["detector"] == "queue_oscillation"
        assert health["severity"] == "critical"

    def test_truncated_final_line_dropped_by_default(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path, "run-1") as log:
            log.start("x", params_hash="h")
            log.note("complete")
            log.finish()
        # simulate a writer killed mid-line
        with open(path, "a") as stream:
            stream.write('{"run_id": "run-1", "seq": 3, "ty')
        events = read_events(path)
        assert [e["type"] for e in events] == \
            ["run_start", "note", "run_end"]
        with pytest.raises(json.JSONDecodeError):
            read_events(path, strict=True)

    def test_malformed_midfile_line_always_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"ok": 1}\nnot json at all\n{"ok": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            read_events(path)

    def test_fsync_mode_writes_identical_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path, "run-1", fsync=True) as log:
            log.start("x", params_hash="h")
            log.note("durable")
            log.finish()
        events = read_events(path)
        assert validate_events(events) == []
        assert [e["type"] for e in events] == \
            ["run_start", "note", "run_end"]


class TestExporters:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.counter("sim.engine.events_total").inc(42)
        registry.gauge("perf.sweep.workers").set(4)
        hist = registry.histogram("perf.sweep.cell_seconds")
        hist.observe(0.5)
        hist.observe(1.5)
        return registry.snapshot()

    def test_prometheus_format(self):
        text = to_prometheus(self.snapshot())
        assert "# TYPE sim_engine_events_total counter" in text
        assert "sim_engine_events_total 42.0" in text
        assert "perf_sweep_workers 4.0" in text
        assert 'perf_sweep_cell_seconds{quantile="0.5"}' in text
        assert "perf_sweep_cell_seconds_count 2" in text
        assert "perf_sweep_cell_seconds_sum 2.0" in text

    def test_csv_format(self):
        rows = to_csv(self.snapshot()).splitlines()
        assert rows[0] == "metric,type,field,value"
        assert "sim.engine.events_total,counter,value,42.0" in rows

    def test_write_exports(self, tmp_path):
        paths = write_exports(self.snapshot(), tmp_path / "run-1")
        assert sorted(p.suffix for p in paths) == [".csv", ".prom"]
        for path in paths:
            assert path.exists() and path.stat().st_size > 0


class TestTelemetryBundle:
    def test_activate_produces_valid_artifacts(self, tmp_path):
        telemetry = Telemetry(tmp_path, experiment="demo",
                              run_id="demo-1")
        with telemetry.activate(params={"n": 2}, seed=5):
            assert current() is telemetry
            assert get_registry() is telemetry.registry
            get_registry().counter("demo.widgets_total").inc(3)
            with spans_module.span("work"):
                pass
        assert current() is None
        assert get_registry() is NULL_REGISTRY
        assert validate_file(telemetry.runlog_path) == []
        events = read_events(telemetry.runlog_path)
        assert events[0]["experiment"] == "demo"
        assert events[0]["seed"] == 5
        assert events[-1]["status"] == "ok"
        snapshot = [e for e in events if e["type"] == "metrics"][-1]
        assert snapshot["snapshot"]["demo.widgets_total"]["value"] == 3
        span_paths = [e["path"] for e in events
                      if e["type"] == "span"]
        assert "experiment:demo/work" in span_paths
        assert len(telemetry.export_paths) == 2

    def test_error_still_finalizes(self, tmp_path):
        telemetry = Telemetry(tmp_path, experiment="boom",
                              run_id="boom-1")
        with pytest.raises(RuntimeError):
            with telemetry.activate():
                raise RuntimeError("kaboom")
        assert validate_file(telemetry.runlog_path) == []
        events = read_events(telemetry.runlog_path)
        assert events[-1]["status"] == "error"
        assert "kaboom" in events[-1]["error"]
        assert get_registry() is NULL_REGISTRY

    def test_warnings_captured_and_hook_restored(self, tmp_path):
        before = warnings.showwarning
        telemetry = Telemetry(tmp_path, experiment="warn",
                              run_id="warn-1")
        with telemetry.activate():
            with warnings.catch_warnings():
                warnings.simplefilter("always")
                warnings.warn("measure twice", RuntimeWarning)
        assert warnings.showwarning is before
        messages = [e["message"] for e in
                    read_events(telemetry.runlog_path)
                    if e["type"] == "warning"]
        assert any("measure twice" in m for m in messages)

    def test_ensure_coerces_paths(self, tmp_path):
        telemetry = Telemetry.ensure(str(tmp_path), experiment="e")
        assert isinstance(telemetry, Telemetry)
        assert telemetry.experiment == "e"
        assert Telemetry.ensure(telemetry, experiment="x") is telemetry


class TestExperimentWiring:
    def test_registry_run_accepts_telemetry(self, tmp_path):
        from repro.experiments.registry import Experiment
        exp = Experiment("tele_test", "wiring test",
                         lambda n=2: n * 21, str)
        assert exp.run(telemetry=tmp_path, n=2) == 42
        logs = list(tmp_path.glob("tele_test-*.jsonl"))
        assert len(logs) == 1
        assert validate_file(logs[0]) == []
        events = read_events(logs[0])
        assert events[0]["params"] == {"n": 2}

    def test_telemetry_none_is_passthrough(self):
        from repro.experiments.registry import Experiment
        exp = Experiment("tele_off", "off test", lambda: 7, str)
        assert exp.run(telemetry=None) == 7
        assert get_registry() is NULL_REGISTRY


class TestScrape:
    def test_scrape_network_publishes_port_metrics(self):
        from repro.core.params import DCQCNParams
        from repro.sim.red import REDMarker
        from repro.sim.topology import install_flow, single_switch
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=2)
        marker = REDMarker(params.red, params.mtu_bytes, seed=3)
        net = single_switch(2, link_gbps=10, marker=marker)
        for i in range(2):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0,
                         params)
        net.sim.run(until=2e-3)
        registry = MetricsRegistry()
        ports = scrape_network(registry=registry, network=net)
        assert ports > 0
        names = registry.names()
        assert any(n.endswith(".bytes_total") for n in names)
        assert any(n.endswith(".ecn_marked_total") for n in names)
        assert any(".queue." in n for n in names)
        total = sum(registry.get(n).value for n in names
                    if n.endswith(".packets_total"))
        assert total > 0


class _SpyRegistry(MetricsRegistry):
    """Counts instrument lookups so tests can bound them."""

    def __init__(self):
        super().__init__()
        self.lookups = 0

    def _get_or_create(self, name, factory, kind):
        self.lookups += 1
        return super()._get_or_create(name, factory, kind)


class TestZeroOverheadGuard:
    def _spin(self, n_events):
        from repro.sim.engine import Simulator
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < n_events:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    def test_engine_registry_traffic_is_constant(self):
        # The aggregation-point rule, enforced: registry interactions
        # during a run must not scale with the event count.
        spy_small, spy_large = _SpyRegistry(), _SpyRegistry()
        with use_registry(spy_small):
            assert self._spin(100) == 100
        with use_registry(spy_large):
            assert self._spin(10_000) == 10_000
        assert spy_large.lookups == spy_small.lookups
        assert spy_large.lookups <= 8

    def test_off_by_default_records_nothing(self):
        assert get_registry() is NULL_REGISTRY
        self._spin(1000)
        assert len(NULL_REGISTRY) == 0

    def test_dde_registry_traffic_is_constant(self):
        from repro.core.fluid import dde
        from repro.core.fluid.dcqcn import DCQCNFluidModel
        from repro.core.params import DCQCNParams
        model = DCQCNFluidModel(DCQCNParams.paper_default(num_flows=2))
        spy_short, spy_long = _SpyRegistry(), _SpyRegistry()
        with use_registry(spy_short):
            dde.integrate(model, t_end=1e-4, dt=1e-6)
        with use_registry(spy_long):
            dde.integrate(model, t_end=1e-3, dt=1e-6)
        assert spy_long.lookups == spy_short.lookups
        counted = spy_long.counter("fluid.dde.steps_total").value
        assert counted == pytest.approx(1000)


class TestSweepTelemetry:
    def test_sweep_publishes_cell_metrics(self):
        from repro.perf.sweep import SweepRunner
        registry = MetricsRegistry()
        with use_registry(registry):
            results = SweepRunner().map(
                _square, [{"x": i} for i in range(5)])
        assert results == [0, 1, 4, 9, 16]
        assert registry.counter("perf.sweep.cells_total").value == 5
        hist = registry.get("perf.sweep.cell_seconds")
        assert hist.count == 5

    def test_cache_publishes_hit_miss_counters(self, tmp_path,
                                               monkeypatch):
        from repro.perf.cache import ResultCache
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "pinned")
        cache = ResultCache(root=tmp_path)
        registry = MetricsRegistry()
        with use_registry(registry):
            cache.get_or_run("exp", {"a": 1}, lambda: 11)
            cache.get_or_run("exp", {"a": 1}, lambda: 11)
        assert registry.counter("perf.cache.misses_total").value == 1
        assert registry.counter("perf.cache.hits_total").value == 1
        assert registry.counter("perf.cache.puts_total").value == 1


def _square(x):
    return x * x


class TestReportRendering:
    def test_render_events_shows_spans_and_metrics(self, tmp_path):
        from repro.obs.report import render_report
        telemetry = Telemetry(tmp_path, experiment="rep",
                              run_id="rep-1")
        with telemetry.activate(params={"k": 1}):
            get_registry().counter("rep.things_total").inc(9)
            with spans_module.span("phase"):
                pass
        text = render_report(telemetry.runlog_path)
        assert "rep-1" in text
        assert "experiment:rep" in text
        assert "phase" in text
        assert "rep.things_total" in text
        assert "status" in text
