"""Leaf-spine fabric: wiring, routing determinism, traffic flow."""

import pytest

from repro.core.params import DCQCNParams
from repro.sim.leaf_spine import (cross_rack_pairs, host_name,
                                  leaf_spine)
from repro.sim.topology import install_flow


class TestBuilder:
    def test_switch_and_host_counts(self):
        net = leaf_spine(n_leaves=3, n_spines=2, hosts_per_leaf=4)
        leaves = [s for s in net.switches if s.startswith("leaf")]
        spines = [s for s in net.switches if s.startswith("spine")]
        assert len(leaves) == 3
        assert len(spines) == 2
        assert len(net.hosts) == 12

    def test_local_routing_stays_on_leaf(self):
        net = leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=2)
        leaf0 = net.switches["leaf0"]
        assert leaf0.fib[host_name(0, 1)] == host_name(0, 1)

    def test_remote_routing_goes_via_a_spine(self):
        net = leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=2)
        leaf0 = net.switches["leaf0"]
        via = leaf0.fib[host_name(1, 0)]
        assert via.startswith("spine")

    def test_spine_routes_to_destination_leaf(self):
        net = leaf_spine(n_leaves=2, n_spines=1, hosts_per_leaf=2)
        spine = net.switches["spine0"]
        assert spine.fib[host_name(1, 1)] == "leaf1"

    def test_routing_is_deterministic_across_builds(self):
        first = leaf_spine(n_leaves=4, n_spines=3, hosts_per_leaf=2)
        second = leaf_spine(n_leaves=4, n_spines=3, hosts_per_leaf=2)
        for name in first.switches:
            assert first.switches[name].fib == second.switches[name].fib

    def test_validation(self):
        with pytest.raises(ValueError):
            leaf_spine(n_leaves=1)
        with pytest.raises(ValueError):
            leaf_spine(n_spines=0)
        with pytest.raises(ValueError):
            leaf_spine(hosts_per_leaf=0)


class TestPermutation:
    def test_cross_rack_pairs_all_cross(self):
        pairs = cross_rack_pairs(3, 2)
        assert len(pairs) == 6
        for src, dst in pairs:
            assert src.split("_")[0] != dst.split("_")[0]

    def test_every_host_sends_and_receives_once(self):
        pairs = cross_rack_pairs(4, 3)
        sources = [p[0] for p in pairs]
        destinations = [p[1] for p in pairs]
        assert len(set(sources)) == len(pairs)
        assert len(set(destinations)) == len(pairs)


class TestTraffic:
    def test_cross_rack_transfer_completes(self):
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=2)
        net = leaf_spine(n_leaves=2, n_spines=1, hosts_per_leaf=2)
        done = []
        install_flow(net, "dcqcn", host_name(0, 0), host_name(1, 0),
                     64 * 1024, 0.0, params, on_complete=done.append)
        net.sim.run(until=0.01)
        assert len(done) == 1
        # The transfer crossed a spine uplink.
        uplink = net.switches["leaf0"].ports["spine0"]
        assert uplink.bytes_transmitted >= 64 * 1024

    def test_oversubscribed_uplink_shares_fairly(self):
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=4)
        from repro.sim.red import REDMarker
        counter = [0]

        def factory():
            counter[0] += 1
            return REDMarker(params.red, params.mtu_bytes,
                             seed=counter[0])

        net = leaf_spine(n_leaves=2, n_spines=1, hosts_per_leaf=4,
                         marker_factory=factory)
        senders = []
        for idx in range(4):
            sender, _ = install_flow(
                net, "dcqcn", host_name(0, idx), host_name(1, idx),
                None, 0.0, params)
            senders.append(sender)
        net.sim.run(until=0.03)
        fair = net.link_rate_bytes / 4
        for sender in senders:
            assert sender.rate == pytest.approx(fair, rel=0.5)
