"""The (N, delay) stability map and its non-monotonic frontier."""

import pytest

from repro.experiments import ext_stability_map


class TestStabilityMap:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_stability_map.run(
            flow_counts=(1, 8, 30),
            delays_us=(4, 55, 100, 170))

    def test_margins_decrease_with_delay(self, rows):
        for row in rows:
            margins = row.margins_deg
            assert all(a > b for a, b in zip(margins, margins[1:])), \
                f"N={row.num_flows}"

    def test_frontier_extraction(self, rows):
        frontier = dict(ext_stability_map.boundary(rows))
        # N=1 stable through 55us; N=8 also 55 or less; N=30 reaches
        # at least 100us (the recovery side of the dip).
        assert frontier[30] >= 100.0
        assert frontier[8] <= frontier[30]

    def test_frontier_is_non_monotonic_in_n(self):
        rows = ext_stability_map.run(
            flow_counts=(1, 8, 50),
            delays_us=(40, 55, 70, 85, 100, 130, 170))
        frontier = dict(ext_stability_map.boundary(rows))
        # The dip: mid N tolerates *less* delay than both extremes.
        assert frontier[8] < frontier[1]
        assert frontier[8] < frontier[50]

    def test_all_unstable_row_reports_none(self):
        rows = ext_stability_map.run(flow_counts=(8,),
                                     delays_us=(150, 200))
        assert rows[0].max_stable_delay_us is None

    def test_report_renders(self, rows):
        out = ext_stability_map.report(rows)
        assert "max stable" in out
        assert "none" in out or "us" in out

    def test_report_rejects_empty(self):
        with pytest.raises(ValueError):
            ext_stability_map.report([])
