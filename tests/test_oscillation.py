"""Oscillation analysis: synthetic signals and the Bode cross-check."""

import numpy as np
import pytest

from repro.analysis.oscillation import dominant_oscillation, trace_oscillation
from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.params import DCQCNParams
from repro.core.stability.dcqcn_margin import dcqcn_phase_margin


class TestSyntheticSignals:
    def test_pure_sine_recovered(self):
        times = np.linspace(0, 1, 2000, endpoint=False)
        values = 3.0 * np.sin(2 * np.pi * 50.0 * times)
        estimate = dominant_oscillation(times, values)
        assert estimate.frequency_hz == pytest.approx(50.0, rel=0.02)
        assert estimate.amplitude == pytest.approx(3.0, rel=0.1)
        assert estimate.is_oscillatory

    def test_sine_plus_trend(self):
        times = np.linspace(0, 1, 2000, endpoint=False)
        values = 100.0 + 20.0 * times \
            + 2.0 * np.sin(2 * np.pi * 80.0 * times)
        estimate = dominant_oscillation(times, values)
        assert estimate.frequency_hz == pytest.approx(80.0, rel=0.02)

    def test_strongest_of_two_tones_wins(self):
        times = np.linspace(0, 1, 4000, endpoint=False)
        values = 1.0 * np.sin(2 * np.pi * 30.0 * times) \
            + 4.0 * np.sin(2 * np.pi * 120.0 * times)
        estimate = dominant_oscillation(times, values)
        assert estimate.frequency_hz == pytest.approx(120.0, rel=0.02)

    def test_noise_is_not_oscillatory(self):
        rng = np.random.default_rng(0)
        times = np.linspace(0, 1, 2000, endpoint=False)
        estimate = dominant_oscillation(times, rng.normal(size=2000))
        assert not estimate.is_oscillatory

    def test_constant_series(self):
        times = np.linspace(0, 1, 100, endpoint=False)
        estimate = dominant_oscillation(times, np.full(100, 5.0))
        assert estimate.frequency_hz == 0.0
        assert not estimate.is_oscillatory

    def test_validation(self):
        with pytest.raises(ValueError):
            dominant_oscillation([0, 1], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            dominant_oscillation([0, 1, 2], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            dominant_oscillation([0.0, 0.1, 0.3, 0.35, 0.5, 0.6,
                                  0.7, 0.8],
                                 np.zeros(8))


class TestBodeCrossCheck:
    def test_limit_cycle_frequency_matches_crossover(self):
        """The headline link: the unstable DCQCN configuration
        oscillates at (roughly) the frequency where its loop gain
        crosses unity."""
        params = DCQCNParams.paper_default(num_flows=10,
                                           tau_star_us=85.0)
        margin = dcqcn_phase_margin(params)
        assert not margin.stable
        trace = dde.integrate(
            DCQCNFluidModel(params, extend_red=True), 0.08, dt=1e-6,
            record_stride=10)
        estimate = trace_oscillation(trace, "q", window=0.02)
        assert estimate.is_oscillatory
        assert estimate.angular_frequency == pytest.approx(
            margin.crossover_rad_s, rel=0.5)

    def test_stable_configuration_has_no_line(self):
        params = DCQCNParams.paper_default(num_flows=10,
                                           tau_star_us=4.0)
        trace = dde.integrate(
            DCQCNFluidModel(params, extend_red=True), 0.06, dt=1e-6,
            record_stride=10)
        estimate = trace_oscillation(trace, "q", window=0.015)
        # Whatever residue remains is tiny next to the unstable case.
        assert estimate.amplitude < 1.0  # packets
