"""CSV export of experiment results."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis.export import flatten_result, to_csv, write_csv


@dataclass(frozen=True)
class Inner:
    x: float
    y: float


@dataclass
class Sample:
    name: str
    value: float
    inner: Inner
    series: np.ndarray
    tags: "list[str]"


def make_sample(name="a", value=1.5):
    return Sample(name=name, value=value, inner=Inner(x=1.0, y=2.0),
                  series=np.array([1.0, 2.0, 3.0]),
                  tags=["p", "q"])


class TestFlatten:
    def test_single_dataclass(self):
        rows = flatten_result(make_sample())
        assert len(rows) == 1
        row = rows[0]
        assert row["name"] == "a"
        assert row["inner.x"] == 1.0
        assert row["series.count"] == 3
        assert row["series.mean"] == pytest.approx(2.0)
        assert row["tags"] == "p/q"

    def test_list_of_dataclasses(self):
        rows = flatten_result([make_sample("a"), make_sample("b")])
        assert [r["name"] for r in rows] == ["a", "b"]

    def test_dict_adds_group_column(self):
        rows = flatten_result({"dcqcn": [make_sample("a")],
                               "timely": [make_sample("b")]})
        groups = {r["group"] for r in rows}
        assert groups == {"dcqcn", "timely"}

    def test_empty_array_field(self):
        sample = make_sample()
        sample.series = np.array([])
        row = flatten_result(sample)[0]
        assert row["series.count"] == 0

    def test_unflattenable_rejected(self):
        with pytest.raises(TypeError):
            flatten_result(42)


class TestCSV:
    def test_round_trips_through_csv_reader(self):
        import csv
        import io
        text = to_csv([make_sample("a", 1.0), make_sample("b", 2.0)])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[1]["name"] == "b"
        assert float(rows[1]["value"]) == 2.0

    def test_write_csv_creates_directories(self, tmp_path):
        target = write_csv(make_sample(), tmp_path / "deep" / "out.csv")
        assert target.exists()
        assert "name" in target.read_text()

    def test_real_experiment_rows_export(self):
        """Every registry result shape must flatten."""
        from repro.experiments.fig11_patched_phase_margin import \
            PatchedMarginRow
        rows = [PatchedMarginRow(num_flows=2, margin_deg=7.0,
                                 queue_star_kb=76.0,
                                 feedback_delay_us=67.0)]
        text = to_csv(rows)
        assert "num_flows" in text
        assert "76.0" in text


class TestCLIIntegration:
    def test_run_with_csv(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main
        from repro.experiments.registry import EXPERIMENTS, Experiment

        @dataclass
        class Row:
            k: int

        fake = Experiment("fake", "fake", lambda: [Row(1), Row(2)],
                          lambda rows: "ok")
        monkeypatch.setitem(EXPERIMENTS, "fake", fake)
        assert main(["run", "fake", "--csv", str(tmp_path)]) == 0
        out_file = tmp_path / "fake.csv"
        assert out_file.exists()
        assert out_file.read_text().startswith("k")
