"""The live health layer: detectors, monitors, sessions, wiring."""

import numpy as np
import pytest

from repro.obs import health as H
from repro.obs.runlog import read_events, validate_events
from repro.obs.telemetry import Telemetry


def feed(monitor, times, **series):
    """Drive a monitor with parallel signal arrays."""
    for index, t in enumerate(times):
        monitor.sample(t, **{name: values[index]
                             for name, values in series.items()})
    return monitor.finalize()


class TestQueueOscillationDetector:
    times = np.arange(0.0, 0.03, 2e-5)

    def test_limit_cycle_fires_critical(self):
        queue = 500 + 400 * np.sin(2 * np.pi * 5e3 * self.times)
        monitor = H.HealthMonitor(
            [H.QueueOscillationDetector(window=5e-3,
                                        check_interval=1e-3)])
        findings = feed(monitor, self.times, queue=queue)
        kinds = {f.kind for f in findings}
        assert "limit_cycle" in kinds
        assert monitor.verdict == "pathological"

    def test_fires_mid_run_not_only_at_finish(self):
        queue = 500 + 400 * np.sin(2 * np.pi * 5e3 * self.times)
        detector = H.QueueOscillationDetector(window=5e-3,
                                              check_interval=1e-3)
        monitor = H.HealthMonitor([detector])
        fired_at = None
        for t, q in zip(self.times, queue):
            monitor.sample(t, queue=q)
            if monitor.findings and fired_at is None:
                fired_at = t
        assert fired_at is not None
        assert fired_at < self.times[-1]

    def test_steady_queue_is_clean(self):
        rng = np.random.default_rng(7)
        queue = 500 + rng.normal(0, 5, self.times.size)
        monitor = H.HealthMonitor(
            [H.QueueOscillationDetector(window=5e-3,
                                        check_interval=1e-3)])
        assert feed(monitor, self.times, queue=queue) == []
        assert monitor.verdict == "clean"

    def test_startup_transient_not_judged(self):
        # Ramp-and-settle of a stable system: large swing early,
        # flat after -- must NOT fire even though the early window
        # has a huge CoV.
        queue = np.where(self.times < 5e-3,
                         1000 * np.sin(2 * np.pi * 400 * self.times),
                         500.0)
        monitor = H.HealthMonitor(
            [H.QueueOscillationDetector(window=5e-3,
                                        check_interval=1e-3)])
        assert feed(monitor, self.times, queue=queue) == []

    def test_fixed_point_deviation_warns(self):
        queue = np.full(self.times.size, 900.0)
        monitor = H.HealthMonitor(
            [H.QueueOscillationDetector(window=5e-3, q_star=100.0)])
        findings = feed(monitor, self.times, queue=queue)
        assert [f.kind for f in findings] == ["fixed_point_deviation"]
        assert findings[0].severity == "warning"
        assert monitor.verdict == "warning"

    def test_matching_fixed_point_is_clean(self):
        queue = np.full(self.times.size, 105.0)
        monitor = H.HealthMonitor(
            [H.QueueOscillationDetector(window=5e-3, q_star=100.0)])
        assert feed(monitor, self.times, queue=queue) == []

    def test_rewind_resets_buffers(self):
        detector = H.QueueOscillationDetector(window=5e-3)
        detector.sample(1e-3, {"queue": 10.0})
        detector.sample(2e-3, {"queue": 20.0})
        detector.sample(0.0, {"queue": 0.0})  # integrator retry
        assert len(detector._times) == 1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            H.QueueOscillationDetector(window=0.0)


class TestUnfairnessDriftDetector:
    times = np.arange(0.0, 0.02, 2e-5)

    def test_persistent_unfairness_fires_critical(self):
        monitor = H.HealthMonitor(
            [H.UnfairnessDriftDetector(window=5e-3)])
        rates = [(7.0, 3.0)] * self.times.size
        findings = feed(monitor, self.times, rates=rates)
        assert [f.kind for f in findings] == ["persistent_unfairness"]
        assert monitor.verdict == "pathological"

    def test_fair_rates_are_clean(self):
        monitor = H.HealthMonitor(
            [H.UnfairnessDriftDetector(window=5e-3)])
        rates = [(5.0, 5.0)] * self.times.size
        assert feed(monitor, self.times, rates=rates) == []

    def test_slow_drift_warns(self):
        # Jain decays from 1.0 to ~0.917 -- above critical, but a
        # clear downward trend.
        split = np.linspace(0.0, 1.5, self.times.size)
        rates = [(5.0 + s, 5.0 - s) for s in split]
        monitor = H.HealthMonitor(
            [H.UnfairnessDriftDetector(window=2e-3)])
        findings = feed(monitor, self.times, rates=rates)
        assert [f.kind for f in findings] == ["fairness_drift"]
        assert findings[0].severity == "warning"

    def test_all_zero_rates_skipped(self):
        monitor = H.HealthMonitor(
            [H.UnfairnessDriftDetector(window=5e-3)])
        rates = [(0.0, 0.0)] * self.times.size
        assert feed(monitor, self.times, rates=rates) == []


class TestPauseStormDetector:
    def test_storm_fires_on_high_pause_rate(self):
        times = np.arange(0.0, 0.01, 1e-4)
        pauses = np.arange(times.size) * 2.0  # 20k PAUSE/s
        monitor = H.HealthMonitor(
            [H.PauseStormDetector(window=2e-3)])
        findings = feed(monitor, times, pfc_pauses=pauses)
        assert [f.kind for f in findings] == ["pause_storm"]
        assert findings[0].severity == "warning"

    def test_quiet_fabric_is_clean(self):
        times = np.arange(0.0, 0.01, 1e-4)
        pauses = np.zeros(times.size)
        monitor = H.HealthMonitor(
            [H.PauseStormDetector(window=2e-3)])
        assert feed(monitor, times, pfc_pauses=pauses) == []

    def test_sustained_pause_is_critical(self):
        times = np.arange(0.0, 0.01, 1e-3)
        monitor = H.HealthMonitor(
            [H.PauseStormDetector(window=5e-3,
                                  sustained_pause_s=2e-3)])
        findings = feed(monitor, times,
                        pfc_pauses=np.ones(times.size),
                        pfc_longest_pause_s=times)  # grows past 2ms
        kinds = {f.kind: f.severity for f in findings}
        assert kinds["sustained_pause"] == "critical"
        assert monitor.verdict == "pathological"


class TestStalledConvergenceDetector:
    times = np.arange(0.0, 0.02, 1e-4)

    def test_still_moving_rates_warn(self):
        rates = [(r, r) for r in np.linspace(1.0, 10.0,
                                             self.times.size)]
        monitor = H.HealthMonitor(
            [H.StalledConvergenceDetector(window=5e-3)])
        findings = feed(monitor, self.times, rates=rates)
        assert [f.kind for f in findings] == ["not_settled"]

    def test_settled_rates_are_clean(self):
        rates = [(5.0, 5.0)] * self.times.size
        monitor = H.HealthMonitor(
            [H.StalledConvergenceDetector(window=5e-3)])
        assert feed(monitor, self.times, rates=rates) == []


class TestHybridDriftDetector:
    times = np.arange(0.0, 0.03, 2e-5)

    def monitor(self, **kwargs):
        kwargs.setdefault("window", 5e-3)
        kwargs.setdefault("check_interval", 1e-3)
        return H.HealthMonitor([H.HybridDriftDetector(**kwargs)])

    def feed_signals(self, monitor, deltas, queues, residuals):
        return feed(monitor, self.times,
                    hybrid_backlog_delta_bytes=deltas,
                    hybrid_queue_bytes=queues,
                    hybrid_rate_residual=residuals)

    def constant(self, value):
        return np.full(self.times.size, float(value))

    def test_forced_divergence_fires_warning(self):
        # Fluid backlog and packet queue disagree by 90% of the
        # total queue, sustained: the hybrid has stopped being
        # honest about where the bytes are.
        monitor = self.monitor()
        findings = self.feed_signals(
            monitor, deltas=self.constant(900.0),
            queues=self.constant(1000.0),
            residuals=self.constant(0.5))
        assert "backlog_divergence" in {f.kind for f in findings}
        assert monitor.verdict == "warning"

    def test_divergence_fires_mid_run(self):
        detector = H.HybridDriftDetector(window=5e-3,
                                         check_interval=1e-3)
        monitor = H.HealthMonitor([detector])
        fired_at = None
        for t in self.times:
            monitor.sample(t, hybrid_backlog_delta_bytes=900.0,
                           hybrid_queue_bytes=1000.0,
                           hybrid_rate_residual=0.5)
            if monitor.findings and fired_at is None:
                fired_at = t
        assert fired_at is not None and fired_at < self.times[-1]

    def test_mice_starved_fires_on_pinned_residual(self):
        # The packet mice never get more than the clamp floor: the
        # fluid elephants own the line for the whole window.
        findings = self.feed_signals(
            self.monitor(), deltas=self.constant(10.0),
            queues=self.constant(1000.0),
            residuals=self.constant(0.02))
        assert {f.kind for f in findings} == {"mice_starved"}

    def test_runaway_divergence_is_critical(self):
        # Queue doubles every 2.5 ms: the tail window's mean is 4x
        # the previous window's -- the coupled system is blowing up.
        queues = 100.0 * 2.0 ** (self.times / 2.5e-3)
        monitor = self.monitor()
        findings = self.feed_signals(
            monitor, deltas=self.constant(1.0), queues=queues,
            residuals=self.constant(0.5))
        by_kind = {f.kind: f for f in findings}
        assert by_kind["runaway_divergence"].severity == "critical"
        assert monitor.verdict == "pathological"

    def test_tail_drift_warns_without_runaway(self):
        # A late step change: the last window's mean moved 80% but
        # did not cross the 2x runaway line.
        queues = np.where(self.times < 0.025, 1000.0, 1800.0)
        findings = self.feed_signals(
            self.monitor(), deltas=self.constant(1.0),
            queues=queues, residuals=self.constant(0.5))
        assert {f.kind for f in findings} == {"tail_drift"}

    def test_converged_hybrid_is_clean(self):
        rng = np.random.default_rng(11)
        monitor = self.monitor()
        findings = self.feed_signals(
            monitor,
            deltas=rng.normal(0.0, 5.0, self.times.size),
            queues=1000.0 + rng.normal(0.0, 10.0, self.times.size),
            residuals=self.constant(0.5))
        assert findings == []
        assert monitor.verdict == "clean"

    def test_startup_transient_not_judged(self):
        # Huge disagreement while the packet queue fills, agreement
        # after: the first-2-windows guard must hold fire.
        deltas = np.where(self.times < 5e-3, 900.0, 1.0)
        findings = self.feed_signals(
            self.monitor(), deltas=deltas,
            queues=self.constant(1000.0),
            residuals=self.constant(0.5))
        assert findings == []

    def test_missing_signal_is_skipped(self):
        # Non-hybrid runs never publish the drift signals; the
        # detector must stay silent rather than judge nothing.
        monitor = self.monitor()
        assert feed(monitor, self.times,
                    queue=np.ones(self.times.size)) == []
        assert monitor.verdict == "clean"

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            H.HybridDriftDetector(window=0.0)


class TestHealthMonitor:
    def test_dedupes_per_detector_kind(self):
        class Always(H.Detector):
            name = "always"

            def sample(self, t, signals):
                return [self._finding("same", "warning", "again")]

        monitor = H.HealthMonitor([Always()])
        for t in (0.0, 1.0, 2.0):
            monitor.sample(t)
        assert len(monitor.findings) == 1

    def test_context_is_stamped(self):
        monitor = H.HealthMonitor(
            [H.UnfairnessDriftDetector(window=1e-3)],
            context="N=10")
        times = np.arange(0.0, 0.01, 1e-4)
        findings = feed(monitor, times,
                        rates=[(9.0, 1.0)] * times.size)
        assert findings[0].context == "N=10"

    def test_finalize_is_idempotent(self):
        monitor = H.HealthMonitor(
            [H.UnfairnessDriftDetector(window=1e-3)])
        times = np.arange(0.0, 0.01, 1e-4)
        feed(monitor, times, rates=[(9.0, 1.0)] * times.size)
        count = len(monitor.findings)
        assert len(monitor.finalize()) == count

    def test_forwards_to_session_immediately(self):
        session = H.HealthSession()
        monitor = H.HealthMonitor(
            [H.PauseStormDetector(window=1e-3)], session=session)
        monitor.sample(0.0, pfc_pauses=0.0)
        monitor.sample(1e-4, pfc_pauses=100.0)
        assert len(session.findings) == 1  # before finalize()

    def test_observe_state_maps_vector(self):
        seen = {}

        class Probe(H.Detector):
            name = "probe"

            def sample(self, t, signals):
                seen.update(signals)
                return None

        monitor = H.HealthMonitor([Probe()])
        observer = monitor.observe_state(queue_index=0,
                                         rate_slice=slice(1, 3))
        observer(0.5, np.array([7.0, 1.0, 2.0, 9.0]))
        assert seen["queue"] == 7.0
        assert list(seen["rates"]) == [1.0, 2.0]


class TestSessionAndVerdict:
    def test_verdict_ladder(self):
        warn = H.HealthFinding("d", "k", "warning", "m")
        crit = H.HealthFinding("d", "k2", "critical", "m")
        assert H.verdict_for([]) == "clean"
        assert H.verdict_for([warn]) == "warning"
        assert H.verdict_for([warn, crit]) == "pathological"

    def test_use_session_scopes_and_restores(self):
        assert H.current_session() is None
        session = H.HealthSession()
        with H.use_session(session):
            assert H.current_session() is session
        assert H.current_session() is None

    def test_session_counts_metrics(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        session = H.HealthSession(registry=registry)
        session.add(H.HealthFinding("d", "k", "critical", "m"))
        snapshot = registry.snapshot()
        assert snapshot["obs.health.findings_total"]["value"] == 1
        assert snapshot[
            "obs.health.findings_critical_total"]["value"] == 1

    def test_telemetry_installs_session_and_emits_verdict(
            self, tmp_path):
        telemetry = Telemetry(tmp_path, experiment="demo")
        with telemetry.activate():
            session = H.current_session()
            assert session is telemetry.health
            session.add(H.HealthFinding(
                "queue_oscillation", "limit_cycle", "critical",
                "synthetic"))
        assert H.current_session() is None
        assert telemetry.verdict == "pathological"
        events = read_events(telemetry.runlog_path)
        assert validate_events(events) == []
        health = [e for e in events if e["type"] == "health"]
        assert health[0]["detector"] == "queue_oscillation"
        assert health[-1]["detector"] == "health.verdict"
        assert health[-1]["verdict"] == "pathological"

    def test_clean_run_gets_clean_verdict_event(self, tmp_path):
        telemetry = Telemetry(tmp_path, experiment="demo")
        with telemetry.activate():
            pass
        events = read_events(telemetry.runlog_path)
        verdicts = [e for e in events if e["type"] == "health"]
        assert len(verdicts) == 1
        assert verdicts[0]["verdict"] == "clean"
        assert telemetry.verdict == "clean"


class TestZeroCostWiring:
    def test_attach_packet_health_is_noop_without_session(self):
        from repro.sim.topology import single_switch
        net = single_switch(2)
        before = net.sim.pending_events
        assert H.attach_packet_health(
            net, [H.PauseStormDetector(window=1e-3)],
            interval=1e-5) is None
        assert net.sim.pending_events == before

    def test_attach_packet_health_samples_with_session(self):
        from repro.core.params import DCQCNParams
        from repro.sim.topology import install_flow, single_switch
        params = DCQCNParams.paper_default(capacity_gbps=40.0,
                                           num_flows=2)
        session = H.HealthSession()
        with H.use_session(session):
            net = single_switch(2)
            for i in range(2):
                install_flow(net, "dcqcn", f"s{i}", "recv", None,
                             0.0, params)
            monitor = H.attach_packet_health(
                net, [H.StalledConvergenceDetector(window=1e-4)],
                interval=1e-5)
            assert monitor is not None
            net.sim.run(until=1e-3)
            monitor.finalize()
        assert monitor._samples > 50


class TestSeededPathologyTraces:
    """The acceptance traces: fire on the paper's pathologies,
    stay clean on the patched control -- deterministically."""

    def _verdict_of(self, fn):
        session = H.HealthSession()
        with H.use_session(session):
            fn()
        return session

    def test_fig05_instability_fires_oscillation(self):
        from repro.experiments import fig05_dcqcn_sim_instability
        session = self._verdict_of(
            lambda: fig05_dcqcn_sim_instability.run(
                extra_delays_us=(85.0,), duration=0.04))
        assert session.verdict() == "pathological"
        assert any(f.detector == "queue_oscillation"
                   and f.kind == "limit_cycle"
                   for f in session.findings)

    def test_fig09_asymmetric_start_fires_unfairness(self):
        from repro.experiments import fig09_timely_unfairness
        scenario = fig09_timely_unfairness.PAPER_SCENARIOS[2]
        session = self._verdict_of(
            lambda: fig09_timely_unfairness.run(
                scenarios=(scenario,), duration=0.05))
        assert session.verdict() == "pathological"
        assert any(f.detector == "unfairness_drift"
                   and f.kind == "persistent_unfairness"
                   for f in session.findings)

    def test_fig12_patched_timely_stays_clean(self):
        from repro.experiments import fig12_patched_timely
        session = self._verdict_of(
            fig12_patched_timely.run_asymmetric)
        assert session.verdict() == "clean"
        assert session.findings == []

    def test_fig05_low_delay_control_stays_clean(self):
        from repro.experiments import fig05_dcqcn_sim_instability
        session = self._verdict_of(
            lambda: fig05_dcqcn_sim_instability.run(
                extra_delays_us=(0.0,), duration=0.04))
        assert session.verdict() == "clean"
