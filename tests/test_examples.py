"""The example scripts must at least import and expose main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # Examples read sys.argv defaults; keep it clean.
    old_argv = sys.argv
    sys.argv = [str(path)]
    try:
        spec.loader.exec_module(module)
    finally:
        sys.argv = old_argv
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLE_FILES}
        assert {"quickstart", "timely_unfairness", "fct_comparison",
                "pi_controller", "stability_map",
                "beyond_the_paper"} <= names

    @pytest.mark.parametrize("path", EXAMPLE_FILES,
                             ids=lambda p: p.stem)
    def test_imports_cleanly_and_has_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), \
            f"{path.stem} lacks a main()"

    def test_quickstart_analytics_section_runs(self, capsys):
        module = load_example(EXAMPLES_DIR / "quickstart.py")
        module.analytic_fixed_points()
        out = capsys.readouterr().out
        assert "p* exact" in out

    def test_timely_unfairness_family_section_runs(self, capsys):
        module = load_example(EXAMPLES_DIR / "timely_unfairness.py")
        module.show_family()
        out = capsys.readouterr().out
        assert "max/min" in out
