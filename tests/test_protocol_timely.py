"""TIMELY / patched TIMELY endpoint protocol logic."""

import pytest

from repro import units
from repro.core.params import PatchedTimelyParams, TimelyParams
from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.link import Link, Port
from repro.sim.node import Host
from repro.sim.packet import Packet
from repro.sim.protocols.patched_timely import PatchedTimelySender
from repro.sim.protocols.timely import TimelyReceiver, TimelySender
from repro.sim.topology import install_flow, single_switch


def make_sender(params=None, initial_gbps=5.0, **kw):
    params = params or TimelyParams.paper_default()
    sim = Simulator()
    host = Host(sim, "s0")
    flow = Flow(0, "s0", "recv", None, 0.0)
    sender = TimelySender(sim, host, flow, params,
                          initial_rate=initial_gbps * 1e9 / 8, **kw)
    return sim, sender, params


def apply_rtt(sender, rtt):
    """Drive Algorithm 1 directly with one RTT sample."""
    sender.update_rate(rtt)


class TestAlgorithm1Branches:
    def test_low_rtt_additive_increase(self):
        _, sender, params = make_sender()
        before = sender.rate
        apply_rtt(sender, params.t_low / 2)
        assert sender.rate == pytest.approx(
            before + params.delta * params.mtu_bytes)

    def test_high_rtt_multiplicative_decrease(self):
        _, sender, params = make_sender()
        before = sender.rate
        rtt = params.t_high * 2
        apply_rtt(sender, rtt)
        expected = before * (1 - params.beta * (1 - params.t_high / rtt))
        assert sender.rate == pytest.approx(expected)

    def test_gradient_decrease_in_band(self):
        _, sender, params = make_sender()
        mid = (params.t_low + params.t_high) / 2
        apply_rtt(sender, mid)          # primes prev_rtt
        before = sender.rate
        bump = params.min_rtt / 10      # small positive gradient
        apply_rtt(sender, mid + bump)
        assert sender.rate < before

    def test_gradient_increase_in_band(self):
        _, sender, params = make_sender()
        mid = (params.t_low + params.t_high) / 2
        apply_rtt(sender, mid)
        before = sender.rate
        apply_rtt(sender, mid - params.min_rtt / 10)
        assert sender.rate > before

    def test_first_sample_has_zero_gradient(self):
        _, sender, params = make_sender()
        before = sender.rate
        mid = (params.t_low + params.t_high) / 2
        apply_rtt(sender, mid)
        # gradient = 0 -> additive increase branch.
        assert sender.rate == pytest.approx(
            before + params.delta * params.mtu_bytes)

    def test_ewma_filtering(self):
        _, sender, params = make_sender()
        mid = (params.t_low + params.t_high) / 2
        apply_rtt(sender, mid)
        apply_rtt(sender, mid + 10e-6)
        expected = params.ewma_alpha * 10e-6
        assert sender.rtt_diff == pytest.approx(expected)

    def test_gradient_clamp_bounds_single_cut(self):
        _, sender, params = make_sender()
        apply_rtt(sender, 80e-6)
        before = sender.rate
        # A +300us jump (still below t_high) is gradient ~13 unclamped.
        apply_rtt(sender, 380e-6)
        floor = before * (1 - params.beta * sender.gradient_clamp)
        assert sender.rate == pytest.approx(floor, rel=1e-6)

    def test_unclamped_gradient_floors_at_one_minus_beta(self):
        _, sender, params = make_sender(gradient_clamp=None)
        apply_rtt(sender, 80e-6)
        before = sender.rate
        apply_rtt(sender, 380e-6)
        assert sender.rate == pytest.approx(before * (1 - params.beta))

    def test_min_rate_is_delta(self):
        _, sender, params = make_sender()
        for _ in range(200):
            apply_rtt(sender, params.t_high * 10)
        assert sender.rate >= params.delta * params.mtu_bytes


class TestHAI:
    def test_hai_after_five_negative_gradients(self):
        _, sender, params = make_sender()
        mid = (params.t_low + params.t_high) / 2
        delta_bytes = params.delta * params.mtu_bytes
        rtt = mid
        apply_rtt(sender, rtt)
        # Falling RTT samples in the gradient band.
        gains = []
        for _ in range(8):
            before = sender.rate
            rtt -= 1e-6
            apply_rtt(sender, rtt)
            gains.append(sender.rate - before)
        assert gains[0] == pytest.approx(delta_bytes)
        assert gains[-1] == pytest.approx(
            sender.hai_threshold * delta_bytes)

    def test_hai_reset_on_decrease(self):
        _, sender, params = make_sender()
        mid = (params.t_low + params.t_high) / 2
        rtt = mid
        apply_rtt(sender, rtt)
        for _ in range(6):
            rtt -= 1e-6
            apply_rtt(sender, rtt)
        assert sender._negative_gradient_streak >= sender.hai_threshold
        apply_rtt(sender, rtt + 50e-6)  # positive gradient -> decrease
        assert sender._negative_gradient_streak == 0

    def test_no_hai_below_t_low(self):
        """Footnote 5: HAI never applies on the RTT < T_low branch."""
        _, sender, params = make_sender()
        delta_bytes = params.delta * params.mtu_bytes
        gains = []
        for _ in range(8):
            before = sender.rate
            apply_rtt(sender, params.t_low / 2)
            gains.append(sender.rate - before)
        assert all(g == pytest.approx(delta_bytes) for g in gains)


class TestAckHandling:
    def test_rtt_measured_from_echo(self):
        sim, sender, params = make_sender()
        ack = Packet(0, 64, "recv", "s0", kind="ack")
        ack.echo_time = -30e-6  # sim.now is 0 -> RTT 30us < t_low
        before = sender.rate
        sender.on_ack(ack)
        assert sender.rate == pytest.approx(
            before + params.delta * params.mtu_bytes)

    def test_ack_without_echo_rejected(self):
        _, sender, _ = make_sender()
        ack = Packet(0, 64, "recv", "s0", kind="ack")
        with pytest.raises(ValueError):
            sender.on_ack(ack)

    def test_updates_gated_by_min_rtt(self):
        sim, sender, params = make_sender()
        ack = Packet(0, 64, "recv", "s0", kind="ack")
        ack.echo_time = 0.0
        before = sender.rate
        sender.on_ack(ack)  # accepted
        after_first = sender.rate
        sender.on_ack(ack)  # same instant: gated
        assert sender.rate == after_first != before
        assert sender.rtt_samples == 2


class TestPacing:
    def test_burst_mode_emits_full_segment(self):
        params = TimelyParams.paper_default(segment_kb=16)
        sim = Simulator()
        host = Host(sim, "s0")

        class Sink:
            name = "sw"

            def __init__(self):
                self.packets = []

            def receive(self, packet, ingress=None):
                self.packets.append((packet, sim.now))

        sink = Sink()
        host.port = Port(sim, 1e9, Link(sim, 0.0, sink))
        flow = Flow(0, "s0", "recv", None, 0.0)
        sender = TimelySender(sim, host, flow, params,
                              initial_rate=1e8, pacing="burst")
        sender.start()
        # One burst is 16 packets; run long enough for exactly one
        # burst plus its serialization.
        sim.run(until=20e-6)
        assert len(sink.packets) == 16
        sender.stop()

    def test_invalid_pacing_rejected(self):
        with pytest.raises(ValueError):
            make_sender(pacing="chunky")

    def test_rate_change_reschedules_pending_emission(self):
        sim, sender, params = make_sender(initial_gbps=0.001)
        # Pretend pacing scheduled far out, then raise the rate 100x:
        # the pending emission must move proportionally closer.
        sender.flow.start_time = 0.0
        sender._next_emission = sim.schedule(1.0, sender._pace)
        sender.rate = sender.rate * 100
        assert sender._next_emission.time == pytest.approx(0.01)

    def test_start_rate_c_over_n_plus_one(self):
        params = TimelyParams.paper_default()
        sim = Simulator()
        host = Host(sim, "s0")
        host.register_sender(999, object())  # one active flow
        flow = Flow(0, "s0", "recv", None, 0.0)
        sender = TimelySender(sim, host, flow, params)
        line = params.capacity * params.mtu_bytes
        assert sender.rate == pytest.approx(line / 2)


class TestReceiver:
    def build(self, params=None, size=None):
        params = params or TimelyParams.paper_default(segment_kb=16)
        sim = Simulator()
        host = Host(sim, "recv")

        class Sink:
            name = "sw"

            def __init__(self):
                self.packets = []

            def receive(self, packet, ingress=None):
                self.packets.append(packet)

        sink = Sink()
        host.port = Port(sim, 1e9, Link(sim, 0.0, sink))
        flow = Flow(0, "s0", "recv", size, 0.0)
        receiver = TimelyReceiver(sim, host, flow, params)
        return sim, receiver, sink, params

    def data(self, size=1024, sent_time=0.0):
        packet = Packet(0, size, "s0", "recv", kind="data")
        packet.sent_time = sent_time
        return packet

    def test_ack_once_per_segment(self):
        sim, receiver, sink, params = self.build()
        per_segment = int(params.segment)
        for _ in range(per_segment - 1):
            receiver.on_data(self.data())
        sim.run()
        assert receiver.acks_sent == 0
        receiver.on_data(self.data())
        sim.run()
        assert receiver.acks_sent == 1
        assert sink.packets[0].kind == "ack"

    def test_ack_echoes_triggering_timestamp(self):
        sim, receiver, sink, params = self.build()
        per_segment = int(params.segment)
        for i in range(per_segment):
            receiver.on_data(self.data(sent_time=float(i)))
        sim.run()
        assert sink.packets[0].echo_time == pytest.approx(
            float(per_segment - 1))

    def test_final_ack_for_short_flow(self):
        sim, receiver, sink, params = self.build(size=2048)
        receiver.on_data(self.data())
        receiver.on_data(self.data())
        sim.run()
        # Flow completed below one segment: completion flushes an ACK.
        assert receiver.acks_sent == 1
        assert receiver.flow.completed


class TestPatchedSender:
    def make(self, **kw):
        patched = PatchedTimelyParams.paper_default()
        sim = Simulator()
        host = Host(sim, "s0")
        flow = Flow(0, "s0", "recv", None, 0.0)
        sender = PatchedTimelySender(sim, host, flow, patched,
                                     initial_rate=5e9 / 8, **kw)
        return sender, patched

    def test_band_uses_weighted_absolute_error(self):
        sender, patched = self.make()
        params = patched.base
        rtt_ref = sender.rtt_ref
        apply_rtt(sender, rtt_ref)
        before = sender.rate
        # Zero gradient at the reference RTT: w=1/2, error=0 ->
        # rate <- delta/2 + rate.
        apply_rtt(sender, rtt_ref)
        expected = 0.5 * params.delta * params.mtu_bytes + before
        assert sender.rate == pytest.approx(expected)

    def test_decrease_above_reference_rtt(self):
        sender, patched = self.make()
        rtt_ref = sender.rtt_ref
        high = rtt_ref * 3  # still below t_high
        assert high < patched.base.t_high
        apply_rtt(sender, high)
        before = sender.rate
        # Steady high RTT: gradient ~ 0, error > 0 -> net decrease once
        # the error term beats delta/2.
        for _ in range(50):
            apply_rtt(sender, high)
        assert sender.rate < before

    def test_base_rtt_shifts_reference(self):
        sender_zero, patched = self.make()
        sender_shifted, _ = self.make(base_rtt=20e-6)
        assert sender_shifted.rtt_ref == pytest.approx(
            sender_zero.rtt_ref + 20e-6)

    def test_negative_base_rtt_rejected(self):
        with pytest.raises(ValueError):
            self.make(base_rtt=-1e-6)


class TestEndToEnd:
    def test_patched_two_flows_converge_to_eq31(self):
        patched = PatchedTimelyParams.paper_default(capacity_gbps=10,
                                                    num_flows=2)
        net = single_switch(2, link_gbps=10)
        for i, gbps in enumerate((7.0, 3.0)):
            install_flow(net, "patched_timely", f"s{i}", "recv", None,
                         0.0, patched, pacing="packet",
                         initial_rate=gbps * 1e9 / 8,
                         base_rtt=units.us(4))
        from repro.sim.monitors import QueueMonitor
        monitor = QueueMonitor(net.sim, net.bottleneck_port,
                               interval=100e-6)
        net.sim.run(until=0.08)
        rates = [net.senders[i].rate for i in range(2)]
        assert rates[0] == pytest.approx(rates[1], rel=0.15)
        predicted = units.packets_to_kb(patched.fixed_point_queue)
        assert monitor.tail_mean_bytes(0.02) / 1024 == pytest.approx(
            predicted, rel=0.15)

    def test_timely_finite_flow_completes(self):
        params = TimelyParams.paper_default(capacity_gbps=10)
        net = single_switch(1, link_gbps=10)
        done = []
        install_flow(net, "timely", "s0", "recv", 64 * 1024, 0.0,
                     params, on_complete=done.append)
        net.sim.run(until=0.01)
        assert len(done) == 1
