"""The latency-CDF and churn-fairness extensions."""

import math

import pytest

from repro.experiments import ext_latency_cdf, ext_longflow_fairness


class TestLatencyCDF:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.protocol: r
                for r in ext_latency_cdf.run(duration=0.12,
                                             drain=0.08)}

    def test_every_protocol_traced(self, rows):
        for protocol, row in rows.items():
            assert row.packets > 10_000, protocol
            for p, value in row.latency_us.items():
                assert math.isfinite(value)

    def test_percentiles_monotone(self, rows):
        for row in rows.values():
            values = [row.latency_us[p]
                      for p in ext_latency_cdf.PERCENTILES]
            assert values == sorted(values)

    def test_ecn_has_the_lowest_tail_latency(self, rows):
        """The Fig. 16 story in packet currency: DCQCN bounds the
        queue, so its p99 packet latency sits far below both
        delay-based protocols'."""
        dcqcn_p99 = rows["dcqcn"].latency_us[99]
        assert rows["timely"].latency_us[99] > 1.5 * dcqcn_p99
        assert rows["patched_timely"].latency_us[99] > 1.5 * dcqcn_p99

    def test_dcqcn_marks_some_packets(self, rows):
        assert 0.0 < rows["dcqcn"].marked_fraction < 0.5

    def test_report_renders(self, rows):
        out = ext_latency_cdf.report(list(rows.values()))
        assert "p99" in out


class TestLongFlowFairness:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.protocol: r
                for r in ext_longflow_fairness.run(duration=0.15)}

    def test_dcqcn_stays_fair_through_churn(self, rows):
        dcqcn = rows["dcqcn"]
        assert dcqcn.jain_mean > 0.97
        assert dcqcn.jain_p10 > 0.9

    def test_dcqcn_long_flows_keep_real_bandwidth(self, rows):
        assert rows["dcqcn"].long_flow_share > 0.4

    def test_timely_long_flows_starve_under_churn(self, rows):
        """Burst-noise cuts hit the long flows on every churn spike
        while their delta-paced recovery crawls: they end up with a
        tiny fraction of the link."""
        timely = rows["timely"]
        assert timely.long_flow_share < \
            0.3 * rows["dcqcn"].long_flow_share
        assert timely.jain_mean < rows["dcqcn"].jain_mean

    def test_patched_is_fair_but_timid(self, rows):
        patched = rows["patched_timely"]
        assert patched.jain_mean > 0.95
        assert patched.long_flow_share < \
            rows["dcqcn"].long_flow_share

    def test_report_renders(self, rows):
        out = ext_longflow_fairness.report(list(rows.values()))
        assert "Jain" in out
