"""Topology builders and flow installation."""

import pytest

from repro.core.params import (DCQCNParams, DCTCPParams,
                               PatchedTimelyParams, TimelyParams)
from repro.sim.topology import (PROTOCOLS, dumbbell, install_flow,
                                single_switch)


class TestSingleSwitch:
    def test_host_and_route_wiring(self):
        net = single_switch(3, link_gbps=10)
        assert set(net.hosts) == {"s0", "s1", "s2", "recv"}
        switch = net.switches["sw"]
        for host in net.hosts:
            assert switch.fib[host] == host

    def test_bottleneck_is_switch_to_receiver(self):
        net = single_switch(2)
        assert net.bottleneck_port is net.switches["sw"].ports["recv"]

    def test_feedback_extra_delay_on_reverse_links(self):
        net = single_switch(1, feedback_extra_delay=85e-6,
                            link_delay=1e-6)
        switch = net.switches["sw"]
        assert switch.ports["s0"].link.delay == pytest.approx(86e-6)
        assert switch.ports["recv"].link.delay == pytest.approx(1e-6)

    def test_rejects_zero_senders(self):
        with pytest.raises(ValueError):
            single_switch(0)

    def test_link_rate_conversion(self):
        net = single_switch(1, link_gbps=40)
        assert net.link_rate_bytes == pytest.approx(5e9)


class TestDumbbell:
    def test_pairs_and_routes(self):
        net = dumbbell(4)
        assert sum(1 for h in net.hosts if h.startswith("s")) == 4
        assert sum(1 for h in net.hosts if h.startswith("r")) == 4
        sw1, sw2 = net.switches["sw1"], net.switches["sw2"]
        assert sw1.fib["r2"] == "sw2"
        assert sw2.fib["r2"] == "r2"
        assert sw2.fib["s2"] == "sw1"

    def test_bottleneck_is_inter_switch_link(self):
        net = dumbbell(2)
        assert net.bottleneck_port is net.switches["sw1"].ports["sw2"]

    def test_data_crosses_bottleneck(self):
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=1)
        net = dumbbell(2, link_gbps=10)
        done = []
        install_flow(net, "dcqcn", "s0", "r1", 10 * 1024, 0.0, params,
                     on_complete=done.append)
        net.sim.run(until=0.01)
        assert len(done) == 1
        assert net.bottleneck_port.bytes_transmitted >= 10 * 1024

    def test_rejects_zero_pairs(self):
        with pytest.raises(ValueError):
            dumbbell(0)


class TestInstallFlow:
    def test_protocol_param_type_checked(self):
        net = single_switch(1)
        with pytest.raises(TypeError):
            install_flow(net, "dcqcn", "s0", "recv", None, 0.0,
                         TimelyParams.paper_default())
        with pytest.raises(TypeError):
            install_flow(net, "timely", "s0", "recv", None, 0.0,
                         DCQCNParams.paper_default())
        with pytest.raises(TypeError):
            install_flow(net, "patched_timely", "s0", "recv", None,
                         0.0, TimelyParams.paper_default())

    def test_unknown_protocol_rejected(self):
        net = single_switch(1)
        with pytest.raises(ValueError):
            install_flow(net, "tcp", "s0", "recv", None, 0.0, None)

    def test_all_protocols_install(self):
        for protocol in PROTOCOLS:
            net = single_switch(1, link_gbps=10)
            if protocol == "dcqcn":
                params = DCQCNParams.paper_default(capacity_gbps=10,
                                                   num_flows=1)
            elif protocol == "timely":
                params = TimelyParams.paper_default(capacity_gbps=10)
            elif protocol == "dctcp":
                params = DCTCPParams()
            else:
                params = PatchedTimelyParams.paper_default(
                    capacity_gbps=10)
            sender, receiver = install_flow(net, protocol, "s0",
                                            "recv", None, 0.0, params)
            assert net.senders[sender.flow.flow_id] is sender
            assert net.registry[sender.flow.flow_id] is sender.flow

    def test_sender_kwargs_forwarded(self):
        net = single_switch(1, link_gbps=10)
        params = TimelyParams.paper_default(capacity_gbps=10)
        sender, _ = install_flow(net, "timely", "s0", "recv", None,
                                 0.0, params, pacing="burst",
                                 initial_rate=1e8)
        assert sender.pacing == "burst"
        assert sender.rate == pytest.approx(1e8)

    def test_utilization_validation(self):
        net = single_switch(1)
        with pytest.raises(ValueError):
            net.utilization(0.0)
