"""The DDE integrator against scipy on delay-free systems.

With zero delay a DDE is an ODE, so scipy's `solve_ivp` provides an
independent reference.  Hypothesis drives random stable linear systems
and random smooth nonlinear ones through both integrators.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import solve_ivp

from repro.core.fluid import dde
from repro.core.fluid.base import FluidModel


class LinearSystem(FluidModel):
    """dx/dt = A x, no delays."""

    def __init__(self, matrix, x0):
        self.matrix = np.asarray(matrix, dtype=float)
        self.x0 = np.asarray(x0, dtype=float)

    def initial_state(self):
        return self.x0.copy()

    def derivatives(self, t, state, history):
        return self.matrix @ state

    def state_labels(self):
        return [f"x{i}" for i in range(self.x0.size)]


class DrivenOscillator(FluidModel):
    """x'' + 2 zeta w x' + w^2 x = sin(t), as a first-order pair."""

    def __init__(self, omega, zeta):
        self.omega = omega
        self.zeta = zeta

    def initial_state(self):
        return np.array([1.0, 0.0])

    def derivatives(self, t, state, history):
        x, v = state
        return np.array([
            v,
            np.sin(t) - 2 * self.zeta * self.omega * v
            - self.omega ** 2 * x,
        ])

    def state_labels(self):
        return ["x", "v"]


stable_matrices = st.integers(min_value=0, max_value=10_000).map(
    lambda seed: _random_stable_matrix(seed))


def _random_stable_matrix(seed):
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(3, 3))
    # Shift the spectrum left of the imaginary axis.
    shift = max(np.real(np.linalg.eigvals(raw)).max(), 0.0) + 0.5
    return raw - shift * np.eye(3)


class TestAgainstScipy:
    @given(stable_matrices,
           st.lists(st.floats(min_value=-5, max_value=5),
                    min_size=3, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_linear_systems_match(self, matrix, x0):
        model = LinearSystem(matrix, x0)
        ours = dde.integrate(model, t_end=2.0, dt=1e-3, method="rk4")
        reference = solve_ivp(lambda t, y: matrix @ y, (0.0, 2.0),
                              np.asarray(x0, dtype=float),
                              rtol=1e-10, atol=1e-12)
        scale = max(np.max(np.abs(x0)), 1.0)
        final_ours = ours.states[-1]
        final_ref = reference.y[:, -1]
        assert final_ours == pytest.approx(final_ref,
                                           abs=1e-5 * scale)

    @given(st.floats(min_value=0.5, max_value=5.0),
           st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_driven_oscillator_matches(self, omega, zeta):
        model = DrivenOscillator(omega, zeta)
        ours = dde.integrate(model, t_end=3.0, dt=1e-3, method="rk4")

        def rhs(t, y):
            x, v = y
            return [v, np.sin(t) - 2 * zeta * omega * v
                    - omega ** 2 * x]

        reference = solve_ivp(rhs, (0.0, 3.0), [1.0, 0.0],
                              rtol=1e-10, atol=1e-12)
        assert ours.final("x") == pytest.approx(reference.y[0, -1],
                                                abs=1e-5)

    def test_matrix_exponential_exact_case(self):
        """Analytic closed form: the 2x2 rotation-decay block."""
        a = np.array([[-1.0, -2.0], [2.0, -1.0]])
        model = LinearSystem(a, [1.0, 0.0])
        trace = dde.integrate(model, t_end=1.0, dt=5e-4, method="rk4")
        expected = np.exp(-1.0) * np.array([np.cos(2.0), np.sin(2.0)])
        assert trace.states[-1] == pytest.approx(expected, abs=1e-7)
