"""Property-based tests over the analytic core (hypothesis).

Random-but-sane parameter sets must preserve the theorems' structure:
DCQCN's fixed point exists, is unique, and is stationary; Eq. 31 is
exact for patched TIMELY; linearizations agree regardless of the
operating point.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.fixedpoint.dcqcn import (fixed_point_mismatch,
                                         solve_fixed_point)
from repro.core.fixedpoint.timely import (patched_fixed_point,
                                          patched_residual)
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fluid.history import UniformHistory
from repro.core.params import DCQCNParams, PatchedTimelyParams
from repro.core.stability.analytic import flow_jacobians
from repro.core.stability.dcqcn_margin import DCQCNLoopGain

#: Parameter-space strategy for DCQCN: capacities 10-100 Gbps, up to
#: 40 flows, sane timer ranges.
dcqcn_params = st.builds(
    lambda gbps, n, tau_us, rai_mbps: DCQCNParams.paper_default(
        capacity_gbps=gbps, num_flows=n).replace(
            tau=units.us(tau_us),
            tau_prime=units.us(tau_us + 5.0),
            rate_ai=units.mbps_to_pps(rai_mbps)),
    st.floats(min_value=10.0, max_value=100.0),
    st.integers(min_value=1, max_value=40),
    st.floats(min_value=20.0, max_value=100.0),
    st.floats(min_value=5.0, max_value=200.0),
)

patched_params = st.builds(
    lambda gbps, n: PatchedTimelyParams.paper_default(
        capacity_gbps=gbps, num_flows=n),
    st.floats(min_value=5.0, max_value=40.0),
    st.integers(min_value=1, max_value=30),
)


class TestDCQCNFixedPointProperties:
    @given(dcqcn_params)
    @settings(max_examples=30, deadline=None)
    def test_fixed_point_exists_and_is_interior(self, params):
        fp = solve_fixed_point(params, extend_red=True)
        assert 0.0 < fp.p < 1.0
        assert fp.queue > params.red.kmin
        assert fp.rate == pytest.approx(params.fair_share)
        assert 0.0 < fp.alpha < 1.0
        assert fp.target_rate > fp.rate

    @given(dcqcn_params)
    @settings(max_examples=20, deadline=None)
    def test_mismatch_brackets_root(self, params):
        fp = solve_fixed_point(params, extend_red=True)
        assert fixed_point_mismatch(fp.p * 0.5, params) < 0
        high = min(fp.p * 2.0, 0.99)
        assert fixed_point_mismatch(high, params) > 0

    @given(dcqcn_params)
    @settings(max_examples=15, deadline=None)
    def test_fixed_point_is_stationary(self, params):
        fp = solve_fixed_point(params, extend_red=True)
        model = DCQCNFluidModel(params, extend_red=True)
        state = fp.as_vector(params)
        history = UniformHistory(0.0, 1e-6, state)
        deriv = model.derivatives(0.0, state, history)
        rate_scale = params.fair_share
        assert abs(deriv[0]) < 1e-6 * params.capacity
        assert np.all(np.abs(deriv[model.rc_slice()]) < 1e-3
                      * rate_scale)

    @given(dcqcn_params)
    @settings(max_examples=15, deadline=None)
    def test_analytic_jacobians_match_numeric(self, params):
        numeric = DCQCNLoopGain(params, jacobian_mode="numeric")
        fp = numeric.fixed_point
        closed = flow_jacobians(params, fp)
        assert closed.m0 == pytest.approx(numeric.m0, rel=1e-4,
                                          abs=1e-6)
        assert closed.b_p == pytest.approx(numeric.b_p, rel=1e-4)


class TestPatchedTimelyProperties:
    @given(patched_params)
    @settings(max_examples=30, deadline=None)
    def test_eq31_point_is_stationary_when_in_band(self, patched):
        base = patched.base
        if not base.q_low <= patched.fixed_point_queue <= base.q_high:
            with pytest.raises(ValueError):
                patched_fixed_point(patched)
            return
        point = patched_fixed_point(patched)
        scale = base.delta / base.min_rtt
        assert patched_residual(patched, point) < 1e-9 * scale

    @given(patched_params,
           st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_perturbed_queue_is_not_stationary(self, patched, factor):
        base = patched.base
        if not base.q_low <= patched.fixed_point_queue <= base.q_high:
            return
        point = patched_fixed_point(patched)
        if abs(factor - 1.0) < 0.05:
            return
        from repro.core.fixedpoint.timely import TimelyFixedPoint
        off = TimelyFixedPoint(rates=point.rates,
                               queue=point.queue * factor)
        assert patched_residual(patched, off) > 0
