"""Calendar scheduler: heap-equivalence properties, adaptation, resume."""

import random

import pytest

from repro.sim.engine import SCHEDULERS, SimulationAborted, Simulator
from repro.sim.scheduler import (
    NEAR_SPLIT_LIMIT,
    SPAN_MAX_BATCH,
    CalendarScheduler,
)


def _random_workload(sim, rng, total_events):
    """Drive ``sim`` with a randomized self-extending schedule.

    Exercises every ordering hazard at once: simultaneous events
    (zero-delay ties resolved by scheduling order), events scheduling
    into the open window, far-future jumps, and cancellations.  The
    returned trace captures ``(time, tag)`` in serve order, so two
    backends agree iff they serve the exact same event sequence.
    """
    trace = []
    handles = []

    def fire(tag):
        trace.append((sim.now, tag))
        if len(trace) >= total_events:
            return
        for _ in range(rng.randrange(3)):
            delay = rng.choice(
                [0.0, 0.0, 1e-9, rng.random() * 1e-6,
                 rng.random() * 1e-4, rng.random() * 1e-2])
            handles.append(sim.schedule(delay, fire, len(trace)))
        if handles and rng.random() < 0.05:
            handles[rng.randrange(len(handles))].cancel()

    for i in range(50):
        handles.append(sim.schedule(rng.random() * 1e-4, fire, -i))
    for i in range(0, 50, 7):
        handles[i].cancel()
    sim.run()
    return trace


class TestHeapEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_schedules_identical(self, seed):
        traces = {}
        for backend in SCHEDULERS:
            sim = Simulator(scheduler=backend)
            traces[backend] = _random_workload(
                sim, random.Random(seed), total_events=3000)
        assert traces["calendar"] == traces["heap"]

    def test_fifo_ties_across_bucket_sizes(self):
        # Many equal timestamps, scheduled from different engine states,
        # must serve in scheduling order on both backends.
        logs = {}
        for backend in SCHEDULERS:
            sim = Simulator(scheduler=backend)
            log = []
            for i in range(2 * NEAR_SPLIT_LIMIT):
                sim.schedule(1e-3, log.append, i)
                sim.schedule(2e-3, log.append, -i)
            sim.run()
            logs[backend] = log
        assert logs["calendar"] == logs["heap"]

    def test_cancelled_events_skipped(self):
        for backend in SCHEDULERS:
            sim = Simulator(scheduler=backend)
            log = []
            keep = sim.schedule(1e-3, log.append, "keep")
            drop = sim.schedule(1e-3, log.append, "drop")
            late = sim.schedule(2e-3, log.append, "late")
            drop.cancel()
            assert sim.pending_events == 3  # lazy removal counts it
            sim.run()
            assert log == ["keep", "late"]
            assert not keep.cancelled and late.cancelled is False

    def test_cancel_from_inside_callback(self):
        for backend in SCHEDULERS:
            sim = Simulator(scheduler=backend)
            log = []
            victim = sim.schedule(2e-3, log.append, "victim")
            sim.schedule(1e-3, victim.cancel)
            sim.schedule(3e-3, log.append, "after")
            sim.run()
            assert log == ["after"]

    def test_dense_timer_wheel_identical(self):
        # The width-adaptation stress shape: many concurrent periodic
        # timers with near-identical periods.  Forces window splits,
        # rehashes and compaction on the calendar backend.
        logs = {}
        for backend in SCHEDULERS:
            sim = Simulator(scheduler=backend)
            log = []

            def tick(tag, gap, sim=sim, log=log):
                log.append((sim.now, tag))
                if len(log) < 20_000:
                    sim.schedule(gap, tick, tag, gap)

            for i in range(SPAN_MAX_BATCH + 100):
                sim.schedule(0.0, tick, i, 1e-6 + i * 3e-9)
            sim.run()
            logs[backend] = log
        assert logs["calendar"] == logs["heap"]


class TestCalendarResume:
    def test_max_events_abort_then_resume_matches_oracle(self):
        oracle = Simulator(scheduler="heap")
        reference = _random_workload(
            oracle, random.Random(99), total_events=2000)

        sim = Simulator(scheduler="calendar")
        trace = []
        handles = []
        rng = random.Random(99)

        def fire(tag):
            trace.append((sim.now, tag))
            if len(trace) >= 2000:
                return
            for _ in range(rng.randrange(3)):
                delay = rng.choice(
                    [0.0, 0.0, 1e-9, rng.random() * 1e-6,
                     rng.random() * 1e-4, rng.random() * 1e-2])
                handles.append(sim.schedule(delay, fire, len(trace)))
            if handles and rng.random() < 0.05:
                handles[rng.randrange(len(handles))].cancel()

        for i in range(50):
            handles.append(sim.schedule(rng.random() * 1e-4, fire, -i))
        for i in range(0, 50, 7):
            handles[i].cancel()

        aborts = 0
        while True:
            try:
                sim.run(max_events=137)
                break
            except SimulationAborted as exc:
                aborts += 1
                assert exc.reason == "max_events"
                assert exc.events_processed == 137
        assert aborts >= 2  # actually exercised mid-run resume
        assert trace == reference

    def test_until_pauses_and_resumes(self):
        for backend in SCHEDULERS:
            sim = Simulator(scheduler=backend)
            log = []
            for t in (1e-3, 2e-3, 3e-3):
                sim.schedule_at(t, log.append, t)
            sim.run(until=1.5e-3)
            assert log == [1e-3]
            assert sim.now == pytest.approx(1.5e-3)
            sim.run()
            assert log == [1e-3, 2e-3, 3e-3]

    def test_stop_then_resume(self):
        sim = Simulator(scheduler="calendar")
        log = []
        sim.schedule(1e-3, log.append, "a")
        sim.schedule(2e-3, sim.stop)
        sim.schedule(3e-3, log.append, "b")
        sim.run()
        assert log == ["a"]
        sim.run()
        assert log == ["a", "b"]


class TestCalendarInternals:
    def test_pop_order_random(self):
        rng = random.Random(7)
        cal = CalendarScheduler()
        entries = [(rng.random() * rng.choice([1e-6, 1e-3, 1.0]), seq, None)
                   for seq in range(5000)]
        for e in entries:
            cal.push(e)
        served = []
        while True:
            entry = cal.pop()
            if entry is None:
                break
            served.append(entry)
        assert served == sorted(entries)
        assert len(cal) == 0

    def test_len_and_peek(self):
        cal = CalendarScheduler()
        assert cal.peek() is None and len(cal) == 0
        cal.push((2.0, 1, None))
        cal.push((1.0, 2, None))
        assert len(cal) == 2
        assert cal.peek() == (1.0, 2, None)
        assert len(cal) == 2  # peek does not consume
        assert cal.pop() == (1.0, 2, None)
        assert len(cal) == 1

    def test_push_batch(self):
        cal = CalendarScheduler()
        cal.push_batch([(3.0, 1, None), (1.0, 2, None), (2.0, 3, None)])
        assert [cal.pop() for _ in range(3)] == [
            (1.0, 2, None), (2.0, 3, None), (3.0, 1, None)]

    def test_width_shrinks_under_dense_horizon(self):
        # A pending set far denser than the default width must force
        # the adaptive rehash; otherwise serving degenerates into
        # window<->bucket ping-pong (the pathology this guards).
        cal = CalendarScheduler()
        start = cal.width
        order = list(range(4 * SPAN_MAX_BATCH))
        random.Random(11).shuffle(order)
        for seq, t in enumerate(order):
            cal.push((t * 1e-9, seq, None))
        while cal.pop() is not None:
            pass
        assert cal.width < start

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            CalendarScheduler(width=0.0)

    def test_invalid_scheduler_name_rejected(self):
        with pytest.raises(ValueError):
            Simulator(scheduler="wheel")
