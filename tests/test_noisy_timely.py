"""Noise-injected TIMELY: the de-correlation conjecture machinery."""

import numpy as np
import pytest

from repro.core.fluid.history import UniformHistory
from repro.core.fluid.noisy_timely import NoisyTimelyFluidModel
from repro.core.fluid.timely import TimelyFluidModel
from repro.core.params import TimelyParams
from repro.experiments import ext_noise_decorrelation


def make_model(amplitude=16.0, **kw):
    params = TimelyParams.paper_default(num_flows=2)
    return NoisyTimelyFluidModel(params, amplitude, seed=1, **kw)


class TestNoiseProcess:
    def test_zero_mean_and_bounded(self):
        model = make_model(amplitude=10.0)
        samples = np.array([model.measurement_noise(t * 31e-6)
                            for t in range(2000)])
        assert np.all(np.abs(samples) <= 10.0)
        assert abs(samples.mean()) < 1.0

    def test_flows_get_independent_streams(self):
        model = make_model(amplitude=10.0)
        samples = np.array([model.measurement_noise(t * 31e-6)
                            for t in range(500)])
        correlation = np.corrcoef(samples[:, 0], samples[:, 1])[0, 1]
        assert abs(correlation) < 0.2

    def test_zero_amplitude_matches_plain_model(self):
        params = TimelyParams.paper_default(num_flows=2)
        noisy = NoisyTimelyFluidModel(params, 0.0, seed=1)
        plain = TimelyFluidModel(params)
        state = plain.initial_state()
        state[plain.queue_index] = 100.0
        history = UniformHistory(0.0, 1e-6, state)
        assert noisy.derivatives(0.0, state, history) == \
            pytest.approx(plain.derivatives(0.0, state, history))

    def test_noise_only_touches_gradients(self):
        model = make_model(amplitude=50.0)
        params = model.params
        plain = TimelyFluidModel(params)
        state = plain.initial_state()
        state[plain.queue_index] = 200.0
        history = UniformHistory(0.0, 1e-6, state)
        noisy_deriv = model.derivatives(0.0, state, history)
        plain_deriv = plain.derivatives(0.0, state, history)
        assert noisy_deriv[model.queue_index] == \
            plain_deriv[plain.queue_index]
        assert noisy_deriv[model.rate_slice()] == pytest.approx(
            plain_deriv[plain.rate_slice()])

    def test_validation(self):
        with pytest.raises(ValueError):
            make_model(amplitude=-1.0)


class TestDecorrelation:
    def test_noise_shrinks_the_frozen_asymmetry(self):
        """The conjecture, quantified: 16-packet noise pulls the 7/3
        split several times closer to fair than the noiseless run."""
        rows = ext_noise_decorrelation.run(
            noise_amplitudes=(0.0, 16.0), duration=0.12)
        noiseless, noisy = rows
        assert noiseless.max_min > 2.5      # Theorem 4's frozen split
        assert noisy.max_min < 1.8
        assert noisy.jain_index > noiseless.jain_index

    def test_report_renders(self):
        rows = ext_noise_decorrelation.run(noise_amplitudes=(0.0,),
                                           duration=0.03)
        out = ext_noise_decorrelation.report(rows)
        assert "noise" in out
