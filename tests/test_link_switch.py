"""Ports, links, switches: serialization timing, forwarding, marking."""

import pytest

from repro.core.params import REDParams
from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet
from repro.sim.red import REDMarker
from repro.sim.switch import Switch, connect


class Sink:
    """Terminal device recording arrivals."""

    def __init__(self, name="sink"):
        self.name = name
        self.arrivals = []

    def receive(self, packet, ingress=None):
        self.arrivals.append((packet, ingress))


def make_port(sim, sink, rate=1e9, delay=1e-6, **kw):
    link = Link(sim, delay, sink, ingress_label="up")
    return Port(sim, rate, link, **kw)


def data_packet(size=1000, flow=0, dst="sink"):
    return Packet(flow, size, "s0", dst, kind="data")


class TestPortTiming:
    def test_serialization_plus_propagation(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, rate=1e6, delay=0.5)
        port.send(data_packet(1000))
        sim.run()
        # 1000 B at 1e6 B/s = 1 ms serialization + 0.5 s propagation.
        assert sim.now == pytest.approx(0.001 + 0.5)
        assert len(sink.arrivals) == 1

    def test_back_to_back_serialization(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, rate=1e6, delay=0.0)
        for _ in range(3):
            port.send(data_packet(1000))
        sim.run()
        assert sim.now == pytest.approx(0.003)
        assert port.packets_transmitted == 3
        assert port.bytes_transmitted == 3000

    def test_ingress_label_delivered(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink)
        port.send(data_packet())
        sim.run()
        assert sink.arrivals[0][1] == "up"

    def test_pause_holds_queue(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, rate=1e6, delay=0.0)
        port.pause()
        port.send(data_packet())
        sim.run()
        assert not sink.arrivals
        port.resume()
        sim.run()
        assert len(sink.arrivals) == 1

    def test_pause_mid_transmission_completes_current(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, rate=1e6, delay=0.0)
        port.send(data_packet(1000))
        port.send(data_packet(1000))
        sim.schedule(0.0005, port.pause)
        sim.run()
        assert len(sink.arrivals) == 1  # first finished, second held
        port.resume()
        sim.run()
        assert len(sink.arrivals) == 2

    def test_on_transmit_hook(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink)
        seen = []
        port.on_transmit = seen.append
        port.send(data_packet())
        sim.run()
        assert len(seen) == 1

    def test_validation(self):
        sim = Simulator()
        sink = Sink()
        with pytest.raises(ValueError):
            make_port(sim, sink, rate=0.0)
        with pytest.raises(ValueError):
            Link(sim, -1.0, sink)
        with pytest.raises(ValueError):
            make_port(sim, sink, marking_point="middle")


class TestMarkingPoints:
    def saturated_marker(self):
        # kmin tiny so everything above 1 packet marks with pmax=1.
        red = REDParams(kmin=0.5, kmax=1.0, pmax=0.999999)
        return REDMarker(red, 1024, seed=0)

    def test_egress_marks_on_departure_queue(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, rate=1e6, delay=0.0,
                         marker=self.saturated_marker(),
                         marking_point="egress")
        # Two packets: when the first departs the backlog is 2 packets
        # (itself + one waiting) -> marked; when the second departs the
        # backlog is 1 packet -> also above kmin=0.5... use arrival
        # pattern instead: send one packet, queue never exceeds itself.
        port.send(data_packet(1024))
        sim.run()
        (packet, _), = sink.arrivals
        # Single packet: occupancy at departure = 1 packet > kmin -> marked.
        assert packet.ecn_marked

    def test_control_packets_never_marked(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, rate=1e6, delay=0.0,
                         marker=self.saturated_marker())
        cnp = Packet(0, 64, "s0", "sink", kind="cnp")
        port.send(cnp)
        sim.run()
        assert not sink.arrivals[0][0].ecn_marked

    def test_ingress_marks_at_enqueue(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, rate=1e3, delay=0.0,
                         marker=self.saturated_marker(),
                         marking_point="ingress")
        packet = data_packet(1024)
        port.send(packet)
        # Decision already taken at enqueue time.
        assert packet.ecn_marked

    def test_egress_mark_reflects_departure_not_arrival(self):
        """A packet arriving at a long queue but departing from an
        empty one must NOT be marked under egress marking."""
        sim = Simulator()
        sink = Sink()
        red = REDParams(kmin=2.5, kmax=3.0, pmax=0.999999)
        port = make_port(sim, sink, rate=1e6, delay=0.0,
                         marker=REDMarker(red, 1024, seed=0),
                         marking_point="egress")
        for _ in range(4):
            port.send(data_packet(1024))
        sim.run()
        # The first packet starts serializing the moment it arrives
        # (backlog 1); the rest see departure backlogs 3, 2, 1.  Only
        # the departure backlog of 3 exceeds kmin=2.5 -- even though
        # packets 3 and 4 *arrived* at a 3-4 deep queue.
        marks = [p.ecn_marked for p, _ in sink.arrivals]
        assert marks == [False, True, False, False]


class TestSwitch:
    def build(self):
        sim = Simulator()
        switch = Switch(sim, "sw")
        sink_a = Sink("a")
        sink_b = Sink("b")
        connect(sim, switch, sink_a, 1e9, 1e-6)
        connect(sim, switch, sink_b, 1e9, 1e-6)
        switch.add_route("a", "a")
        switch.add_route("b", "b")
        return sim, switch, sink_a, sink_b

    def test_forwards_by_destination(self):
        sim, switch, sink_a, sink_b = self.build()
        switch.receive(data_packet(dst="a"))
        switch.receive(data_packet(dst="b"))
        switch.receive(data_packet(dst="b"))
        sim.run()
        assert len(sink_a.arrivals) == 1
        assert len(sink_b.arrivals) == 2
        assert switch.packets_forwarded == 3

    def test_unknown_destination_raises(self):
        sim, switch, _, _ = self.build()
        with pytest.raises(KeyError):
            switch.receive(data_packet(dst="nowhere"))

    def test_duplicate_port_rejected(self):
        sim, switch, sink_a, _ = self.build()
        with pytest.raises(ValueError):
            connect(sim, switch, sink_a, 1e9, 1e-6)

    def test_route_requires_attached_port(self):
        sim = Simulator()
        switch = Switch(sim, "sw")
        with pytest.raises(ValueError):
            switch.add_route("x", "missing")

    def test_port_for_lookup(self):
        _, switch, _, _ = self.build()
        assert switch.port_for("a") is switch.ports["a"]
