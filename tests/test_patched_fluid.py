"""Patched TIMELY fluid model (Eq. 29/30) and its PI variant."""

import numpy as np
import pytest

from repro import units
from repro.core.fluid import dde
from repro.core.fluid.history import UniformHistory
from repro.core.fluid.patched_timely import PatchedTimelyFluidModel
from repro.core.fluid.pi import DCQCNPIFluidModel, PatchedTimelyPIFluidModel
from repro.core.params import PIParams, PatchedTimelyParams


class TestWeights:
    def test_vectorized_matches_scalar(self, patched_params):
        model = PatchedTimelyFluidModel(patched_params)
        gradients = np.array([-1.0, -0.1, 0.0, 0.1, 1.0])
        vectorized = model.weights(gradients)
        scalar = [patched_params.weight(g) for g in gradients]
        assert vectorized == pytest.approx(scalar)


class TestRateLaw:
    def rate_deriv(self, params, queue, gradient):
        model = PatchedTimelyFluidModel(params)
        rates = np.full(2, params.base.fair_share)
        tau = model.update_intervals(rates)
        return model.rate_derivative(queue, np.full(2, gradient),
                                     rates, tau)

    def test_stationary_at_eq31_queue(self, patched_params):
        deriv = self.rate_deriv(patched_params,
                                patched_params.fixed_point_queue, 0.0)
        scale = patched_params.base.delta / patched_params.base.min_rtt
        assert np.all(np.abs(deriv) < 1e-9 * scale)

    def test_decreases_above_eq31_queue(self, patched_params):
        deriv = self.rate_deriv(patched_params,
                                patched_params.fixed_point_queue * 1.5,
                                0.0)
        assert np.all(deriv < 0)

    def test_increases_below_eq31_queue(self, patched_params):
        queue = (patched_params.base.q_low
                 + patched_params.fixed_point_queue) / 2
        deriv = self.rate_deriv(patched_params, queue, 0.0)
        assert np.all(deriv > 0)

    def test_t_high_branch_uses_base_beta(self, patched_params):
        """The emergency brake must stay strong (base beta, not 0.008)."""
        queue = patched_params.base.q_high * 2.0
        deriv = self.rate_deriv(patched_params, queue, 0.0)
        base = patched_params.base
        rates = np.full(2, base.fair_share)
        model = PatchedTimelyFluidModel(patched_params)
        tau = model.update_intervals(rates)
        expected = -(base.beta / tau) * (1 - base.q_high / queue) * rates
        assert deriv == pytest.approx(expected)


class TestConvergence:
    def test_asymmetric_start_converges_to_fair(self, patched_params):
        mtu = patched_params.base.mtu_bytes
        model = PatchedTimelyFluidModel(
            patched_params,
            initial_rates=[units.gbps_to_pps(7, mtu),
                           units.gbps_to_pps(3, mtu)])
        trace = dde.integrate(model, 0.08, dt=1e-6, record_stride=20)
        r0 = trace.tail_mean("r[0]", 0.01)
        r1 = trace.tail_mean("r[1]", 0.01)
        assert r0 == pytest.approx(r1, rel=0.05)
        assert r0 == pytest.approx(patched_params.base.fair_share,
                                   rel=0.05)

    def test_queue_converges_to_eq31(self, patched_params):
        model = PatchedTimelyFluidModel(patched_params)
        trace = dde.integrate(model, 0.08, dt=1e-6, record_stride=20)
        assert trace.tail_mean("q", 0.01) == pytest.approx(
            patched_params.fixed_point_queue, rel=0.03)
        assert trace.tail_std("q", 0.01) < \
            0.02 * patched_params.fixed_point_queue

    def test_large_n_oscillates(self):
        """Fig. 12(c): beyond the Fig. 11 margin crossover."""
        patched = PatchedTimelyParams.paper_default(num_flows=40)
        trace = dde.integrate(PatchedTimelyFluidModel(patched), 0.15,
                              dt=1e-6, record_stride=50)
        rel = trace.tail_std("q", 0.03) / trace.tail_mean("q", 0.03)
        assert rel > 0.05


class TestDCQCNPIModel:
    def test_state_layout_appends_p_mark(self, dcqcn_params):
        pi = PIParams.for_dcqcn(100.0)
        model = DCQCNPIFluidModel(dcqcn_params, pi)
        labels = model.state_labels()
        assert labels[-1] == "p_mark"
        assert model.initial_state().shape == (len(labels),)

    def test_marking_is_the_delayed_pi_state(self, dcqcn_params):
        pi = PIParams.for_dcqcn(100.0)
        model = DCQCNPIFluidModel(dcqcn_params, pi)
        state = model.initial_state()
        state[model.p_mark_index] = 0.4
        history = UniformHistory(0.0, 1e-6, state)
        assert model.marking_probability(1.0, history) == \
            pytest.approx(0.4)

    def test_p_integrates_queue_error(self, dcqcn_params):
        # Rates exactly fill the link (dq/dt = 0), so the proportional
        # term vanishes and the integral term alone must push p up
        # while the queue sits above the reference.
        pi = PIParams.for_dcqcn(100.0)
        half = dcqcn_params.capacity / 2
        model = DCQCNPIFluidModel(dcqcn_params, pi,
                                  initial_rates=[half, half],
                                  initial_queue=2 * pi.q_ref)
        state = model.initial_state()
        state[model.p_mark_index] = 0.5
        history = UniformHistory(0.0, 1e-6, state)
        deriv = model.derivatives(0.0, state, history)
        assert deriv[model.queue_index] == pytest.approx(0.0)
        assert deriv[model.p_mark_index] == pytest.approx(pi.k2)

    def test_anti_windup_freezes_at_floor(self, dcqcn_params):
        pi = PIParams.for_dcqcn(100.0)
        model = DCQCNPIFluidModel(dcqcn_params, pi,
                                  initial_rates=[1e5, 1e5],
                                  initial_queue=0.0)
        state = model.initial_state()  # p_mark = 0, queue empty
        history = UniformHistory(0.0, 1e-6, state)
        deriv = model.derivatives(0.0, state, history)
        assert deriv[model.p_mark_index] == 0.0

    def test_clamp_bounds_p(self, dcqcn_params):
        pi = PIParams.for_dcqcn(100.0)
        model = DCQCNPIFluidModel(dcqcn_params, pi)
        state = model.initial_state()
        state[model.p_mark_index] = 1.7
        assert model.clamp(state)[model.p_mark_index] == 1.0


class TestPatchedTimelyPIModel:
    def test_state_layout_appends_per_flow_p(self, patched_params):
        pi = PIParams.for_timely(300.0)
        model = PatchedTimelyPIFluidModel(patched_params, pi)
        labels = model.state_labels()
        assert labels[-2:] == ["p[0]", "p[1]"]

    def test_initial_p_override(self, patched_params):
        pi = PIParams.for_timely(300.0)
        model = PatchedTimelyPIFluidModel(patched_params, pi,
                                          initial_p=[0.1, 0.4])
        state = model.initial_state()
        assert state[model.p_slice()] == pytest.approx([0.1, 0.4])

    def test_rejects_wrong_initial_p_shape(self, patched_params):
        pi = PIParams.for_timely(300.0)
        with pytest.raises(ValueError):
            PatchedTimelyPIFluidModel(patched_params, pi,
                                      initial_p=[0.1])

    def test_unequal_p_gives_unequal_rate_derivatives(self,
                                                      patched_params):
        pi = PIParams.for_timely(300.0)
        model = PatchedTimelyPIFluidModel(patched_params, pi,
                                          initial_p=[0.1, 0.4],
                                          initial_queue=pi.q_ref)
        state = model.initial_state()
        history = UniformHistory(0.0, 1e-6, state)
        deriv = model.derivatives(0.0, state, history)
        dr = deriv[model.rate_slice()]
        # Larger p_i means stronger decrease for that flow.
        assert dr[0] > dr[1]

    def test_queue_pins_but_rates_stay_split(self, patched_params):
        """Theorem 6, delay side: delay bounded, fairness lost."""
        pi = PIParams.for_timely(300.0)
        fair = patched_params.base.fair_share
        model = PatchedTimelyPIFluidModel(
            patched_params, pi, initial_rates=[fair, fair],
            start_times=[0.0, 0.05])
        trace = dde.integrate(model, 0.4, dt=1e-6, record_stride=50)
        queue = trace.tail_mean("q", 0.05)
        assert queue == pytest.approx(pi.q_ref, rel=0.25)
        r0 = trace.tail_mean("r[0]", 0.05)
        r1 = trace.tail_mean("r[1]", 0.05)
        assert abs(r0 - r1) > 0.05 * fair
