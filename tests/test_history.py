"""UniformHistory: interpolation, pre-history, growth."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fluid.history import UniformHistory


def make_linear_history(t0=0.0, dt=0.1, steps=20, slope=2.0):
    """History recording x(t) = slope * t componentwise."""
    history = UniformHistory(t0, dt, np.array([t0 * slope]))
    for k in range(1, steps + 1):
        history.append(np.array([(t0 + k * dt) * slope]))
    return history


class TestConstruction:
    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            UniformHistory(0.0, 0.0, np.array([1.0]))

    def test_rejects_matrix_state(self):
        with pytest.raises(ValueError):
            UniformHistory(0.0, 0.1, np.zeros((2, 2)))

    def test_initial_length(self):
        history = UniformHistory(0.0, 0.1, np.array([1.0, 2.0]))
        assert len(history) == 1
        assert history.dim == 2
        assert history.latest_time == pytest.approx(0.0)


class TestLookup:
    def test_exact_grid_points(self):
        history = make_linear_history()
        assert history(0.5)[0] == pytest.approx(1.0)
        assert history(1.0)[0] == pytest.approx(2.0)

    def test_linear_interpolation_between_points(self):
        history = make_linear_history()
        assert history(0.55)[0] == pytest.approx(1.1)

    def test_constant_pre_history(self):
        history = make_linear_history(t0=1.0)
        assert history(0.0)[0] == pytest.approx(2.0)  # state at t0
        assert history(-5.0)[0] == pytest.approx(2.0)

    def test_clamps_beyond_latest(self):
        history = make_linear_history(steps=10)
        latest = history.latest_time
        assert history(latest + 1.0)[0] == pytest.approx(
            history(latest)[0])

    def test_component_matches_full_lookup(self):
        history = UniformHistory(0.0, 0.1, np.array([0.0, 10.0]))
        for k in range(1, 15):
            history.append(np.array([k * 0.1, 10.0 + k]))
        t = 0.73
        full = history(t)
        assert history.component(t, 0) == pytest.approx(full[0])
        assert history.component(t, 1) == pytest.approx(full[1])

    def test_returned_vector_is_a_copy(self):
        history = make_linear_history()
        vec = history(0.5)
        vec[0] = 999.0
        assert history(0.5)[0] == pytest.approx(1.0)


class TestGrowth:
    def test_capacity_doubling_preserves_data(self):
        history = UniformHistory(0.0, 1.0, np.array([0.0]))
        for k in range(1, 5000):
            history.append(np.array([float(k)]))
        assert len(history) == 5000
        assert history(1234.0)[0] == pytest.approx(1234.0)
        assert history(4999.0)[0] == pytest.approx(4999.0)

    def test_as_arrays_shapes(self):
        history = make_linear_history(steps=7)
        times, states = history.as_arrays()
        assert times.shape == (8,)
        assert states.shape == (8, 1)
        assert times[0] == pytest.approx(0.0)
        assert times[-1] == pytest.approx(0.7)


class TestInterpolationProperties:
    @given(st.floats(min_value=-1.0, max_value=3.0))
    def test_linear_function_reproduced_exactly(self, t):
        history = make_linear_history(steps=20, slope=3.0)
        value = history(t)[0]
        clamped_t = min(max(t, 0.0), history.latest_time)
        assert value == pytest.approx(3.0 * clamped_t, abs=1e-9)

    @given(st.lists(st.floats(min_value=-10, max_value=10),
                    min_size=2, max_size=30),
           st.floats(min_value=0.0, max_value=1.0))
    def test_interpolation_within_sample_bounds(self, values, frac):
        history = UniformHistory(0.0, 1.0, np.array([values[0]]))
        for v in values[1:]:
            history.append(np.array([v]))
        t = frac * history.latest_time
        value = history(t)[0]
        assert min(values) - 1e-9 <= value <= max(values) + 1e-9
