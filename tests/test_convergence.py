"""Discrete AIMD model (Theorem 2, Appendix B) and shared metrics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.core.convergence.discrete import (DiscreteDCQCN,
                                             alpha_fixed_point,
                                             contraction_rate,
                                             cycle_length_units,
                                             queue_buildup_units)
from repro.core.convergence.metrics import (convergence_time,
                                            jain_fairness,
                                            max_min_ratio,
                                            oscillation_amplitude)
from repro.core.params import DCQCNParams


class TestDiscreteModel:
    def test_cycles_fire(self, dcqcn_params):
        model = DiscreteDCQCN(dcqcn_params)
        cycles = model.run_cycles(5)
        assert len(cycles) == 5
        assert all(c.time_units > 0 for c in cycles)

    def test_peak_rates_exceed_capacity(self, dcqcn_params):
        """Decrease events only fire after the aggregate overshoots."""
        model = DiscreteDCQCN(dcqcn_params)
        for cycle in model.run_cycles(5):
            assert np.sum(cycle.rates_at_peak) > dcqcn_params.capacity

    def test_rate_spread_contracts(self, dcqcn_params):
        mtu = dcqcn_params.mtu_bytes
        model = DiscreteDCQCN(
            dcqcn_params,
            initial_rates=[units.gbps_to_pps(30, mtu),
                           units.gbps_to_pps(10, mtu)])
        cycles = model.run_cycles(40)
        spreads = [c.rate_spread for c in cycles]
        assert spreads[-1] < 0.12 * spreads[0]
        assert contraction_rate(spreads) < 1.0

    def test_early_contraction_matches_one_minus_alpha_half(
            self, dcqcn_params):
        """Eq. 18: the per-cycle factor is (1 - alpha(T_k)/2)."""
        mtu = dcqcn_params.mtu_bytes
        model = DiscreteDCQCN(
            dcqcn_params,
            initial_rates=[units.gbps_to_pps(30, mtu),
                           units.gbps_to_pps(10, mtu)])
        cycles = model.run_cycles(3)
        ratio = cycles[1].rate_spread / cycles[0].rate_spread
        alpha = float(np.mean(cycles[0].alphas))
        assert ratio == pytest.approx(1 - alpha / 2, rel=0.05)

    def test_alpha_spread_contracts_exponentially(self, dcqcn_params):
        """Eq. 17: alpha differences shrink by (1-g) per time unit."""
        model = DiscreteDCQCN(dcqcn_params,
                              initial_alphas=[1.0, 0.2])
        cycles = model.run_cycles(15)
        spreads = [c.alpha_spread for c in cycles]
        assert spreads[-1] < 0.2 * spreads[0]
        assert contraction_rate(spreads) < 1.0

    def test_alpha_monotone_decreasing_to_fixed_point(self,
                                                      dcqcn_params):
        """Eq. 19: alpha(T_0) > alpha(T_1) > ... > alpha* > 0."""
        model = DiscreteDCQCN(dcqcn_params)
        cycles = model.run_cycles(60)
        alphas = [float(np.mean(c.alphas)) for c in cycles]
        # Monotone descent up to the tiny limit cycle the integer
        # cycle-length quantization induces near the fixed point.
        assert all(a > b - 1e-4 for a, b in zip(alphas, alphas[1:]))
        assert alphas[0] > alphas[-1]
        alpha_star = alpha_fixed_point(dcqcn_params)
        assert alphas[-1] > alpha_star > 0
        # And it approaches alpha* within a modest factor.
        assert alphas[-1] < 3 * alpha_star

    def test_flows_converge_to_fair_share(self, dcqcn_params):
        mtu = dcqcn_params.mtu_bytes
        model = DiscreteDCQCN(
            dcqcn_params,
            initial_rates=[units.gbps_to_pps(35, mtu),
                           units.gbps_to_pps(5, mtu)])
        cycles = model.run_cycles(80)
        final = cycles[-1].rates_at_peak
        assert jain_fairness(final) > 0.999

    def test_validates_initial_shapes(self, dcqcn_params):
        with pytest.raises(ValueError):
            DiscreteDCQCN(dcqcn_params, initial_rates=[1.0])
        with pytest.raises(ValueError):
            DiscreteDCQCN(dcqcn_params, initial_alphas=[2.0, 0.5])

    def test_run_cycles_validation(self, dcqcn_params):
        with pytest.raises(ValueError):
            DiscreteDCQCN(dcqcn_params).run_cycles(0)


class TestAppendixFormulas:
    def test_queue_buildup_units_eq41(self, dcqcn_params):
        t = queue_buildup_units(dcqcn_params)
        p = dcqcn_params
        # By construction, t(t+1)/2 * N * R_AI * tau' == K_max.
        filled = t * (t + 1) / 2 * p.num_flows * p.rate_ai * p.tau_prime
        assert filled == pytest.approx(p.red.kmax, rel=1e-9)

    def test_cycle_length_grows_with_alpha(self, dcqcn_params):
        assert cycle_length_units(dcqcn_params, 0.5) > \
            cycle_length_units(dcqcn_params, 0.1)

    def test_alpha_fixed_point_solves_eq42(self, dcqcn_params):
        alpha_star = alpha_fixed_point(dcqcn_params)
        g = dcqcn_params.g
        delta_t = cycle_length_units(dcqcn_params, alpha_star)
        rhs = (1 - g) ** delta_t * ((1 - g) * alpha_star + g)
        assert alpha_star == pytest.approx(rhs, rel=1e-9)

    def test_alpha_fixed_point_in_unit_interval(self):
        for n in (2, 10, 64):
            params = DCQCNParams.paper_default(num_flows=n)
            assert 0.0 < alpha_fixed_point(params) < 1.0

    def test_contraction_rate_validation(self):
        with pytest.raises(ValueError):
            contraction_rate([0.0, 0.0])

    def test_contraction_rate_exact_geometric(self):
        series = [2.0 * 0.5 ** k for k in range(10)]
        assert contraction_rate(series) == pytest.approx(0.5, rel=1e-6)


class TestMetrics:
    def test_jain_equal_rates(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jain_single_hog(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(
            0.25)

    def test_jain_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6),
                    min_size=1, max_size=20))
    def test_jain_bounds(self, rates):
        index = jain_fairness(rates)
        assert 1.0 / len(rates) - 1e-9 <= index <= 1.0 + 1e-9

    @given(st.floats(min_value=0.01, max_value=1e3),
           st.integers(min_value=1, max_value=10))
    def test_jain_scale_invariant(self, scale, n):
        base = [float(i + 1) for i in range(n)]
        scaled = [scale * r for r in base]
        assert jain_fairness(scaled) == pytest.approx(
            jain_fairness(base), rel=1e-9)

    def test_max_min_ratio(self):
        assert max_min_ratio([2.0, 8.0]) == pytest.approx(4.0)
        assert math.isinf(max_min_ratio([0.0, 1.0]))

    def test_convergence_time_finds_settling(self):
        times = np.linspace(0, 10, 101)
        values = np.where(times < 4.0, 0.0, 1.0)
        settle = convergence_time(times, values, target=1.0,
                                  tolerance=0.1)
        assert settle == pytest.approx(4.0, abs=0.11)

    def test_convergence_time_none_when_oscillating(self):
        times = np.linspace(0, 10, 101)
        values = np.sin(times)
        assert convergence_time(times, values, 0.0, 0.1) is None

    def test_convergence_time_immediate(self):
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([1.0, 1.0, 1.0])
        assert convergence_time(times, values, 1.0, 0.1) == 0.0

    def test_oscillation_amplitude(self):
        assert oscillation_amplitude([1.0, 3.0, 2.0]) == pytest.approx(
            1.0)
        with pytest.raises(ValueError):
            oscillation_amplitude([])
