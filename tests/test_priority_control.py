"""Strict-priority control class on ports, and its experiment."""

from repro.experiments import ext_feedback_priority
from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet


class Sink:
    name = "sink"

    def __init__(self):
        self.arrivals = []

    def receive(self, packet, ingress=None):
        self.arrivals.append(packet)


def make_port(sim, sink, priority, rate=1e6):
    return Port(sim, rate, Link(sim, 0.0, sink),
                priority_control=priority)


def data(seq=0):
    return Packet(0, 1000, "s", "sink", kind="data", seq=seq)


def cnp():
    return Packet(0, 64, "s", "sink", kind="cnp")


class TestPriorityQueueing:
    def test_control_overtakes_waiting_data(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, priority=True)
        for seq in range(3):
            port.send(data(seq))
        port.send(cnp())
        sim.run()
        kinds = [p.kind for p in sink.arrivals]
        # The first data packet was already on the wire; the CNP jumps
        # every queued data packet.
        assert kinds == ["data", "cnp", "data", "data"]

    def test_fifo_keeps_arrival_order(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, priority=False)
        for seq in range(3):
            port.send(data(seq))
        port.send(cnp())
        sim.run()
        kinds = [p.kind for p in sink.arrivals]
        assert kinds == ["data", "data", "data", "cnp"]

    def test_data_order_preserved_under_priority(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, priority=True)
        port.send(data(0))
        port.send(cnp())
        port.send(data(1))
        port.send(cnp())
        sim.run()
        sequences = [p.seq for p in sink.arrivals if p.kind == "data"]
        assert sequences == [0, 1]

    def test_occupancy_counts_both_classes(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, priority=True, rate=1e3)
        port.send(data())
        port.send(data())
        port.send(cnp())
        # One data packet is on the wire; one data + one cnp queued.
        assert port.occupancy_bytes == 1000 + 64

    def test_control_is_pfc_exempt(self):
        """PFC pauses the data class; the control class keeps flowing
        (CNPs ride an unpaused priority in real deployments)."""
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, priority=True)
        port.pause()
        port.send(data())
        port.send(cnp())
        sim.run()
        assert [p.kind for p in sink.arrivals] == ["cnp"]
        port.resume()
        sim.run()
        assert [p.kind for p in sink.arrivals] == ["cnp", "data"]

    def test_pause_still_holds_data_without_priority(self):
        sim = Simulator()
        sink = Sink()
        port = make_port(sim, sink, priority=False)
        port.pause()
        port.send(data())
        port.send(cnp())
        sim.run()
        assert not sink.arrivals
        port.resume()
        sim.run()
        assert [p.kind for p in sink.arrivals] == ["data", "cnp"]


class TestFeedbackPriorityExperiment:
    def test_priority_cuts_cnp_latency(self):
        rows = ext_feedback_priority.run(duration=0.04)
        by_discipline = {r.discipline: r for r in rows}
        fifo = by_discipline["fifo"]
        priority = by_discipline["priority"]
        assert priority.cnp_delay_mean_us < 0.5 * fifo.cnp_delay_mean_us
        assert priority.cnp_delay_max_us < fifo.cnp_delay_max_us

    def test_report_renders(self):
        rows = ext_feedback_priority.run(duration=0.02)
        out = ext_feedback_priority.report(rows)
        assert "fifo" in out and "priority" in out
