"""PFC controller: thresholds, hysteresis, losslessness."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.pfc import PFCController


class PausableStub:
    """Records pause/resume callbacks."""

    def __init__(self):
        self.paused = False
        self.transitions = []

    def __call__(self, pause: bool) -> None:
        self.paused = pause
        self.transitions.append(pause)


def make_controller(sim=None, pause_at=10_000, resume_at=5_000):
    sim = sim or Simulator()
    controller = PFCController(sim, pause_at, resume_at)
    stub = PausableStub()
    controller.register_upstream("up", stub)
    return sim, controller, stub


class TestThresholds:
    def test_pause_at_watermark(self):
        sim, controller, stub = make_controller()
        controller.on_ingress("up", 9_999)
        sim.run()
        assert not stub.paused
        controller.on_ingress("up", 1)
        sim.run()
        assert stub.paused
        assert controller.pauses_sent == 1

    def test_resume_with_hysteresis(self):
        sim, controller, stub = make_controller()
        controller.on_ingress("up", 12_000)
        sim.run()
        assert stub.paused
        controller.on_egress("up", 6_000)  # 6000 left, above resume=5000
        sim.run()
        assert stub.paused
        controller.on_egress("up", 1_500)  # 4500 left
        sim.run()
        assert not stub.paused
        assert controller.resumes_sent == 1

    def test_no_duplicate_pauses(self):
        sim, controller, stub = make_controller()
        controller.on_ingress("up", 11_000)
        controller.on_ingress("up", 11_000)
        sim.run()
        assert stub.transitions == [True]

    def test_buffered_accounting(self):
        sim, controller, _ = make_controller()
        controller.on_ingress("up", 3_000)
        controller.on_egress("up", 1_000)
        assert controller.buffered_bytes("up") == 2_000

    def test_negative_accounting_raises(self):
        _, controller, _ = make_controller()
        controller.on_ingress("up", 100)
        with pytest.raises(RuntimeError):
            controller.on_egress("up", 200)

    def test_untracked_upstream_ignored(self):
        _, controller, _ = make_controller()
        controller.on_ingress("other", 1_000_000)  # no explosion
        assert controller.buffered_bytes("other") == 0

    def test_reverse_delay_defers_pause(self):
        sim = Simulator()
        controller = PFCController(sim, 1_000, 500)
        stub = PausableStub()
        controller.register_upstream("up", stub, reverse_delay=0.25)
        controller.on_ingress("up", 2_000)
        assert not stub.paused  # frame still in flight
        sim.run()
        assert stub.paused
        assert sim.now == pytest.approx(0.25)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PFCController(sim, 1_000, 1_000)
        with pytest.raises(ValueError):
            PFCController(sim, 1_000, -5)


class TestLosslessness:
    def test_pfc_prevents_drops_at_finite_buffer(self):
        """End-to-end: a fast sender into a slow switch egress with a
        finite queue drops packets without PFC and none with it."""
        from repro.sim.packet import Packet
        from repro.sim.switch import Switch, connect

        def run_once(with_pfc: bool) -> int:
            sim = Simulator()
            pfc = None
            if with_pfc:
                pfc = PFCController(sim, pause_threshold_bytes=20_000,
                                    resume_threshold_bytes=10_000)
            switch = Switch(sim, "sw", pfc=pfc)

            class Sink:
                name = "dst"

                def receive(self, packet, ingress=None):
                    pass

            # Slow egress with a finite 40 KB buffer.
            port = connect(sim, switch, Sink(), 1e6, 1e-6,
                           capacity_bytes=40_000)
            switch.add_route("dst", "dst")

            # Fast upstream host feeding the switch.
            class Source:
                name = "src"
            source = Source()
            up_port = connect(sim, source, switch, 1e8, 1e-6)
            if with_pfc:
                pfc.register_upstream(
                    "src",
                    lambda pause: up_port.pause() if pause
                    else up_port.resume(),
                    reverse_delay=1e-6)

            for i in range(100):
                up_port.send(Packet(0, 1024, "src", "dst", kind="data",
                                    seq=i))
            sim.run(until=0.5)
            return port.queue.dropped_packets

        assert run_once(with_pfc=False) > 0
        assert run_once(with_pfc=True) == 0
