"""Adversarial CalendarScheduler workloads, cross-checked vs the heap.

The shapes the original property tests (``test_scheduler.py``) under-
sample, each a known calendar-queue failure mode:

* **far-future spills** -- entries landing far beyond the open
  window while it is mid-split, exercising the overflow spill path;
* **mass re-bucketing during rotation** -- width adaptations forced
  *between* pops, so buckets are rehashed while the wheel is being
  served;
* **tie-heavy boundary traffic** -- equal timestamps pinned to exact
  bucket-width multiples, where a bucketing bug would break the
  ``(time, seq)`` FIFO contract without moving any clock.

Every test drives the calendar and a plain heap through the same
operation sequence and requires identical serve order -- the same
contract the ``repro fuzz`` scheduler class checks end to end.
"""

import heapq
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.scheduler import (
    DEFAULT_WIDTH,
    NEAR_SPLIT_LIMIT,
    SPAN_MAX_BATCH,
    CalendarScheduler,
)


def _drive(cal, heap, ops, rng, make_offset):
    """Interleave pushes and pops, asserting identical serve order.

    Respects the engine contract the scheduler is specified against:
    nothing is ever pushed before the last served time, and ``seq``
    is monotone.
    """
    now = 0.0
    seq = 0
    for _ in range(ops):
        if rng.random() < 0.6 or not heap:
            for _ in range(rng.randrange(1, 40)):
                entry = (now + make_offset(rng), seq, None)
                seq += 1
                cal.push(entry)
                heapq.heappush(heap, entry)
        else:
            for _ in range(rng.randrange(1, 30)):
                if not heap:
                    break
                expected = heapq.heappop(heap)
                assert cal.pop() == expected
                now = expected[0]
    while heap:
        expected = heapq.heappop(heap)
        assert cal.pop() == expected
    assert cal.pop() is None and len(cal) == 0


class TestFarFutureSpills:
    def test_spill_path_keeps_sorted_order(self):
        # Grow the open window past the split trigger, then rain
        # far-future entries into it: the split must spill overflow
        # into buckets without reordering anything.
        rng = random.Random(3)
        cal = CalendarScheduler()
        heap = []

        def offsets(rng):
            return rng.choice([
                rng.random() * 1e-7,            # open window
                rng.random() * 1e-2,            # a few buckets out
                1.0 + rng.random() * 1e3,       # far future
            ])

        _drive(cal, heap, ops=300, rng=rng, make_offset=offsets)
        assert cal.spills > 0

    def test_descending_pushes_grow_and_split_the_window(self):
        cal = CalendarScheduler()
        n = 4 * NEAR_SPLIT_LIMIT
        entries = [(1.0 + (n - i) * 1e-9, i, None) for i in range(n)]
        for entry in entries:                  # descending times:
            cal.push(entry)                    # every push insorts
        assert cal.spills > 0
        served = []
        while True:
            entry = cal.pop()
            if entry is None:
                break
            served.append(entry)
        assert served == sorted(entries)


class TestRebucketingDuringRotation:
    def test_width_adaptation_mid_serve(self):
        # Alternate dense nanosecond clusters (forcing the width
        # down) with sparse multi-second horizons (forcing it back
        # up), popping in between so every rehash happens on a
        # partially-served wheel.
        rng = random.Random(17)
        cal = CalendarScheduler()
        heap = []
        phase = [0]

        def offsets(rng):
            phase[0] += 1
            if (phase[0] // 500) % 2 == 0:
                return rng.random() * 1e-9 * SPAN_MAX_BATCH
            return rng.random() * 10.0

        _drive(cal, heap, ops=400, rng=rng, make_offset=offsets)
        assert cal.rehashes > 0

    def test_engine_level_dense_sparse_alternation(self):
        logs = {}
        for backend in ("heap", "calendar"):
            sim = Simulator(scheduler=backend)
            log = []

            def burst(tag, sim=sim, log=log):
                log.append((sim.now, tag))
                if len(log) >= 6000:
                    return
                # Dense cluster now, a sparse far echo later.
                sim.schedule(1e-9 * (tag % 97), burst, tag + 1)
                if tag % 13 == 0:
                    sim.schedule(0.5 + 1e-6 * tag, burst, tag + 7)

            for i in range(40):
                sim.schedule(i * 1e-8, burst, i)
            sim.run()
            logs[backend] = log
        assert logs["calendar"] == logs["heap"]


class TestBoundaryTies:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_ties_at_bucket_boundaries(self, seed):
        # Timestamps pinned to exact width multiples (bucket edges)
        # with heavy duplication: FIFO among equal times must match
        # the heap under any bucket assignment.
        rng = random.Random(seed)
        cal = CalendarScheduler()
        heap = []

        def offsets(rng):
            k = rng.randrange(0, 5)
            return rng.choice([
                0.0,                            # tie with `now`
                k * DEFAULT_WIDTH,              # exact bucket edge
                k * DEFAULT_WIDTH + 1e-12,      # just past the edge
            ])

        _drive(cal, heap, ops=120, rng=rng, make_offset=offsets)

    def test_giant_equal_time_run(self):
        # A run of equal timestamps longer than the split trigger:
        # the split cannot separate them (single key), so the window
        # must keep FIFO order through the failed-split fallback.
        cal = CalendarScheduler()
        n = 3 * NEAR_SPLIT_LIMIT
        entries = [(1e-3, i, None) for i in range(n)]
        entries += [(2e-3, n + i, None) for i in range(16)]
        for entry in entries:
            cal.push(entry)
        served = [cal.pop() for _ in range(len(entries))]
        assert served == entries
        assert cal.pop() is None

    def test_engine_level_boundary_ties(self):
        logs = {}
        for backend in ("heap", "calendar"):
            sim = Simulator(scheduler=backend)
            log = []
            rng = random.Random(23)

            def tick(tag, sim=sim, log=log, rng=rng):
                log.append((sim.now, tag))
                if len(log) >= 5000:
                    return
                gap = rng.choice([0.0, DEFAULT_WIDTH,
                                  2 * DEFAULT_WIDTH])
                sim.schedule(gap, tick, tag + 1)
                if tag % 11 == 0:
                    sim.schedule(0.0, tick, -tag)

            for i in range(30):
                sim.schedule(i * DEFAULT_WIDTH, tick, i)
            sim.run()
            logs[backend] = log
        assert logs["calendar"] == logs["heap"]
