"""Tests for the performance layer: sweep runner + result cache.

The contracts under test are the ones the experiments lean on:
parallel execution is bit-identical to serial, cache hits return the
exact stored objects, and stale or corrupt entries are recovered from
-- never served, never fatal.
"""

import os
import pickle

import numpy as np
import pytest

from repro.core.params import DCQCNParams
from repro.experiments import ext_stability_map, fct_study
from repro.perf import (CacheStats, ResultCache, SweepRunner,
                        canonicalize, derive_seed, params_key,
                        resolve_workers)
from repro.perf.sweep import WORKER_ENV


def _poison(x):
    if x == 7:
        raise ValueError(f"poison {x}")
    return x


def square(x):
    """Module-level so worker processes can unpickle it."""
    return x * x


def seeded_draw(seed):
    """A cell whose result is a pure function of its seed."""
    rng = np.random.default_rng(seed)
    return float(rng.random())


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 1, 2) == derive_seed(42, 1, 2)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {derive_seed(42, i) for i in range(100)}
        assert len(seeds) == 100

    def test_depends_on_base(self):
        assert derive_seed(1, 7) != derive_seed(2, 7)

    def test_independent_of_other_cells(self):
        # The seed for key (3,) is the same whether or not other
        # cells exist -- it is a pure function of (base, key).
        alone = derive_seed(9, 3)
        with_siblings = [derive_seed(9, k) for k in range(5)][3]
        assert alone == with_siblings


class TestResolveWorkers:
    def test_serial_defaults(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit_count(self):
        assert resolve_workers(4) == 4

    def test_negative_means_all_cores(self):
        from repro.perf.sweep import effective_cpu_count
        assert resolve_workers(-1) == effective_cpu_count()

    def test_effective_count_respects_affinity(self):
        # The effective count must never exceed the raw count, and on
        # affinity-capable platforms must match what the scheduler
        # actually grants this process (a cgroup-limited CI runner
        # reports fewer CPUs than the machine has).
        from repro.perf.sweep import effective_cpu_count
        count = effective_cpu_count()
        assert count >= 1
        if hasattr(os, "sched_getaffinity"):
            assert count <= max(len(os.sched_getaffinity(0)),
                                os.cpu_count() or 1)

    def test_nested_worker_forced_serial(self, monkeypatch):
        monkeypatch.setenv(WORKER_ENV, "1")
        assert resolve_workers(8) == 1


class TestCanonicalize:
    def test_dataclass(self):
        params = DCQCNParams.paper_default(num_flows=2)
        form = canonicalize(params)
        assert form["__dataclass__"] == "DCQCNParams"
        assert form == canonicalize(params)

    def test_numpy_values(self):
        assert canonicalize(np.float64(1.5)) == 1.5
        assert canonicalize(np.array([1, 2])) == [1, 2]

    def test_dict_order_irrelevant(self):
        assert canonicalize({"a": 1, "b": 2}) == \
            canonicalize({"b": 2, "a": 1})

    def test_callable_keyed_by_name(self):
        assert canonicalize(square).endswith("square")

    def test_key_changes_with_params(self):
        base = params_key("exp", {"n": 1})
        assert base == params_key("exp", {"n": 1})
        assert base != params_key("exp", {"n": 2})
        assert base != params_key("other", {"n": 1})


class TestResultCache:
    def make(self, tmp_path, fingerprint="f0"):
        return ResultCache(root=tmp_path, fingerprint=fingerprint)

    def test_miss_put_hit(self, tmp_path):
        cache = self.make(tmp_path)
        hit, _ = cache.get("exp", {"n": 1})
        assert not hit
        cache.put("exp", {"n": 1}, {"answer": 42})
        hit, value = cache.get("exp", {"n": 1})
        assert hit and value == {"answer": 42}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1

    def test_params_change_is_plain_miss(self, tmp_path):
        cache = self.make(tmp_path)
        cache.put("exp", {"n": 1}, "a")
        hit, _ = cache.get("exp", {"n": 2})
        assert not hit
        assert cache.stats.invalidations == 0

    def test_fingerprint_change_invalidates(self, tmp_path):
        old = self.make(tmp_path, fingerprint="old-code")
        old.put("exp", {"n": 1}, "stale")
        new = self.make(tmp_path, fingerprint="new-code")
        hit, _ = new.get("exp", {"n": 1})
        assert not hit
        assert new.stats.invalidations == 1
        # The stale entry is gone: a re-read is a plain miss.
        hit, _ = new.get("exp", {"n": 1})
        assert not hit
        assert new.stats.invalidations == 1

    def test_corrupt_entry_recovered(self, tmp_path):
        cache = self.make(tmp_path)
        path = cache.put("exp", {"n": 1}, "good")
        path.write_bytes(b"definitely not a pickle")
        hit, _ = cache.get("exp", {"n": 1})
        assert not hit
        assert cache.stats.corrupt_entries == 1
        assert not path.exists()
        # get_or_run recomputes and repopulates.
        value = cache.get_or_run("exp", {"n": 1}, lambda: "recomputed")
        assert value == "recomputed"
        hit, value = cache.get("exp", {"n": 1})
        assert hit and value == "recomputed"

    def test_truncated_entry_recovered(self, tmp_path):
        cache = self.make(tmp_path)
        path = cache.put("exp", {"n": 1}, list(range(100)))
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        hit, _ = cache.get("exp", {"n": 1})
        assert not hit
        assert cache.stats.corrupt_entries == 1

    def test_entry_missing_keys_counts_corrupt(self, tmp_path):
        cache = self.make(tmp_path)
        path = cache.entry_path("exp", {"n": 1})
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "an entry"}))
        hit, _ = cache.get("exp", {"n": 1})
        assert not hit
        assert cache.stats.corrupt_entries == 1

    def test_clear(self, tmp_path):
        cache = self.make(tmp_path)
        cache.put("a", {"n": 1}, 1)
        cache.put("a", {"n": 2}, 2)
        cache.put("b", {"n": 1}, 3)
        assert cache.clear("a") == 2
        assert cache.clear() == 1

    def test_stats_hit_rate(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        stats.hits, stats.misses = 3, 1
        assert stats.hit_rate == 0.75
        assert stats.as_dict()["hit_rate"] == 0.75


class TestSweepRunner:
    def test_serial_map_preserves_order(self):
        runner = SweepRunner(workers=1)
        cells = [{"x": i} for i in range(10)]
        assert runner.map(square, cells) == [i * i for i in range(10)]

    def test_parallel_identical_to_serial(self):
        cells = [{"seed": derive_seed(42, i)} for i in range(6)]
        serial = SweepRunner(workers=1).map(seeded_draw, cells)
        parallel = SweepRunner(workers=4).map(seeded_draw, cells)
        assert serial == parallel

    def test_cache_requires_experiment_id(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(cache=ResultCache(root=tmp_path))

    def test_cached_map_round_trip(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f")
        runner = SweepRunner(cache=cache, experiment_id="sq")
        cells = [{"x": i} for i in range(5)]
        first = runner.map(square, cells)
        second = runner.map(square, cells)
        assert first == second == [i * i for i in range(5)]
        assert cache.stats.puts == 5
        assert cache.stats.hits == 5

    def test_partial_cache_runs_only_missing(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f")
        runner = SweepRunner(cache=cache, experiment_id="sq")
        runner.map(square, [{"x": 1}])
        runner.map(square, [{"x": 1}, {"x": 2}])
        assert cache.stats.puts == 2
        assert cache.stats.hits == 1

    def test_cache_keyed_by_function(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f")
        runner = SweepRunner(cache=cache, experiment_id="exp")
        assert runner.map(square, [{"x": 3}]) == [9]
        assert runner.map(seeded_draw, [{"seed": 3}]) != [9]


class TestProbeDispatch:
    """The probe-based serial fallback and chunked submission."""

    def test_cheap_grid_stays_serial(self, monkeypatch):
        # Cells this cheap can never repay a pool spawn; the probe
        # keeps the sweep in-process -- the executor must never even
        # be constructed.
        from repro.perf import sweep as sweep_module

        def _no_pool(*args, **kwargs):
            raise AssertionError("pool spawned for a cheap grid")

        monkeypatch.setattr(sweep_module, "ProcessPoolExecutor",
                            _no_pool)
        cells = [{"x": i} for i in range(8)]
        assert SweepRunner(workers=4).map(square, cells) == \
            [i * i for i in range(8)]

    def test_chunked_pool_identical_to_serial(self, monkeypatch):
        # Spawn cost pinned to zero forces the pool even for cheap
        # cells, which then take the chunked (multi-cell-per-future)
        # path; order and values must match the serial run.
        from repro.perf import sweep as sweep_module
        monkeypatch.setattr(sweep_module, "POOL_SPAWN_COST_S", 0.0)
        cells = [{"seed": derive_seed(7, i)} for i in range(24)]
        serial = SweepRunner(workers=1).map(seeded_draw, cells)
        chunked = SweepRunner(workers=2).map(seeded_draw, cells)
        assert all(np.array_equal(a, b)
                   for a, b in zip(serial, chunked))

    def test_chunked_pool_reports_per_cell_errors(self, monkeypatch):
        from repro.perf import sweep as sweep_module
        monkeypatch.setattr(sweep_module, "POOL_SPAWN_COST_S", 0.0)
        runner = SweepRunner(workers=2, experiment_id="poison")

        with pytest.raises(ValueError, match="poison"):
            runner.map(_poison, [{"x": i} for i in range(12)])


class TestExperimentDeterminism:
    """workers=N and warm caches reproduce the serial results exactly."""

    FLOWS = (1, 4)
    DELAYS = (4.0, 55.0)

    def test_stability_map_parallel_identical(self):
        serial = ext_stability_map.run(self.FLOWS, self.DELAYS,
                                       workers=1)
        parallel = ext_stability_map.run(self.FLOWS, self.DELAYS,
                                         workers=4)
        assert serial == parallel

    def test_stability_map_cached_identical(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        serial = ext_stability_map.run(self.FLOWS, self.DELAYS)
        cold = ext_stability_map.run(self.FLOWS, self.DELAYS,
                                     cache=cache)
        warm = ext_stability_map.run(self.FLOWS, self.DELAYS,
                                     cache=cache)
        assert serial == cold == warm
        assert cache.stats.hits == len(self.FLOWS)

    def test_fct_study_parallel_identical(self):
        kwargs = {"loads": (0.3, 0.6), "protocols": ("dcqcn",),
                  "duration": 0.01, "drain": 0.01, "n_pairs": 2,
                  "warmup": 0.0}
        serial = fct_study.run_load_sweep(workers=1, **kwargs)
        parallel = fct_study.run_load_sweep(workers=4, **kwargs)
        assert set(serial) == set(parallel)
        for protocol in serial:
            for left, right in zip(serial[protocol],
                                   parallel[protocol]):
                assert left.summary == right.summary
                assert left.small_fcts == right.small_fcts
                assert np.array_equal(left.queue_bytes,
                                      right.queue_bytes)
                assert left.completed == right.completed
                assert left.utilization == right.utilization


class TestRegistryUniformKwargs:
    def test_non_sweep_experiment_accepts_perf_kwargs(self):
        from repro.experiments.registry import _uniform_run

        def plain(a, b=2):
            return a + b

        wrapped = _uniform_run(plain)
        assert wrapped(1, workers=4, cache=None) == 3
        assert wrapped(1, b=5) == 6

    def test_sweep_experiment_passes_through(self):
        from repro.experiments.registry import EXPERIMENTS
        rows = EXPERIMENTS["ext_stability_map"].run(
            flow_counts=(1,), delays_us=(4.0,), workers=2)
        assert len(rows) == 1


class TestBenchHealthVariant:
    def test_health_attached_event_loop_terminates(self):
        # The health sampler self-reschedules through the heap; the
        # bench must bound it with stop= or an until-less run() spins
        # forever once the tick chain ends.
        from repro.perf.bench import bench_event_loop
        rate = bench_event_loop(2_000, attach_health=True)
        assert rate > 0
