"""FCT statistics, time-series helpers, and report formatting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.fct import (FCTSummary, SMALL_FLOW_BYTES,
                                completed_fcts, fct_cdf,
                                normalized_fcts, small_flow_summary)
from repro.analysis.reporting import format_series, format_table
from repro.analysis.timeseries import (coefficient_of_variation,
                                       downsample, settling_fraction,
                                       tail_window)
from repro.sim.flows import Flow


def make_flow(size, start, fct=None):
    flow = Flow(0, "s0", "r0", size, start)
    if fct is not None:
        flow.completion_time = start + fct
    return flow


class TestFCTFilters:
    def test_only_completed_counted(self):
        flows = [make_flow(1024, 0.0, fct=0.01), make_flow(1024, 0.0)]
        assert completed_fcts(flows) == [0.01]

    def test_long_lived_excluded(self):
        flow = Flow(0, "s0", "r0", None, 0.0)
        assert completed_fcts([flow]) == []

    def test_size_filters(self):
        small = make_flow(50 * 1024, 0.0, fct=0.001)
        big = make_flow(500 * 1024, 0.0, fct=0.01)
        flows = [small, big]
        assert completed_fcts(flows, max_bytes=SMALL_FLOW_BYTES) == \
            [0.001]
        assert completed_fcts(flows, min_bytes=SMALL_FLOW_BYTES) == \
            [0.01]

    def test_warmup_skip(self):
        early = make_flow(1024, 0.001, fct=0.01)
        late = make_flow(1024, 0.5, fct=0.02)
        assert completed_fcts([early, late], skip_before=0.1) == \
            [pytest.approx(0.02)]

    def test_small_flow_summary(self):
        flows = [make_flow(1024, 0.0, fct=f)
                 for f in (0.001, 0.002, 0.003, 0.004, 0.005)]
        summary = small_flow_summary(flows)
        assert summary.count == 5
        assert summary.median_s == pytest.approx(0.003)
        assert summary.mean_s == pytest.approx(0.003)

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            FCTSummary.from_fcts([])


class TestCDF:
    def test_sorted_and_normalized(self):
        fcts, fractions = fct_cdf([0.3, 0.1, 0.2])
        assert list(fcts) == pytest.approx([0.1, 0.2, 0.3])
        assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fct_cdf([])

    @given(st.lists(st.floats(min_value=1e-6, max_value=10.0),
                    min_size=1, max_size=100))
    def test_cdf_properties(self, samples):
        fcts, fractions = fct_cdf(samples)
        assert np.all(np.diff(fcts) >= 0)
        assert fractions[-1] == pytest.approx(1.0)
        assert np.all(np.diff(fractions) > 0)


class TestNormalizedFCT:
    def test_line_rate_flow_has_slowdown_one(self):
        flow = make_flow(1_000_000, 0.0, fct=0.001)
        slowdowns = normalized_fcts([flow], line_rate_bytes=1e9)
        assert slowdowns == [pytest.approx(1.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_fcts([], line_rate_bytes=0.0)


class TestTimeseries:
    def test_tail_window(self):
        times = np.linspace(0, 10, 11)
        values = times * 2
        t, v = tail_window(times, values, 3.0)
        assert list(t) == pytest.approx([7, 8, 9, 10])
        assert list(v) == pytest.approx([14, 16, 18, 20])

    def test_tail_window_validation(self):
        with pytest.raises(ValueError):
            tail_window([1.0], [1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            tail_window([], [], 1.0)

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5.0, 5.0]) == 0.0
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(
            0.5)
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0, -1.0])

    def test_settling_fraction(self):
        values = [1.0, 1.05, 0.95, 2.0]
        assert settling_fraction(values, 1.0, 0.1) == pytest.approx(
            0.75)

    def test_downsample(self):
        times = np.arange(100, dtype=float)
        values = times.copy()
        t, v = downsample(times, values, 10)
        assert t.size <= 10
        assert v[0] == 0.0
        with pytest.raises(ValueError):
            downsample(times, values, 1)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [["dcqcn", 1.23456], ["timely", 10.0]],
                             title="Demo")
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in table
        assert "timely" in table

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_series(self):
        out = format_series("queue", [0.0, 0.001, 0.002],
                            [1.0, 2.0, 3.0])
        assert out.startswith("queue:")
        assert "ms" in out

    def test_format_series_empty(self):
        assert "(empty)" in format_series("x", [], [])

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1.0], [])
