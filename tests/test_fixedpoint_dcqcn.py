"""Theorem 1 / Eq. 14: DCQCN's unique fixed point."""

import numpy as np
import pytest

from repro.core.fixedpoint.dcqcn import (approximate_p_star,
                                         fixed_point_mismatch,
                                         mismatch_is_monotone,
                                         solve_fixed_point)
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fluid.history import UniformHistory
from repro.core.params import DCQCNParams


class TestSolveFixedPoint:
    def test_rates_are_fair_share(self, dcqcn_ten_flows):
        fp = solve_fixed_point(dcqcn_ten_flows)
        assert fp.rate == pytest.approx(dcqcn_ten_flows.fair_share)

    def test_p_star_small_and_positive(self, dcqcn_params):
        fp = solve_fixed_point(dcqcn_params)
        assert 0.0 < fp.p < 0.05

    def test_mismatch_zero_at_solution(self, dcqcn_params):
        fp = solve_fixed_point(dcqcn_params)
        residual = fixed_point_mismatch(fp.p, dcqcn_params)
        scale = dcqcn_params.tau ** 2 * dcqcn_params.rate_ai \
            * dcqcn_params.fair_share
        assert abs(residual) < 1e-6 * scale

    def test_queue_consistent_with_red_inverse(self, dcqcn_params):
        fp = solve_fixed_point(dcqcn_params)
        assert dcqcn_params.red.marking_probability(fp.queue) == \
            pytest.approx(fp.p, rel=1e-9)

    def test_target_rate_above_current(self, dcqcn_params):
        fp = solve_fixed_point(dcqcn_params)
        assert fp.target_rate > fp.rate

    def test_p_star_grows_with_flows(self):
        ps = [solve_fixed_point(
            DCQCNParams.paper_default(num_flows=n)).p
            for n in (2, 5, 10, 20)]
        assert all(a < b for a, b in zip(ps, ps[1:]))

    def test_queue_saturates_at_kmax_without_extension(self):
        params = DCQCNParams.paper_default(num_flows=64)
        fp = solve_fixed_point(params)
        assert fp.p > params.red.pmax
        assert fp.queue == pytest.approx(params.red.kmax)

    def test_extended_red_queue_beyond_kmax(self):
        params = DCQCNParams.paper_default(num_flows=64)
        fp = solve_fixed_point(params, extend_red=True)
        assert fp.queue > params.red.kmax

    def test_alpha_matches_eq10(self, dcqcn_params):
        fp = solve_fixed_point(dcqcn_params)
        expected = 1.0 - (1.0 - fp.p) ** (
            dcqcn_params.tau_prime * fp.rate)
        assert fp.alpha == pytest.approx(expected, rel=1e-9)

    def test_as_vector_layout(self, dcqcn_params):
        fp = solve_fixed_point(dcqcn_params)
        vec = fp.as_vector(dcqcn_params)
        n = dcqcn_params.num_flows
        assert vec.shape == (1 + 3 * n,)
        assert vec[0] == pytest.approx(fp.queue)
        assert np.all(vec[1 + 2 * n:] == pytest.approx(fp.rate))


class TestUniqueness:
    @pytest.mark.parametrize("n", [1, 2, 10, 30, 64])
    def test_mismatch_monotone(self, n):
        params = DCQCNParams.paper_default(num_flows=n)
        assert mismatch_is_monotone(params)

    def test_mismatch_sign_change_brackets_root(self, dcqcn_params):
        fp = solve_fixed_point(dcqcn_params)
        assert fixed_point_mismatch(fp.p / 2, dcqcn_params) < 0
        assert fixed_point_mismatch(min(fp.p * 2, 0.99),
                                    dcqcn_params) > 0

    def test_mismatch_rejects_out_of_range_p(self, dcqcn_params):
        with pytest.raises(ValueError):
            fixed_point_mismatch(0.0, dcqcn_params)
        with pytest.raises(ValueError):
            fixed_point_mismatch(1.0, dcqcn_params)


class TestEq14Approximation:
    @pytest.mark.parametrize("n", [2, 5, 10])
    def test_within_factor_two_of_exact(self, n):
        params = DCQCNParams.paper_default(num_flows=n)
        exact = solve_fixed_point(params).p
        approx = approximate_p_star(params)
        assert approx == pytest.approx(exact, rel=1.0)

    def test_scaling_with_n_two_thirds(self):
        # For B >> N/(T C) regimes Eq. 14 gives p* ~ N^(2/3).
        p2 = approximate_p_star(DCQCNParams.paper_default(num_flows=2))
        p16 = approximate_p_star(DCQCNParams.paper_default(num_flows=16))
        assert p16 / p2 > 8 ** (2.0 / 3.0) * 0.9

    def test_decreases_with_capacity(self):
        p40 = approximate_p_star(
            DCQCNParams.paper_default(capacity_gbps=40))
        p100 = approximate_p_star(
            DCQCNParams.paper_default(capacity_gbps=100))
        assert p100 < p40


class TestStationarity:
    def test_fluid_rhs_vanishes_at_fixed_point(self, dcqcn_params):
        """The Theorem 1 point must zero the Fig. 1 dynamics."""
        fp = solve_fixed_point(dcqcn_params)
        model = DCQCNFluidModel(dcqcn_params)
        state = fp.as_vector(dcqcn_params)
        history = UniformHistory(0.0, 1e-6, state)
        deriv = model.derivatives(0.0, state, history)
        # Normalize each block by its state scale.
        assert abs(deriv[0]) / dcqcn_params.capacity < 1e-9
        assert np.all(np.abs(deriv[model.alpha_slice()]) < 1e-6)
        rate_scale = dcqcn_params.fair_share
        assert np.all(np.abs(deriv[model.rt_slice()]) / rate_scale
                      < 1e-4)
        assert np.all(np.abs(deriv[model.rc_slice()]) / rate_scale
                      < 1e-4)

    def test_fluid_started_at_fixed_point_stays(self, dcqcn_params):
        from repro.core.fluid import dde
        fp = solve_fixed_point(dcqcn_params)
        model = DCQCNFluidModel(dcqcn_params)
        trace = dde.integrate(model, t_end=0.01, dt=2e-6,
                              initial_state=fp.as_vector(dcqcn_params),
                              record_stride=10)
        assert trace.final("q") == pytest.approx(fp.queue, rel=0.05)
        assert trace.final("rc[0]") == pytest.approx(fp.rate, rel=0.02)
