"""Theorems 3-5: TIMELY's fixed-point taxonomy."""

import numpy as np
import pytest

from repro.core.fixedpoint.timely import (TimelyFixedPoint,
                                          is_modified_fixed_point,
                                          original_residual,
                                          patched_fixed_point,
                                          patched_residual,
                                          sample_fixed_points)
from repro.core.params import PatchedTimelyParams


class TestTheorem3:
    """The Algorithm-1 system has no fixed point."""

    def test_residual_strictly_positive(self, timely_params):
        rates = [timely_params.fair_share] * 2
        queue = (timely_params.q_low + timely_params.q_high) / 2
        assert original_residual(timely_params, rates, queue) > 0

    def test_residual_positive_for_any_rate_split(self, timely_params):
        c = timely_params.capacity
        queue = (timely_params.q_low + timely_params.q_high) / 2
        for split in (0.5, 0.9, 0.999):
            rates = [split * c, (1 - split) * c]
            assert original_residual(timely_params, rates, queue) > 0

    def test_rejects_queue_outside_band(self, timely_params):
        rates = [timely_params.fair_share] * 2
        with pytest.raises(ValueError):
            original_residual(timely_params, rates,
                              timely_params.q_low / 2)

    def test_rejects_wrong_rate_count(self, timely_params):
        with pytest.raises(ValueError):
            original_residual(timely_params, [1.0], 100.0)


class TestTheorem4:
    """The Eq. 28 system has infinitely many fixed points."""

    def test_fair_split_is_a_fixed_point(self, timely_params):
        rates = [timely_params.fair_share] * 2
        queue = (timely_params.q_low + timely_params.q_high) / 2
        assert is_modified_fixed_point(timely_params, rates, queue,
                                       [0.0, 0.0])

    def test_arbitrarily_unfair_splits_are_fixed_points(self,
                                                        timely_params):
        c = timely_params.capacity
        queue = (timely_params.q_low + timely_params.q_high) / 2
        for split in (0.6, 0.9, 0.999):
            rates = [split * c, (1 - split) * c]
            assert is_modified_fixed_point(timely_params, rates, queue,
                                           [0.0, 0.0])

    def test_any_queue_in_band_is_a_fixed_point(self, timely_params):
        rates = [timely_params.fair_share] * 2
        for frac in (0.05, 0.3, 0.7, 0.95):
            queue = timely_params.q_low + frac * (
                timely_params.q_high - timely_params.q_low)
            assert is_modified_fixed_point(timely_params, rates, queue,
                                           [0.0, 0.0])

    def test_nonzero_gradient_is_not_fixed(self, timely_params):
        rates = [timely_params.fair_share] * 2
        queue = (timely_params.q_low + timely_params.q_high) / 2
        assert not is_modified_fixed_point(timely_params, rates, queue,
                                           [0.1, 0.0])

    def test_rates_must_sum_to_capacity(self, timely_params):
        queue = (timely_params.q_low + timely_params.q_high) / 2
        rates = [timely_params.fair_share] * 2
        short = [r * 0.9 for r in rates]
        assert not is_modified_fixed_point(timely_params, short, queue,
                                           [0.0, 0.0])

    def test_queue_outside_band_is_not_fixed(self, timely_params):
        rates = [timely_params.fair_share] * 2
        assert not is_modified_fixed_point(
            timely_params, rates, timely_params.q_low * 0.5, [0.0, 0.0])
        assert not is_modified_fixed_point(
            timely_params, rates, timely_params.q_high * 1.5, [0.0, 0.0])

    def test_sampled_family_members_are_valid_and_unfair(self,
                                                         timely_params):
        points = list(sample_fixed_points(timely_params, 50, seed=3))
        assert len(points) == 50
        ratios = []
        for point in points:
            assert is_modified_fixed_point(
                timely_params, point.rates, point.queue,
                np.zeros(2), tolerance=1e-6)
            ratios.append(point.fairness_ratio)
        # The family includes heavily unfair members.
        assert max(ratios) > 10.0

    def test_sample_count_validation(self, timely_params):
        with pytest.raises(ValueError):
            list(sample_fixed_points(timely_params, 0))


class TestTheorem5:
    """Patched TIMELY's unique fair fixed point (Eq. 31)."""

    def test_rates_fair(self, patched_params):
        point = patched_fixed_point(patched_params)
        assert np.all(point.rates == pytest.approx(
            patched_params.base.fair_share))

    def test_queue_matches_eq31(self, patched_params):
        point = patched_fixed_point(patched_params)
        assert point.queue == pytest.approx(
            patched_params.fixed_point_queue)

    def test_residual_zero_at_fixed_point(self, patched_params):
        point = patched_fixed_point(patched_params)
        scale = patched_params.base.delta / patched_params.base.min_rtt
        assert patched_residual(patched_params, point) < 1e-9 * scale

    def test_residual_positive_elsewhere(self, patched_params):
        point = patched_fixed_point(patched_params)
        off = TimelyFixedPoint(rates=point.rates,
                               queue=point.queue * 1.5)
        assert patched_residual(patched_params, off) > 0

    def test_unfair_split_is_not_stationary(self, patched_params):
        c = patched_params.base.capacity
        off = TimelyFixedPoint(
            rates=np.array([0.9 * c, 0.1 * c]),
            queue=patched_params.fixed_point_queue)
        assert patched_residual(patched_params, off) > 0

    def test_queue_grows_linearly_with_n(self):
        queues = [patched_fixed_point(
            PatchedTimelyParams.paper_default(num_flows=n)).queue
            for n in (2, 4, 8)]
        increments = np.diff(queues)
        # Eq. 31 is affine in N.
        assert increments[1] == pytest.approx(2 * increments[0],
                                              rel=1e-6)

    def test_raises_when_queue_leaves_band(self):
        params = PatchedTimelyParams.paper_default(num_flows=100)
        if params.fixed_point_queue > params.base.q_high:
            with pytest.raises(ValueError):
                patched_fixed_point(params)
        else:
            pytest.skip("Eq. 31 queue still inside the band")
