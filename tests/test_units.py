"""Unit conversion tests, including hypothesis round-trips."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestRateConversions:
    def test_gbps_to_pps_40g_1kb_mtu(self):
        # 40 Gbps over 8192-bit packets.
        assert units.gbps_to_pps(40.0) == pytest.approx(40e9 / 8192)

    def test_mbps_matches_gbps_scaling(self):
        assert units.mbps_to_pps(1000.0) == pytest.approx(
            units.gbps_to_pps(1.0))

    def test_custom_mtu_scales_inverse(self):
        assert units.gbps_to_pps(10.0, mtu_bytes=2048) == pytest.approx(
            units.gbps_to_pps(10.0, mtu_bytes=1024) / 2)

    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.sampled_from([512, 1024, 1500, 4096, 9000]))
    def test_gbps_roundtrip(self, gbps, mtu):
        assert units.pps_to_gbps(units.gbps_to_pps(gbps, mtu), mtu) == \
            pytest.approx(gbps, rel=1e-12)

    @given(st.floats(min_value=1e-3, max_value=1e6),
           st.sampled_from([512, 1024, 1500]))
    def test_mbps_roundtrip(self, mbps, mtu):
        assert units.pps_to_mbps(units.mbps_to_pps(mbps, mtu), mtu) == \
            pytest.approx(mbps, rel=1e-12)


class TestTimeConversions:
    def test_us(self):
        assert units.us(55) == pytest.approx(55e-6)

    def test_ms(self):
        assert units.ms(10) == pytest.approx(0.01)

    def test_seconds_to_us_inverts_us(self):
        assert units.seconds_to_us(units.us(123.4)) == pytest.approx(123.4)


class TestSizeConversions:
    def test_kb_to_packets_default_mtu(self):
        assert units.kb_to_packets(200) == pytest.approx(200.0)

    def test_mb_to_packets(self):
        assert units.mb_to_packets(10) == pytest.approx(10240.0)

    def test_bytes_to_packets_fractional(self):
        assert units.bytes_to_packets(512) == pytest.approx(0.5)

    @given(st.floats(min_value=1e-3, max_value=1e6))
    def test_kb_roundtrip(self, kb):
        assert units.packets_to_kb(units.kb_to_packets(kb)) == \
            pytest.approx(kb, rel=1e-12)

    @given(st.floats(min_value=1.0, max_value=1e9))
    def test_packets_to_bytes_roundtrip(self, packets):
        assert units.bytes_to_packets(
            units.packets_to_bytes(packets)) == pytest.approx(packets)


class TestSerializationDelay:
    def test_one_packet_at_one_pps_takes_one_second(self):
        assert units.serialization_delay(1024, 1.0) == pytest.approx(1.0)

    def test_scales_with_bytes(self):
        base = units.serialization_delay(1024, 1e6)
        assert units.serialization_delay(4096, 1e6) == pytest.approx(
            4 * base)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            units.serialization_delay(1024, 0.0)

    @given(st.floats(min_value=1.0, max_value=1e9),
           st.floats(min_value=1.0, max_value=1e9))
    def test_always_positive(self, nbytes, rate):
        assert units.serialization_delay(nbytes, rate) > 0

    def test_40g_mtu_is_two_hundred_nanoseconds(self):
        rate = units.gbps_to_pps(40.0)
        delay = units.serialization_delay(1024, rate)
        assert delay == pytest.approx(8192 / 40e9)
        assert math.isclose(delay, 204.8e-9)
