"""Property-based simulator invariants (hypothesis).

Randomized flow sets and scenarios must never violate the physical
invariants of a lossless network: byte conservation, per-flow FIFO
delivery, non-negative queues, and deterministic replay.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DCQCNParams, DCTCPParams, TimelyParams
from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch

#: Keep the randomized packet-level runs short: each example is a full
#: discrete-event simulation.
FAST = settings(max_examples=12, deadline=None)


class RecordingReceiver:
    """Captures delivery order for FIFO checks."""

    name = "recv"

    def __init__(self):
        self.sequence_by_flow = {}

    def receive(self, packet, ingress=None):
        self.sequence_by_flow.setdefault(packet.flow_id,
                                         []).append(packet.seq)


class TestFIFODelivery:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.integers(min_value=64,
                                          max_value=1500)),
                    min_size=1, max_size=60))
    @FAST
    def test_per_flow_order_preserved(self, sends):
        """Packets of each flow arrive in emission order through a
        port, whatever the interleaving and sizes."""
        sim = Simulator()
        receiver = RecordingReceiver()
        port = Port(sim, 1e8, Link(sim, 1e-6, receiver))
        counters = {}
        for flow_id, size in sends:
            seq = counters.get(flow_id, 0)
            counters[flow_id] = seq + 1
            port.send(Packet(flow_id, size, "s", "recv", kind="data",
                             seq=seq))
        sim.run()
        for flow_id, seqs in receiver.sequence_by_flow.items():
            assert seqs == sorted(seqs)
        delivered = sum(len(v) for v in
                        receiver.sequence_by_flow.values())
        assert delivered == len(sends)


class TestConservation:
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=8, max_value=64),
           st.integers(min_value=0, max_value=2 ** 16))
    @FAST
    def test_dcqcn_delivers_exactly_what_flows_send(self, n_flows,
                                                    size_kb, seed):
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=n_flows)
        marker = REDMarker(params.red, params.mtu_bytes, seed=seed)
        net = single_switch(n_flows, link_gbps=10, marker=marker)
        done = []
        for i in range(n_flows):
            install_flow(net, "dcqcn", f"s{i}", "recv",
                         size_kb * 1024, 0.0, params,
                         on_complete=done.append)
        net.sim.run(until=0.05)
        assert len(done) == n_flows
        for flow in done:
            assert flow.bytes_delivered == flow.size_bytes
            assert flow.bytes_sent == flow.size_bytes
            assert flow.fct > 0

    @given(st.sampled_from(["dcqcn", "timely", "dctcp"]),
           st.integers(min_value=4, max_value=128))
    @FAST
    def test_any_protocol_conserves_bytes(self, protocol, size_kb):
        if protocol == "dcqcn":
            params = DCQCNParams.paper_default(capacity_gbps=10,
                                               num_flows=1)
        elif protocol == "timely":
            params = TimelyParams.paper_default(capacity_gbps=10)
        else:
            params = DCTCPParams()
        net = single_switch(1, link_gbps=10)
        done = []
        install_flow(net, protocol, "s0", "recv", size_kb * 1024,
                     0.0, params, on_complete=done.append)
        net.sim.run(until=0.08)
        assert len(done) == 1
        flow = done[0]
        assert flow.bytes_delivered == size_kb * 1024
        # A sender never emits beyond the flow size.
        assert flow.bytes_sent == flow.size_bytes


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=2 ** 16))
    @FAST
    def test_identical_seeds_replay_identically(self, seed):
        def run_once():
            params = DCQCNParams.paper_default(capacity_gbps=10,
                                               num_flows=2)
            marker = REDMarker(params.red, params.mtu_bytes,
                               seed=seed)
            net = single_switch(2, link_gbps=10, marker=marker)
            for i in range(2):
                install_flow(net, "dcqcn", f"s{i}", "recv", None,
                             0.0, params)
            net.sim.run(until=0.005)
            return (net.sim.events_processed,
                    net.bottleneck_port.bytes_transmitted,
                    tuple(net.senders[i].rate for i in range(2)))

        assert run_once() == run_once()


class TestQueueBounds:
    @given(st.integers(min_value=1, max_value=8))
    @FAST
    def test_occupancy_never_negative_and_bounded_by_arrivals(self,
                                                              n_flows):
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=n_flows)
        net = single_switch(n_flows, link_gbps=10)
        for i in range(n_flows):
            install_flow(net, "dcqcn", f"s{i}", "recv", 32 * 1024,
                         0.0, params)
        from repro.sim.monitors import QueueMonitor
        monitor = QueueMonitor(net.sim, net.bottleneck_port,
                               interval=20e-6)
        net.sim.run(until=0.01)
        _, occupancy = monitor.as_arrays()
        assert np.all(occupancy >= 0)
        # The queue can never exceed what every flow injected.
        assert occupancy.max() <= n_flows * 32 * 1024
