"""Invariant monitor: conservation audits, PFC pairing, deadlock."""

import pytest

from repro import units
from repro.core.params import DCQCNParams
from repro.sim import faults
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan, LinkFlap, PacketLoss
from repro.sim.invariants import InvariantMonitor, InvariantViolation
from repro.sim.link import Link, Port
from repro.sim.node import Host
from repro.sim.pfc import PFCController
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


def _dcqcn_net(params, n=2, seed=1):
    marker = REDMarker(params.red, params.mtu_bytes, seed=seed)
    net = single_switch(n, link_gbps=40.0, marker=marker)
    for i in range(n):
        install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0, params)
    return net


class TestCleanRuns:
    def test_fault_free_run_is_clean(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        monitor = InvariantMonitor.for_network(net, interval=2e-4)
        net.sim.run(until=0.01)
        assert monitor.checks_run > 10
        assert monitor.clean
        monitor.assert_clean()
        assert "clean" in monitor.report()

    def test_faulty_run_is_still_clean(self, dcqcn_params):
        """Fault injection breaks traffic, never the physics."""
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([
            PacketLoss("recv->sw", rate=0.5, kinds=("cnp",)),
            LinkFlap("sw->recv", start=0.002, duration=0.001,
                     mode="hold"),
        ])
        faults.install(net, plan, seed=9)
        monitor = InvariantMonitor.for_network(net, interval=2e-4)
        net.sim.run(until=0.01)
        monitor.assert_clean()

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            InvariantMonitor(Simulator(), interval=0.0)
        with pytest.raises(ValueError):
            InvariantMonitor(Simulator(), interval=1e-3,
                             deadlock_checks=0)


class TestViolationDetection:
    def test_corrupted_byte_counter_detected(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        monitor = InvariantMonitor.for_network(net, interval=1e-3)

        def sabotage():
            net.bottleneck_port.queue._bytes += 512
        net.sim.schedule_at(0.0015, sabotage)
        net.sim.run(until=0.005)
        assert not monitor.clean
        assert any(v.check == "queue_conservation"
                   for v in monitor.violations)
        with pytest.raises(AssertionError):
            monitor.assert_clean()

    @pytest.mark.parametrize("rate", [0.0, -1.0, float("nan"),
                                      float("inf")])
    def test_bad_sender_rate_detected(self, rate):
        class StuckSender:
            pass

        stuck = StuckSender()
        stuck.rate = rate
        sim = Simulator()
        monitor = InvariantMonitor(sim, senders={"flow0": stuck},
                                   interval=1e-3)
        sim.run(until=2.5e-3)
        assert any(v.check == "sender_rate" for v in monitor.violations)

    def test_strict_mode_stops_simulation(self):
        class StuckSender:
            rate = 0.0

        sim = Simulator()
        monitor = InvariantMonitor(sim, senders={"flow0": StuckSender()},
                                   interval=1e-3, strict=True)
        sim.run(until=0.02)
        assert not monitor.clean
        # Stopped at the first violating audit: exactly one check ran,
        # one violation recorded, and no further audit was scheduled.
        assert monitor.checks_run == 1
        assert len(monitor.violations) == 1
        assert sim.pending_events == 0

    def test_violation_rendering(self):
        violation = InvariantViolation(0.5, "pfc_pairing", "sw",
                                       "imbalance")
        text = str(violation)
        assert "pfc_pairing" in text and "sw" in text


class TestPFCChecks:
    def _paused_pair(self):
        """Host -> switch with PFC permanently pausing the host."""
        sim = Simulator()
        params = DCQCNParams.paper_default(capacity_gbps=10.0,
                                           num_flows=1)
        pfc = PFCController(sim, pause_threshold_bytes=20 * 1024,
                            resume_threshold_bytes=10 * 1024)
        host = Host(sim, "h0")
        sink = Host(sim, "sink")
        rate = units.gbps_to_bytes_per_s(10.0) \
            if hasattr(units, "gbps_to_bytes_per_s") else 10e9 / 8
        # host -> "switch" port, pausable by PFC.
        host_port = Port(sim, rate, Link(sim, 1e-6, sink), name="h0->sw")
        host.port = host_port
        pfc.register_upstream("h0", lambda pause: (
            host_port.pause() if pause else host_port.resume()))
        return sim, params, pfc, host

    def test_pfc_deadlock_detected(self):
        sim, params, pfc, host = self._paused_pair()
        # Fill the accounting past the pause threshold and never drain:
        # pauses stay outstanding while nothing makes progress.
        pfc.on_ingress("h0", 30 * 1024)
        assert pfc.is_paused("h0")
        monitor = InvariantMonitor(sim, ports={"h0->sw": host.port},
                                   pfcs={"sw": pfc}, interval=1e-3,
                                   deadlock_checks=3)
        sim.run(until=11e-3)
        deadlocks = [v for v in monitor.violations
                     if v.check == "pfc_deadlock"]
        assert len(deadlocks) == 1  # reported once, not every audit
        assert "h0" in deadlocks[0].detail

    def test_progress_resets_deadlock_counter(self, dcqcn_params):
        """A paused-but-draining fabric is not a deadlock."""
        net = _dcqcn_net(dcqcn_params)
        monitor = InvariantMonitor.for_network(net, interval=2e-4,
                                               deadlock_checks=2)
        net.sim.run(until=0.01)
        assert not any(v.check == "pfc_deadlock"
                       for v in monitor.violations)

    def test_pfc_pairing_balance(self):
        sim, params, pfc, host = self._paused_pair()
        monitor = InvariantMonitor(sim, pfcs={"sw": pfc}, interval=1e-3)
        pfc.on_ingress("h0", 30 * 1024)   # pause
        pfc.on_egress("h0", 25 * 1024)    # drain below resume: resume
        sim.run(until=5e-3)
        assert pfc.pauses_sent == 1 and pfc.resumes_sent == 1
        assert not any(v.check == "pfc_pairing"
                       for v in monitor.violations)
