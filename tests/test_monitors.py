"""Measurement probes: queue sampling, rate sampling, throughput."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.monitors import QueueMonitor, RateMonitor, ThroughputMeter
from repro.sim.packet import Packet


class Sink:
    name = "sink"

    def receive(self, packet, ingress=None):
        pass


def make_port(sim, rate=1e6):
    return Port(sim, rate, Link(sim, 0.0, Sink()))


class TestQueueMonitor:
    def test_samples_on_interval(self):
        sim = Simulator()
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=0.1)
        sim.run(until=1.0)
        times, occupancy = monitor.as_arrays()
        assert times.size == 11  # t = 0.0 .. 1.0
        assert np.allclose(np.diff(times), 0.1)

    def test_observes_backlog(self):
        sim = Simulator()
        port = make_port(sim, rate=1e3)  # slow: 1 packet per second
        monitor = QueueMonitor(sim, port, interval=0.25)
        for _ in range(4):
            port.send(Packet(0, 1000, "a", "sink", kind="data"))
        sim.run(until=1.0)
        _, occupancy = monitor.as_arrays()
        assert occupancy.max() > 0

    def test_stop_time(self):
        sim = Simulator()
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=0.1, stop=0.5)
        sim.run(until=2.0)
        times, _ = monitor.as_arrays()
        assert times[-1] <= 0.6

    def test_tail_statistics(self):
        sim = Simulator()
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=0.1)
        sim.run(until=1.0)
        assert monitor.tail_mean_bytes(0.5) == 0.0
        assert monitor.tail_std_bytes(0.5) == 0.0

    def test_validation(self):
        sim = Simulator()
        port = make_port(sim)
        with pytest.raises(ValueError):
            QueueMonitor(sim, port, interval=0.0)
        monitor = QueueMonitor(sim, port, interval=0.1)
        with pytest.raises(ValueError):
            monitor.tail_mean_bytes(1.0)  # no samples yet


class FixedRateSender:
    def __init__(self, rate):
        self.rate = rate


class TestRateMonitor:
    def test_tracks_rate_changes(self):
        sim = Simulator()
        sender = FixedRateSender(100.0)
        monitor = RateMonitor(sim, {"s0": sender}, interval=0.1)
        sim.schedule(0.45, lambda: setattr(sender, "rate", 300.0))
        sim.run(until=1.0)
        times, rates = monitor.series("s0")
        assert rates[0] == 100.0
        assert rates[-1] == 300.0

    def test_final_rates(self):
        sim = Simulator()
        monitor = RateMonitor(sim, {"a": FixedRateSender(1.0),
                                    "b": FixedRateSender(2.0)},
                              interval=0.1)
        sim.run(until=0.5)
        finals = monitor.final_rates()
        assert finals == {"a": 1.0, "b": 2.0}

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            RateMonitor(Simulator(), {}, interval=-1.0)

    def test_stop_time_bounds_sampling(self):
        sim = Simulator()
        sender = FixedRateSender(100.0)
        monitor = RateMonitor(sim, {"s0": sender}, interval=0.1,
                              stop=0.5)
        sim.run(until=2.0)
        times, rates = monitor.series("s0")
        # Samples at 0.0 .. 0.5, plus at most one straggler that
        # fired just past the cutoff and recorded nothing.
        assert times[-1] <= 0.6
        assert times.size == rates.size

    def test_stopped_monitor_drains_from_heap(self):
        # After the cutoff the monitor stops rescheduling, so a long
        # run's event count is bounded by the stop time, not the
        # horizon.
        sim = Simulator()
        monitor = RateMonitor(sim, {"s0": FixedRateSender(1.0)},
                              interval=0.1, stop=0.5)
        sim.run(until=100.0)
        assert len(monitor.times) <= 7


class TestThroughputMeter:
    def test_windows_accumulate_bytes(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, window=1.0)

        def deliver(size):
            meter.record(Packet(0, size, "a", "b", kind="data"))

        sim.schedule(0.5, lambda: deliver(1000))
        sim.schedule(1.5, lambda: deliver(3000))
        sim.schedule(2.5, lambda: deliver(500))
        sim.run()
        times, rates = meter.as_arrays()
        # Two closed windows: [0,1) -> 1000 B/s, [1,2) -> 3000 B/s.
        assert list(rates) == pytest.approx([1000.0, 3000.0])
        assert list(times) == pytest.approx([1.0, 2.0])

    def test_empty_windows_reported_as_zero(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, window=0.5)
        sim.schedule(1.6, lambda: meter.record(
            Packet(0, 100, "a", "b", kind="data")))
        sim.run()
        _, rates = meter.as_arrays()
        assert list(rates) == pytest.approx([0.0, 0.0, 0.0])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ThroughputMeter(Simulator(), window=0.0)

    def test_flush_emits_final_partial_window(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, window=1.0)
        sim.schedule(0.5, lambda: meter.record(
            Packet(0, 1000, "a", "b", kind="data")))
        sim.schedule(1.25, lambda: meter.record(
            Packet(0, 500, "a", "b", kind="data")))
        sim.run()
        meter.flush()
        times, rates = meter.as_arrays()
        # Closed window [0,1) -> 1000 B/s, then the partial quarter
        # window holding 500 B normalized by its true 0.25s span.
        assert list(times) == pytest.approx([1.0, 1.25])
        assert list(rates) == pytest.approx([1000.0, 2000.0])

    def test_flush_with_nothing_pending_is_noop(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, window=1.0)
        sim.schedule(1.5, lambda: meter.record(
            Packet(0, 100, "a", "b", kind="data")))
        sim.run()
        # Roll the open window closed, then flush twice: the second
        # flush has nothing accumulated and must add no samples.
        meter.flush()
        count = len(meter.times)
        meter.flush()
        assert len(meter.times) == count

    def test_window_rollover_spans_gaps(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, window=0.5)
        sim.schedule(0.1, lambda: meter.record(
            Packet(0, 250, "a", "b", kind="data")))
        sim.schedule(2.1, lambda: meter.record(
            Packet(0, 250, "a", "b", kind="data")))
        sim.run()
        _, rates = meter.as_arrays()
        # Windows [0,.5) [.5,1) [1,1.5) [1.5,2): first holds 250 B,
        # the idle middle ones are explicit zeros, not missing rows.
        assert list(rates) == pytest.approx([500.0, 0.0, 0.0, 0.0])
