"""Workload generation: size CDF, arrivals, dynamic traffic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DCQCNParams
from repro.sim.red import REDMarker
from repro.sim.topology import dumbbell
from repro.workloads.distributions import (EmpiricalCDF, WEB_SEARCH_CDF_KB,
                                           arrival_rate_for_load,
                                           data_mining_sizes_bytes,
                                           poisson_interarrivals,
                                           web_search_sizes_bytes)
from repro.workloads.generator import DynamicWorkload, WorkloadConfig


class TestEmpiricalCDF:
    def test_quantile_endpoints(self):
        cdf = web_search_sizes_bytes()
        assert cdf.quantile(0.0) == pytest.approx(1024.0)
        assert cdf.quantile(1.0) == pytest.approx(6900 * 1024.0)

    def test_quantile_interpolates(self):
        cdf = EmpiricalCDF([(0.0, 0.0), (10.0, 1.0)])
        assert cdf.quantile(0.25) == pytest.approx(2.5)

    def test_mean_uniform(self):
        cdf = EmpiricalCDF([(0.0, 0.0), (10.0, 1.0)])
        assert cdf.mean() == pytest.approx(5.0)

    def test_web_search_mean_in_expected_range(self):
        mean_kb = EmpiricalCDF(WEB_SEARCH_CDF_KB).mean()
        # Heavy tail pulls the mean into the hundreds of KB.
        assert 150 < mean_kb < 500

    def test_sample_mean_matches_analytic(self):
        cdf = web_search_sizes_bytes()
        rng = np.random.default_rng(0)
        samples = cdf.sample_many(rng, 200_000)
        assert samples.mean() == pytest.approx(cdf.mean(), rel=0.02)

    def test_small_flow_fraction(self):
        """~70% of web-search flows are below 100 KB (paper's 'small')."""
        cdf = web_search_sizes_bytes()
        rng = np.random.default_rng(1)
        samples = cdf.sample_many(rng, 100_000)
        fraction = np.mean(samples < 100 * 1024)
        assert fraction == pytest.approx(0.75, abs=0.07)

    def test_data_mining_heavier_tail_than_web_search(self):
        """Data mining: smaller median, far larger mean -- most bytes
        ride on elephants."""
        web = web_search_sizes_bytes()
        mining = data_mining_sizes_bytes()
        assert mining.quantile(0.5) < web.quantile(0.5)
        assert mining.mean() > web.mean()

    def test_data_mining_mostly_tiny_flows(self):
        cdf = data_mining_sizes_bytes()
        rng = np.random.default_rng(2)
        samples = cdf.sample_many(rng, 100_000)
        assert np.mean(samples < 100 * 1024) > 0.7

    def test_data_mining_usable_as_workload_cdf(self):
        from repro.core.params import DCQCNParams
        from repro.sim.red import REDMarker
        from repro.sim.topology import dumbbell
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=10)
        marker = REDMarker(params.red, params.mtu_bytes, seed=1)
        net = dumbbell(4, link_gbps=10, marker=marker)
        config = WorkloadConfig(protocol="dcqcn", load=0.3,
                                duration=0.05, seed=3,
                                size_cdf=data_mining_sizes_bytes())
        workload = DynamicWorkload(net, config, params)
        workload.run(drain_time=0.1)
        assert workload.completion_fraction > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(0.0, 0.0)])
        with pytest.raises(ValueError):
            EmpiricalCDF([(0.0, 0.1), (1.0, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalCDF([(5.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalCDF([(0.0, 0.0), (1.0, 0.5), (2.0, 0.4),
                          (3.0, 1.0)])
        cdf = web_search_sizes_bytes()
        with pytest.raises(ValueError):
            cdf.quantile(1.5)
        with pytest.raises(ValueError):
            cdf.sample_many(np.random.default_rng(0), -1)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_quantile_monotone(self, u1, u2):
        cdf = web_search_sizes_bytes()
        low, high = sorted([u1, u2])
        assert cdf.quantile(low) <= cdf.quantile(high)

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=20)
    def test_samples_within_support(self, count):
        cdf = web_search_sizes_bytes()
        samples = cdf.sample_many(np.random.default_rng(7), count)
        if count:
            assert samples.min() >= 1024.0 - 1e-6
            assert samples.max() <= 6900 * 1024.0 + 1e-6


class TestArrivals:
    def test_poisson_rate(self):
        rng = np.random.default_rng(3)
        times = poisson_interarrivals(rng, rate_per_s=1000.0,
                                      horizon_s=20.0)
        assert times.size == pytest.approx(20_000, rel=0.05)
        assert np.all(np.diff(times) > 0)
        assert times[-1] < 20.0

    def test_poisson_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_interarrivals(rng, 0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_interarrivals(rng, 1.0, 0.0)

    def test_arrival_rate_for_load(self):
        # 8 Gbps reference at load 0.5 with 1 MB mean flows.
        rate = arrival_rate_for_load(0.5, 1e9, 1e6)
        assert rate == pytest.approx(500.0)

    def test_arrival_rate_validation(self):
        with pytest.raises(ValueError):
            arrival_rate_for_load(0.0, 1e9, 1e6)
        with pytest.raises(ValueError):
            arrival_rate_for_load(0.5, 0.0, 1e6)


class TestDynamicWorkload:
    def build(self, load=0.4, duration=0.05, seed=1):
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=10)
        marker = REDMarker(params.red, params.mtu_bytes, seed=9)
        net = dumbbell(4, link_gbps=10, marker=marker)
        config = WorkloadConfig(protocol="dcqcn", load=load,
                                duration=duration, seed=seed)
        return net, DynamicWorkload(net, config, params)

    def test_flows_complete(self):
        net, workload = self.build()
        workload.run(drain_time=0.05)
        assert workload.scheduled_count > 0
        assert len(workload.flows) == workload.scheduled_count
        assert workload.completion_fraction > 0.9

    def test_offered_load_close_to_target(self):
        net, workload = self.build(load=0.4, duration=0.05)
        offered_rate = workload.offered_bytes / 0.05
        target = 0.4 * 1e9  # 0.4 of the 8 Gbps reference, in bytes/s
        assert offered_rate == pytest.approx(target, rel=0.45)

    def test_deterministic_given_seed(self):
        _, first = self.build(seed=5)
        _, second = self.build(seed=5)
        assert first.scheduled_count == second.scheduled_count
        assert first.offered_bytes == second.offered_bytes

    def test_different_seeds_differ(self):
        _, first = self.build(seed=5)
        _, second = self.build(seed=6)
        assert first.offered_bytes != second.offered_bytes

    def test_completed_senders_retired(self):
        net, workload = self.build()
        workload.run(drain_time=0.05)
        for flow in workload.completed_flows:
            assert flow.flow_id not in net.senders

    def test_requires_dumbbell_style_names(self):
        from repro.sim.topology import single_switch
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=1)
        net = single_switch(2, link_gbps=10)
        config = WorkloadConfig(protocol="dcqcn", load=0.2,
                                duration=0.01)
        with pytest.raises(ValueError):
            DynamicWorkload(net, config, params)
