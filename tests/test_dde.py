"""DDE integrator: accuracy against known solutions, error handling."""

import math

import numpy as np
import pytest

from repro.core.fluid import dde
from repro.core.fluid.base import FluidModel, FluidTrace


class ExponentialDecay(FluidModel):
    """dx/dt = -x; solution x(t) = exp(-t)."""

    def initial_state(self):
        return np.array([1.0])

    def derivatives(self, t, state, history):
        return -state

    def state_labels(self):
        return ["x"]


class DelayedNegativeFeedback(FluidModel):
    """dx/dt = -x(t - tau) with constant pre-history 1.

    For t in [0, tau] the exact solution is x(t) = 1 - t (the delayed
    term is the constant pre-history).
    """

    def __init__(self, tau: float):
        self.tau = tau

    def initial_state(self):
        return np.array([1.0])

    def derivatives(self, t, state, history):
        return -history(t - self.tau)

    def state_labels(self):
        return ["x"]


class ClampedGrowth(FluidModel):
    """dx/dt = +10 with a clamp at 1.0 -- exercises clamp()."""

    def initial_state(self):
        return np.array([0.0])

    def derivatives(self, t, state, history):
        return np.array([10.0])

    def state_labels(self):
        return ["x"]

    def clamp(self, state):
        return np.minimum(state, 1.0)


class Diverging(FluidModel):
    """dx/dt = x^2 from 1 -- blows up at t = 1."""

    def initial_state(self):
        return np.array([1.0])

    def derivatives(self, t, state, history):
        with np.errstate(over="ignore"):
            return state ** 2

    def state_labels(self):
        return ["x"]


class TestAccuracy:
    @pytest.mark.parametrize("method,tolerance", [
        ("euler", 1e-2), ("heun", 1e-4), ("rk4", 1e-6)])
    def test_exponential_decay(self, method, tolerance):
        trace = dde.integrate(ExponentialDecay(), t_end=1.0, dt=1e-3,
                              method=method)
        assert trace.final("x") == pytest.approx(math.exp(-1.0),
                                                 abs=tolerance)

    def test_order_improves_with_method(self):
        errors = {}
        for method in ("euler", "heun", "rk4"):
            trace = dde.integrate(ExponentialDecay(), t_end=1.0,
                                  dt=1e-2, method=method)
            errors[method] = abs(trace.final("x") - math.exp(-1.0))
        assert errors["rk4"] < errors["heun"] < errors["euler"]

    def test_halving_dt_reduces_heun_error_fourfold(self):
        coarse = dde.integrate(ExponentialDecay(), 1.0, dt=2e-2,
                               method="heun")
        fine = dde.integrate(ExponentialDecay(), 1.0, dt=1e-2,
                             method="heun")
        err_coarse = abs(coarse.final("x") - math.exp(-1.0))
        err_fine = abs(fine.final("x") - math.exp(-1.0))
        assert err_coarse / err_fine == pytest.approx(4.0, rel=0.3)

    def test_delayed_feedback_linear_phase(self):
        tau = 0.5
        trace = dde.integrate(DelayedNegativeFeedback(tau), t_end=0.5,
                              dt=1e-3, method="heun")
        # x(t) = 1 - t on [0, tau].
        assert trace.final("x") == pytest.approx(0.5, abs=1e-6)
        mid = trace.column("x")[len(trace) // 2]
        assert mid == pytest.approx(1.0 - trace.times[len(trace) // 2],
                                    abs=1e-6)

    def test_delayed_feedback_oscillates_for_large_delay(self):
        # tau > pi/2 destabilizes dx/dt = -x(t - tau): the tail swings
        # past zero instead of settling.
        trace = dde.integrate(DelayedNegativeFeedback(2.0), t_end=30.0,
                              dt=5e-3, method="heun")
        tail = trace.tail("x", 10.0)
        assert tail.min() < -0.5
        assert tail.max() > 0.5


class TestMechanics:
    def test_clamp_applied_each_step(self):
        trace = dde.integrate(ClampedGrowth(), t_end=1.0, dt=1e-2)
        assert trace.column("x").max() <= 1.0 + 1e-12
        assert trace.final("x") == pytest.approx(1.0)

    def test_record_stride_thins_output(self):
        full = dde.integrate(ExponentialDecay(), 1.0, dt=1e-3)
        thin = dde.integrate(ExponentialDecay(), 1.0, dt=1e-3,
                             record_stride=10)
        assert len(thin) == (len(full) - 1) // 10 + 1

    def test_initial_state_override(self):
        trace = dde.integrate(ExponentialDecay(), 0.5, dt=1e-3,
                              initial_state=np.array([2.0]))
        assert trace.column("x")[0] == pytest.approx(2.0)
        assert trace.final("x") == pytest.approx(2 * math.exp(-0.5),
                                                 abs=1e-3)

    def test_divergence_raises(self):
        with pytest.raises(FloatingPointError):
            dde.integrate(Diverging(), t_end=2.0, dt=1e-3)

    def test_available_methods(self):
        assert set(dde.available_methods()) == {"euler", "heun", "rk4"}

    @pytest.mark.parametrize("kwargs", [
        dict(dt=-1e-3), dict(t_end=0.0), dict(record_stride=0),
        dict(method="rk45")])
    def test_argument_validation(self, kwargs):
        base = dict(t_end=1.0, dt=1e-3, method="heun", record_stride=1)
        base.update(kwargs)
        with pytest.raises(ValueError):
            dde.integrate(ExponentialDecay(), **base)

    def test_wrong_initial_state_shape_rejected(self):
        with pytest.raises(ValueError):
            dde.integrate(ExponentialDecay(), 1.0, dt=1e-3,
                          initial_state=np.array([1.0, 2.0]))


class TestFluidTrace:
    def make_trace(self):
        times = np.linspace(0, 1, 11)
        states = np.column_stack([times, times ** 2])
        return FluidTrace(times, states, ["a", "b"])

    def test_column_lookup(self):
        trace = self.make_trace()
        assert trace.column("b")[-1] == pytest.approx(1.0)

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            self.make_trace().column("zzz")

    def test_tail_mean_and_std(self):
        trace = self.make_trace()
        assert trace.tail_mean("a", 0.2) == pytest.approx(0.9, abs=1e-9)
        assert trace.tail_std("a", 0.0) == pytest.approx(0.0)

    def test_subsample(self):
        trace = self.make_trace().subsample(2)
        assert len(trace) == 6

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            FluidTrace(np.array([0.0]), np.array([[1.0, 2.0]]),
                       ["x", "x"])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            FluidTrace(np.array([0.0, 1.0]), np.array([[1.0]]), ["x"])

    def test_save_load_roundtrip(self, tmp_path):
        trace = self.make_trace()
        target = tmp_path / "trace.npz"
        trace.save(target)
        loaded = FluidTrace.load(target)
        assert loaded.labels == trace.labels
        assert loaded.times == pytest.approx(trace.times)
        assert loaded.states == pytest.approx(trace.states)
        assert loaded.final("b") == trace.final("b")

    def test_saved_integration_reloads(self, tmp_path):
        original = dde.integrate(ExponentialDecay(), 0.5, dt=1e-3)
        target = tmp_path / "decay.npz"
        original.save(target)
        loaded = FluidTrace.load(target)
        assert loaded.tail_mean("x", 0.1) == pytest.approx(
            original.tail_mean("x", 0.1))


class StiffDecay(FluidModel):
    """dx/dt = -k x: explicit euler is stable only for dt < 2/k.

    With k = 3000 and dt = 1e-3 the euler multiplier is -2 per step
    (oscillating blow-up); one halving brings it to -0.5 (stable).
    Exercises the automatic halved-step retry on a model that is
    perfectly well-posed, just under-resolved.
    """

    def __init__(self, k: float = 3000.0):
        self.k = k

    def initial_state(self):
        return np.array([1.0])

    def derivatives(self, t, state, history):
        return -self.k * state

    def state_labels(self):
        return ["x"]


class TestDivergenceGuards:
    def test_error_carries_structured_failure(self):
        with pytest.raises(dde.IntegrationError) as excinfo:
            dde.integrate(Diverging(), t_end=2.0, dt=1e-3,
                          max_retries=0)
        failure = excinfo.value.failure
        assert isinstance(failure, dde.IntegrationFailure)
        assert failure.method == "heun"
        assert failure.dt == pytest.approx(1e-3)
        assert failure.retries == 0
        assert failure.step > 0
        assert failure.time == pytest.approx(failure.step * 1e-3,
                                             rel=1e-6)
        assert "diverged" in str(excinfo.value)

    def test_halved_step_retry_rescues_stiff_model(self):
        model = StiffDecay()
        with pytest.raises(dde.IntegrationError):
            dde.integrate(model, t_end=0.05, dt=1e-3, method="euler",
                          max_retries=0)
        trace = dde.integrate(model, t_end=0.05, dt=1e-3,
                              method="euler", max_retries=1)
        # Rescued at dt/2, and the solution actually decays.
        assert abs(trace.final("x")) < 1.0
        assert np.all(np.isfinite(trace.states))

    def test_retries_exhausted_reports_final_attempt(self):
        with pytest.raises(dde.IntegrationError) as excinfo:
            dde.integrate(Diverging(), t_end=2.0, dt=1e-3,
                          max_retries=2)
        failure = excinfo.value.failure
        assert failure.retries == 2
        assert failure.dt == pytest.approx(2.5e-4)  # halved twice

    def test_divergence_limit_trips_before_overflow(self):
        with pytest.raises(dde.IntegrationError) as excinfo:
            dde.integrate(Diverging(), t_end=2.0, dt=1e-3,
                          max_retries=0, divergence_limit=10.0)
        failure = excinfo.value.failure
        assert "divergence limit" in failure.cause
        assert np.max(np.abs(failure.state)) > 10.0

    def test_divergence_limit_none_waits_for_nonfinite(self):
        with pytest.raises(dde.IntegrationError) as excinfo:
            dde.integrate(Diverging(), t_end=2.0, dt=1e-3,
                          max_retries=0, divergence_limit=None)
        assert "finite" in excinfo.value.failure.cause

    def test_max_retries_validation(self):
        with pytest.raises(ValueError):
            dde.integrate(ExponentialDecay(), t_end=1.0, dt=1e-3,
                          max_retries=-1)

    def test_healthy_integration_untouched_by_guards(self):
        trace = dde.integrate(ExponentialDecay(), t_end=1.0, dt=1e-3)
        assert trace.final("x") == pytest.approx(math.exp(-1.0),
                                                 abs=1e-3)
