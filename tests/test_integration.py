"""Cross-module integration: the Section 5.1 pipeline end to end."""

import numpy as np
import pytest

from repro.experiments import fct_study
from repro.experiments.fig15_fct_cdf import quantile_rows


#: Shared small configuration so the expensive dumbbell runs happen
#: once per protocol for the whole module.
SMALL = dict(duration=0.12, drain=0.1, n_pairs=6, seed=7, warmup=0.01)


@pytest.fixture(scope="module")
def study_runs():
    return {protocol: fct_study.run_protocol(protocol, 0.6, **SMALL)
            for protocol in fct_study.STUDY_PROTOCOLS}


class TestFCTStudy:
    def test_all_protocols_complete_most_flows(self, study_runs):
        for protocol, run in study_runs.items():
            assert run.installed > 50, protocol
            assert run.completion_fraction > 0.9, protocol

    def test_summary_percentiles_ordered(self, study_runs):
        for run in study_runs.values():
            assert run.summary.median_s <= run.summary.p90_s \
                <= run.summary.p99_s

    def test_queue_series_nonempty(self, study_runs):
        for run in study_runs.values():
            assert run.queue_times.size > 100
            assert run.queue_bytes.min() >= 0

    def test_utilization_sane(self, study_runs):
        # Offered 0.6 * 8 Gbps on a 10 Gbps link = 48%, measured over
        # the arrival horizon (drain traffic can push it a bit higher).
        for protocol, run in study_runs.items():
            assert 0.25 < run.utilization < 1.05, protocol

    def test_dcqcn_controls_queue_best(self, study_runs):
        """Fig. 16's shape: DCQCN's queue stays in the RED band while
        the delay-based protocols wander far above it."""
        dcqcn_p99 = np.percentile(study_runs["dcqcn"].queue_bytes, 99)
        timely_max = study_runs["timely"].queue_bytes.max()
        patched_max = study_runs["patched_timely"].queue_bytes.max()
        assert timely_max > dcqcn_p99
        assert patched_max > dcqcn_p99

    def test_report_rendering(self, study_runs):
        table = fct_study.report_queue_stats(list(study_runs.values()))
        assert "Fig. 16" in table
        loads_table = fct_study.report_fct_vs_load(
            {p: [r] for p, r in study_runs.items()})
        assert "Fig. 14" in loads_table
        for protocol in fct_study.STUDY_PROTOCOLS:
            assert protocol in loads_table


class TestFig15Pipeline:
    def test_cdf_quantiles_monotone(self, study_runs):
        rows = quantile_rows(study_runs)
        for row in rows:
            values = row[1:]
            assert all(a <= b for a, b in zip(values, values[1:]))

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            fct_study.protocol_setup("swift", 10.0)


class TestProtocolSetup:
    def test_dcqcn_gets_marker(self):
        params, marker, kwargs = fct_study.protocol_setup("dcqcn", 10.0)
        assert marker is not None
        assert kwargs == {}

    def test_timely_uses_64kb_bursts(self):
        params, marker, kwargs = fct_study.protocol_setup("timely",
                                                          10.0)
        assert marker is None
        assert kwargs == {"pacing": "burst"}
        assert params.segment == pytest.approx(64.0)

    def test_patched_uses_16kb_segments(self):
        params, _, kwargs = fct_study.protocol_setup("patched_timely",
                                                     10.0)
        assert params.base.segment == pytest.approx(16.0)
        assert kwargs == {"pacing": "burst"}
