"""Flow bookkeeping and host dispatch."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.flows import Flow, FlowRegistry
from repro.sim.node import Host
from repro.sim.packet import Packet


class RecordingAgent:
    def __init__(self):
        self.data = []
        self.acks = []
        self.cnps = []

    def on_data(self, packet):
        self.data.append(packet)

    def on_ack(self, packet):
        self.acks.append(packet)

    def on_cnp(self, packet):
        self.cnps.append(packet)


class TestFlow:
    def test_fct_requires_completion(self):
        flow = Flow(0, "s0", "r0", 1000, 0.5)
        with pytest.raises(ValueError):
            flow.fct
        flow.completion_time = 1.5
        assert flow.fct == pytest.approx(1.0)

    def test_long_lived_flow_never_completes(self):
        flow = Flow(0, "s0", "r0", None, 0.0)
        assert flow.is_long_lived
        assert not flow.all_bytes_sent()

    def test_all_bytes_sent(self):
        flow = Flow(0, "s0", "r0", 2048, 0.0)
        flow.bytes_sent = 1024
        assert not flow.all_bytes_sent()
        flow.bytes_sent = 2048
        assert flow.all_bytes_sent()

    def test_validation(self):
        with pytest.raises(ValueError):
            Flow(0, "s0", "r0", 0, 0.0)
        with pytest.raises(ValueError):
            Flow(0, "s0", "r0", 100, -1.0)


class TestFlowRegistry:
    def test_unique_ids(self):
        registry = FlowRegistry()
        flows = [registry.create("s0", "r0", 100, 0.0)
                 for _ in range(5)]
        assert len({f.flow_id for f in flows}) == 5
        assert len(registry) == 5

    def test_lookup(self):
        registry = FlowRegistry()
        flow = registry.create("s0", "r0", 100, 0.0)
        assert registry[flow.flow_id] is flow

    def test_completed_sorted_by_completion(self):
        registry = FlowRegistry()
        first = registry.create("s0", "r0", 100, 0.0)
        second = registry.create("s1", "r1", 100, 0.0)
        second.completion_time = 1.0
        first.completion_time = 2.0
        assert registry.completed() == [second, first]

    def test_incomplete_excludes_long_lived(self):
        registry = FlowRegistry()
        registry.create("s0", "r0", None, 0.0)
        pending = registry.create("s1", "r1", 100, 0.0)
        assert registry.incomplete() == [pending]


class TestHostDispatch:
    def make_host(self):
        return Host(Simulator(), "h0")

    def test_data_goes_to_receiver(self):
        host = self.make_host()
        agent = RecordingAgent()
        host.register_receiver(7, agent)
        host.receive(Packet(7, 1024, "s", "h0", kind="data"))
        assert len(agent.data) == 1

    def test_ack_and_cnp_go_to_sender(self):
        host = self.make_host()
        agent = RecordingAgent()
        host.register_sender(7, agent)
        host.receive(Packet(7, 64, "r", "h0", kind="ack"))
        host.receive(Packet(7, 64, "r", "h0", kind="cnp"))
        assert len(agent.acks) == 1
        assert len(agent.cnps) == 1

    def test_unknown_flow_dropped_silently(self):
        host = self.make_host()
        host.receive(Packet(99, 1024, "s", "h0", kind="data"))
        host.receive(Packet(99, 64, "s", "h0", kind="ack"))

    def test_unknown_kind_raises(self):
        host = self.make_host()
        with pytest.raises(ValueError):
            host.receive(Packet(0, 64, "s", "h0", kind="pause"))

    def test_duplicate_registration_rejected(self):
        host = self.make_host()
        host.register_sender(1, RecordingAgent())
        with pytest.raises(ValueError):
            host.register_sender(1, RecordingAgent())

    def test_active_senders_tracks_registry(self):
        host = self.make_host()
        assert host.active_senders == 0
        host.register_sender(1, RecordingAgent())
        host.register_sender(2, RecordingAgent())
        assert host.active_senders == 2
        host.unregister_sender(1)
        assert host.active_senders == 1
        host.unregister_sender(1)  # idempotent
        assert host.active_senders == 1

    def test_send_requires_nic(self):
        host = self.make_host()
        with pytest.raises(RuntimeError):
            host.send(Packet(0, 1024, "h0", "r", kind="data"))
