"""Acceptance path: an injected engine bug travels the whole harness.

A deliberately broken :class:`CalendarScheduler` (a 1 ns skew on a
subset of pushed entries -- the kind of off-by-one-tick defect a real
scheduler regression would introduce) must be

1. caught by the ``bit_identical`` oracle of the differential matrix,
2. reduced by the :class:`~repro.qa.shrink.Shrinker` to a smaller
   scenario that still trips the same oracle, and
3. persisted as a crash capsule that *reproduces* under ``repro
   replay`` while the bug is live and replays *clean* once the
   mutation is reverted (the fixed-bug / regression-corpus workflow).
"""

import pytest

from repro.perf.resilience import replay_capsule
from repro.qa import (
    DifferentialRunner,
    FaultSpec,
    FlowSpec,
    ScenarioSpec,
    Shrinker,
)
from repro.qa.capsule import capsule_for_verdict, write_capsule
from repro.sim.scheduler import CalendarScheduler

_REAL_PUSH = CalendarScheduler.push


def _skewed_push(self, entry):
    """The injected bug: every 7th-ish entry lands 1 ns late.

    Time only ever *increases*, so the scheduler's own invariants
    (entries never precede the cursor, serve order stays sorted)
    hold -- the mutation is invisible to the per-run oracles and
    detectable only by differencing against the heap baseline.
    """
    time, seq, event = entry
    if seq % 7 == 3:
        entry = (time + 1e-9, seq, event)
    _REAL_PUSH(self, entry)


def mutation_spec():
    """A deliberately over-dressed scenario (so the shrinker has
    flows, a fault and overrides to strip)."""
    return ScenarioSpec(
        topology="single_switch",
        topology_args={"n_senders": 4},
        aqm="red",
        flows=tuple(FlowSpec("dcqcn", f"s{i}", "recv", 32768)
                    for i in range(4)),
        param_overrides={"dcqcn": {"g": 0.125}},
        faults=(FaultSpec("delay", "sw->recv", extra=1e-5,
                          start=0.0, stop=0.001),),
        duration=0.006, seed=11)


class TestDeliberateMutation:
    def test_clean_engine_passes_the_matrix(self):
        runner = DifferentialRunner(classes=["scheduler"])
        verdict = runner.run(mutation_spec())
        assert verdict.ok, [str(v) for v in verdict.violations]

    def test_mutation_is_caught_shrunk_and_replayed(self, tmp_path,
                                                    monkeypatch):
        spec = mutation_spec()
        runner = DifferentialRunner(classes=["scheduler"])

        with monkeypatch.context() as patch:
            patch.setattr(CalendarScheduler, "push", _skewed_push)

            # 1. The oracle catches the mutation.
            verdict = runner.run(spec)
            assert verdict.oracles_failed() == ["bit_identical"]

            # 2. The shrinker reduces it, preserving the oracle.
            result = Shrinker(runner).shrink(spec, "bit_identical")
            assert result.reduced
            shrunk = result.spec
            assert "bit_identical" in \
                result.verdict.oracles_failed()
            assert len(shrunk.flows) < len(spec.flows)
            assert not shrunk.faults
            assert not shrunk.param_overrides

            # 3. The capsule reproduces while the bug is live.
            capsule = capsule_for_verdict(
                result.verdict, fuzz_seed=0, index=0,
                matrix=["scheduler"])
            assert capsule.fn == "repro.qa.capsule:check_scenario"
            assert capsule.error_type == "OracleViolation"
            path = write_capsule(capsule, tmp_path)
            replay = replay_capsule(path)
            assert replay.reproduced
            assert replay.error_type == "OracleViolation"
            assert "bit_identical" in replay.error_message

        # 4. With the mutation reverted ("bug fixed"), the same
        # capsule replays clean -- exactly what the regression
        # corpus asserts about shipped code.
        assert CalendarScheduler.push is _REAL_PUSH
        replay = replay_capsule(path)
        assert not replay.reproduced

    def test_mutated_tie_order_is_caught(self, monkeypatch):
        # A second, orthogonal defect family: breaking the (time,
        # seq) FIFO tie contract instead of the clock.  Simultaneous
        # events serve LIFO under the mutation, which the digest of
        # any tie-heavy scenario (incast, simultaneous starts)
        # exposes.
        def lifo_ties(self, entry):
            time, seq, event = entry
            _REAL_PUSH(self, (time, -seq, event))

        spec = mutation_spec().replace(faults=(),
                                       param_overrides={})
        runner = DifferentialRunner(classes=["scheduler"])
        with monkeypatch.context() as patch:
            patch.setattr(CalendarScheduler, "push", lifo_ties)
            verdict = runner.run(spec)
        assert "bit_identical" in verdict.oracles_failed()
