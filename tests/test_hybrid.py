"""Hybrid fluid/packet mode: validation, coupling, oracle compatibility.

The hybrid backend is *not* bit-identical to the packet engine -- the
elephants are Euler-stepped fluid state.  The contract tested here is
the one ``docs/PERFORMANCE.md`` documents:

* tail-mean queue within +/-50% of the heap packet oracle on the
  Fig. 5 scenario, and
* the stability *ordering* preserved: the 85 us extra-delay run keeps
  a higher queue coefficient of variation than the low-delay run.
"""

import numpy as np
import pytest

from repro import units
from repro.core.params import DCQCNParams
from repro.experiments import fig05_dcqcn_sim_instability as fig05
from repro.sim.hybrid import (
    DEFAULT_TICK,
    CoupledMarker,
    HybridDCQCNCoupler,
    attach_hybrid,
)
from repro.sim.pfc import PFCController
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


def _params(n=2):
    return DCQCNParams.paper_default(capacity_gbps=40.0, num_flows=n)


class TestValidation:
    def test_rejects_non_hybrid_engine(self):
        net = single_switch(2, engine="heap")
        with pytest.raises(ValueError, match="engine='hybrid'"):
            HybridDCQCNCoupler(net, _params())

    def test_rejects_bad_tick(self):
        net = single_switch(2, engine="hybrid")
        with pytest.raises(ValueError, match="tick"):
            HybridDCQCNCoupler(net, _params(), tick=0.0)

    def test_rejects_pfc_switches(self):
        net = single_switch(2, engine="hybrid")
        net.switches["sw"].pfc = PFCController(net.sim, 1_000, 500)
        with pytest.raises(ValueError, match="PFC"):
            HybridDCQCNCoupler(net, _params())

    def test_double_start_raises(self):
        net = single_switch(2, engine="hybrid")
        coupler = attach_hybrid(net, _params(), start=True)
        with pytest.raises(RuntimeError, match="already started"):
            coupler.start()

    def test_attach_without_start_schedules_nothing(self):
        net = single_switch(2, engine="hybrid")
        attach_hybrid(net, _params(), start=False)
        net.sim.run(until=10 * DEFAULT_TICK)
        assert net.sim.events_processed == 0


class TestCoupledMarker:
    def test_marker_sees_fluid_backlog(self):
        params = _params()
        marker = REDMarker(params.red, params.mtu_bytes, seed=1)
        net = single_switch(2, link_gbps=40.0, marker=marker,
                            engine="hybrid")
        coupler = attach_hybrid(net, params, start=False)
        wrapped = net.bottleneck_port.marker
        assert isinstance(wrapped, CoupledMarker)
        # Push the fluid backlog above kmax: a zero-occupancy packet
        # queue must now mark with the inner marker's pmax certainty.
        coupler.q_fluid = 10.0 * params.red.kmax
        assert wrapped.marking_probability(0.0) == \
            marker.marking_probability(coupler.fluid_backlog_bytes)
        assert wrapped.marking_probability(0.0) > 0.0

    def test_counters_delegate(self):
        params = _params()
        marker = REDMarker(params.red, params.mtu_bytes, seed=1)
        net = single_switch(2, link_gbps=40.0, marker=marker,
                            engine="hybrid")
        attach_hybrid(net, params, start=False)
        wrapped = net.bottleneck_port.marker
        assert wrapped.mark_trials == marker.mark_trials
        assert wrapped.marks == marker.marks
        assert wrapped.update_interval == marker.update_interval


class TestFluidStepping:
    def test_elephants_converge_toward_capacity(self):
        """With no mice, summed elephant rates track the line rate."""
        params = _params(n=4)
        net = single_switch(4, link_gbps=40.0, engine="hybrid")
        coupler = attach_hybrid(net, params)
        net.sim.run(until=0.01)
        total = float(np.sum(coupler.rc))
        assert total == pytest.approx(coupler.capacity_pkts, rel=0.25)
        assert len(coupler.times) > 1000

    def test_residual_rate_scaling(self):
        """Elephants at full rate squeeze the port to the floor rate."""
        params = _params(n=4)
        net = single_switch(4, link_gbps=40.0, engine="hybrid")
        coupler = attach_hybrid(net, params)
        line = coupler.line_rate_bytes
        net.sim.run(until=0.005)
        assert net.bottleneck_port.rate < line

    def test_mice_complete_alongside_elephants(self):
        """A finite packet-mode mouse finishes under fluid pressure."""
        params = _params(n=4)
        marker = REDMarker(params.red, params.mtu_bytes, seed=1)
        net = single_switch(4, link_gbps=40.0, marker=marker,
                            engine="hybrid")
        attach_hybrid(net, params)
        install_flow(net, "dcqcn", "s0", "recv", 200 * 1024, 0.0,
                     params)
        net.sim.run(until=0.05)
        flow = net.registry[0]
        assert flow.completed
        # The mouse shared the port with elephants at ~line rate, so
        # its FCT must exceed the unloaded transfer time.
        unloaded = 200 * 1024 / net.link_rate_bytes
        assert flow.fct > unloaded


class TestOracleCompatibility:
    @pytest.fixture(scope="class")
    def rows(self):
        duration = 0.02
        oracle = fig05.run(duration=duration, engine="heap")
        hybrid = fig05.run(duration=duration, engine="hybrid")
        return oracle, hybrid

    def test_tail_mean_within_tolerance(self, rows):
        oracle, hybrid = rows
        for o, h in zip(oracle, hybrid):
            assert h.queue_mean_kb == pytest.approx(o.queue_mean_kb,
                                                    rel=0.5), \
                f"extra_delay={o.extra_delay_us}us"

    def test_stability_ordering_preserved(self, rows):
        _, hybrid = rows
        by_delay = {r.extra_delay_us: r for r in hybrid}
        stable = by_delay[0.0]
        unstable = by_delay[85.0]
        assert unstable.coefficient_of_variation > \
            stable.coefficient_of_variation

    def test_hybrid_is_cheaper_than_packet(self, rows):
        """One event per tick: far below the packet engine's count."""
        duration = 0.02
        net = single_switch(10, link_gbps=40.0, engine="hybrid")
        attach_hybrid(
            net, DCQCNParams.paper_default(capacity_gbps=40.0,
                                           num_flows=10),
            extra_feedback_delay=units.us(85.0))
        net.sim.run(until=duration)
        assert net.sim.events_processed < duration / DEFAULT_TICK + 10


class TestDriftTelemetry:
    def run_coupled(self, until=2e-3):
        net = single_switch(2, link_gbps=40.0, engine="hybrid")
        coupler = attach_hybrid(net, _params())
        net.sim.run(until=until)
        return coupler

    def test_drift_signals_keys_and_sanity(self):
        coupler = self.run_coupled()
        signals = coupler.drift_signals()
        assert set(signals) == {"hybrid_backlog_delta_bytes",
                                "hybrid_queue_bytes",
                                "hybrid_rate_residual",
                                "hybrid_tail_drift_bytes"}
        assert signals["hybrid_queue_bytes"] >= 0.0
        assert 0.0 <= signals["hybrid_rate_residual"] <= 1.0

    def test_gauges_published_under_active_registry(self):
        from repro.obs.metrics import MetricsRegistry, use_registry
        net = single_switch(2, link_gbps=40.0, engine="hybrid")
        coupler = attach_hybrid(net, _params())
        with use_registry(MetricsRegistry()) as registry:
            net.sim.run(until=2e-3)
            snapshot = registry.snapshot()
        for name in ("sim.hybrid.backlog_delta_bytes",
                     "sim.hybrid.rate_residual",
                     "sim.hybrid.tail_drift_bytes"):
            assert snapshot[name]["type"] == "gauge"
        assert snapshot["sim.hybrid.rate_residual"]["value"] \
            == coupler.drift_signals()["hybrid_rate_residual"]

    def test_attach_drift_monitor_noop_without_session(self):
        from repro.sim.hybrid import attach_drift_monitor
        net = single_switch(2, link_gbps=40.0, engine="hybrid")
        coupler = attach_hybrid(net, _params(), start=False)
        assert attach_drift_monitor(coupler, interval=1e-4) is None
        # Nothing was scheduled: the zero-cost contract.
        net.sim.run(until=10 * DEFAULT_TICK)
        assert net.sim.events_processed == 0

    def test_attach_drift_monitor_samples_with_session(self):
        from repro.obs import health as H
        from repro.sim.hybrid import attach_drift_monitor
        net = single_switch(2, link_gbps=40.0, engine="hybrid")
        coupler = attach_hybrid(net, _params())
        session = H.HealthSession()
        monitor = attach_drift_monitor(coupler, interval=1e-4,
                                       session=session,
                                       context="test-cell")
        assert monitor is not None
        net.sim.run(until=2e-3)
        monitor.finalize()
        detector = monitor.detectors[0]
        assert len(detector._times) > 10
