"""Flow forensics: FCT attribution exactness, causes, and surfaces."""

import pytest

from repro.core.params import DCQCNParams
from repro.obs.forensics import (COMPONENTS, FlowLedger,
                                 attach_flow_forensics, render_explain,
                                 render_flow, use_ledger)
from repro.obs.health import HealthFinding, HealthSession
from repro.obs.metrics import MetricsRegistry
from repro.obs.runlog import RunLog, validate_events
from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet
from repro.sim.topology import install_flow, single_switch


class StubFlow:
    """Hand-driven stand-in for :class:`repro.sim.flows.Flow`."""

    def __init__(self, flow_id, src, dst, size_bytes, start_time,
                 completion_time=None):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.start_time = start_time
        self.completion_time = completion_time

    @property
    def completed(self):
        return self.completion_time is not None


class _Sink:
    name = "sink"

    def receive(self, packet, ingress=None):
        pass


class _Forwarder:
    """One-method device relaying arrivals onto a downstream port."""

    name = "sw"

    def __init__(self, port):
        self.port = port

    def receive(self, packet, ingress=None):
        self.port.send(packet)


class _StubHost:
    def __init__(self, name, port):
        self.name = name
        self.port = port


class _StubSwitch:
    def __init__(self, ports):
        self.ports = ports


class _StubNet:
    """The duck-typed slice of Network that FlowLedger.attach reads."""

    def __init__(self, hosts, switches):
        self.hosts = hosts
        self.switches = switches


class TestHandOracle:
    """Attribution against closed-form hand-computed scenarios."""

    def _two_hop(self):
        """1 MB/s two-hop path: hand numbers stay round milliseconds."""
        sim = Simulator()
        switch_port = Port(sim, 1e6, Link(sim, 2e-3, _Sink()),
                           name="sw-out")
        nic = Port(sim, 1e6, Link(sim, 1e-3, _Forwarder(switch_port)),
                   name="nic-s0")
        ledger = FlowLedger()
        ledger.attach(_StubNet(
            hosts={"s0": _StubHost("s0", nic)},
            switches={"sw": _StubSwitch({"out": switch_port})}))
        return sim, nic, ledger

    def test_pacing_split_and_exact_sum(self):
        # Three 1000 B packets at t = 0, 1 ms (back-to-back at line
        # rate) and 5 ms (a 4 ms gap: 1 ms covers the previous
        # packet's serialization, 3 ms is a deliberate pacing stall).
        # Last packet: NIC 5->6 ms, propagate 1 ms, switch 7->8 ms,
        # propagate 2 ms => completion at 10 ms.
        sim, nic, ledger = self._two_hop()
        flow = StubFlow(0, "s0", "sink", 3000, 0.0)
        ledger.register_flow(flow, protocol="dcqcn")
        for i, t in enumerate((0.0, 1e-3, 5e-3)):
            sim.schedule_at(t, nic.send,
                            Packet(0, 1000, "s0", "sink", kind="data",
                                   seq=i))
        sim.run()
        flow.completion_time = 10e-3
        ledger.finalize()
        (record,) = ledger.records()
        c = record.components
        assert c["serialization_s"] == pytest.approx(4e-3, rel=1e-12)
        assert c["rate_limited_s"] == pytest.approx(3e-3, rel=1e-12)
        assert c["propagation_s"] == pytest.approx(3e-3, rel=1e-12)
        assert c["queueing_s"] == pytest.approx(0.0, abs=1e-15)
        assert c["paused_s"] == 0.0
        # The components tile [start, completion] exactly.
        assert sum(c[k] for k in COMPONENTS) == \
            pytest.approx(record.fct_s, rel=1e-12)
        assert abs(c["residual_s"]) < 1e-12
        assert record.completed

    def test_pause_overlap_splits_queue_wait(self):
        # Two back-to-back packets; PFC pauses the port at 0.5 ms
        # (mid-serialization of the first) and resumes at 4 ms.  The
        # second packet's 4 ms queue wait splits into 0.5 ms genuine
        # queueing and 3.5 ms pause overlap.
        sim = Simulator()
        port = Port(sim, 1e6, Link(sim, 0.0, _Sink()), name="nic-s0")
        ledger = FlowLedger()
        ledger.attach(_StubNet(
            hosts={"s0": _StubHost("s0", port)}, switches={}))
        flow = StubFlow(0, "s0", "sink", 2000, 0.0)
        ledger.register_flow(flow)
        for i in range(2):
            port.send(Packet(0, 1000, "s0", "sink", kind="data",
                             seq=i))
        sim.schedule_at(0.5e-3, port.pause)
        sim.schedule_at(4e-3, port.resume)
        sim.run()
        flow.completion_time = 5e-3
        ledger.finalize()
        (record,) = ledger.records()
        c = record.components
        assert c["paused_s"] == pytest.approx(3.5e-3, rel=1e-12)
        assert c["queueing_s"] == pytest.approx(0.5e-3, rel=1e-12)
        assert c["serialization_s"] == pytest.approx(1e-3, rel=1e-12)
        assert abs(c["residual_s"]) < 1e-12
        pfc = [cause for cause in record.causes
               if cause["kind"] == "pfc"]
        assert len(pfc) == 1
        assert pfc[0]["port"] == "nic-s0"
        assert pfc[0]["pauses"] == 1
        assert pfc[0]["paused_s"] == pytest.approx(3.5e-3, rel=1e-12)

    def test_incomplete_flow_has_no_residual_or_fct(self):
        sim, nic, ledger = self._two_hop()
        ledger.register_flow(StubFlow(0, "s0", "sink", None, 0.0))
        nic.send(Packet(0, 1000, "s0", "sink", kind="data"))
        sim.run()
        ledger.finalize()
        (record,) = ledger.records()
        assert not record.completed
        assert record.fct_s is None
        assert record.components["residual_s"] == 0.0


class TestRealScenario:
    """End-to-end attribution on simulated congestion-control runs."""

    def _run_incast(self, config, n_senders=4, **kwargs):
        from repro.experiments import ext_incast_pfc
        ledger = FlowLedger()
        with use_ledger(ledger):
            rows = ext_incast_pfc.run(
                configs=(config,), n_senders=n_senders,
                transfer_kb=64.0, duration=0.05, **kwargs)
        ledger.finalize()
        return rows, ledger

    def test_incast_attribution_covers_95_percent(self):
        rows, ledger = self._run_incast("dcqcn+pfc")
        done = [r for r in ledger.records() if r.completed]
        assert len(done) == rows[0].completed == 4
        for record in done:
            total = sum(record.components[k] for k in COMPONENTS)
            # Exact tiling: the residual closes the sum by
            # construction...
            assert total == pytest.approx(record.fct_s, rel=1e-9)
            # ...and the acceptance bound: the *named* components
            # cover >= 95% of the FCT.
            assert abs(record.components["residual_s"]) <= \
                0.05 * record.fct_s
        # The congested incast must show its causes: ECN marks at the
        # bottleneck and rate cuts at the senders.
        causes = {cause["kind"] for record in done
                  for cause in record.causes}
        assert "ecn" in causes
        assert "rate" in causes

    def test_flow_events_validate_against_runlog_schema(self, tmp_path):
        _, ledger = self._run_incast("dcqcn+pfc")
        events = ledger.flow_events()
        assert events
        log = RunLog(tmp_path / "run.jsonl", run_id="forensics-test")
        log.start(experiment="ext_incast_pfc", params_hash="t",
                  seed=21)
        for event in events:
            log.flow(**event)
        log.finish()
        log.close()
        from repro.obs.runlog import read_events
        written = read_events(tmp_path / "run.jsonl")
        assert validate_events(written) == []
        flows = [e for e in written if e["type"] == "flow"]
        assert len(flows) == len(events)
        for event in flows:
            if event["completed"]:
                assert event["attributed_share"] >= 0.95

    def test_ledger_is_not_intrusive(self):
        # A run with the ledger attached must produce bit-identical
        # experiment results to one without -- forensics observes, it
        # never perturbs.
        from repro.experiments import ext_incast_pfc
        plain = ext_incast_pfc.run(configs=("dcqcn+pfc",), n_senders=4,
                                   transfer_kb=64.0, duration=0.05)
        traced, _ = self._run_incast("dcqcn+pfc")
        assert plain == traced

    def test_pfc_only_incast_records_pause_causes(self):
        _, ledger = self._run_incast("pfc")
        worst = ledger.worst_paused(3)
        assert worst
        assert worst[0]["paused_s"] > 0.0
        assert worst[0].get("ports")
        # worst_paused is ordered most-throttled first.
        paused = [entry["paused_s"] for entry in worst]
        assert paused == sorted(paused, reverse=True)

    def test_fig05_style_rate_limiting_dominates(self):
        # Long-lived DCQCN flows under RED marking: never complete,
        # but the ledger still records cuts and CNP feedback.
        from repro.sim.red import REDMarker
        params = DCQCNParams.paper_default(capacity_gbps=10,
                                           num_flows=4)
        marker = REDMarker(params.red, params.mtu_bytes, seed=3)
        net = single_switch(4, link_gbps=10, marker=marker)
        ledger = FlowLedger()
        with use_ledger(ledger):
            attach_flow_forensics(net, context="fig05")
            for i in range(4):
                install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0,
                             params)
            net.sim.run(until=0.01)
        ledger.finalize()
        records = ledger.records()
        assert len(records) == 4
        assert all(r.context == "fig05" for r in records)
        assert any(r.rate_cuts > 0 and r.cnps > 0 for r in records)


class TestSurfaces:
    def _completed_events(self):
        from repro.experiments import ext_incast_pfc
        ledger = FlowLedger()
        with use_ledger(ledger):
            ext_incast_pfc.run(configs=("dcqcn+pfc",), n_senders=4,
                               transfer_kb=64.0, duration=0.05)
        return ledger, ledger.flow_events()

    def test_render_explain_worst(self):
        _, events = self._completed_events()
        text = render_explain(events, worst=2)
        assert "showing the 2 worst by FCT" in text
        assert "attributed:" in text
        assert "causal chain:" in text
        assert "path:" in text
        for key in COMPONENTS:
            assert key[:-2] in text

    def test_render_explain_single_flow_and_missing(self):
        _, events = self._completed_events()
        text = render_explain(events, flow_id=events[0]["flow_id"])
        assert f"flow {events[0]['flow_id']}" in text
        missing = render_explain(events, flow_id=999)
        assert "known flow ids" in missing

    def test_render_explain_empty(self):
        assert "--forensics" in render_explain([])

    def test_render_flow_marks_incomplete(self):
        event = {"flow_id": 3, "completed": False,
                 "components": {k: 0.0 for k in COMPONENTS}}
        assert "INCOMPLETE" in render_flow(event)

    def test_publish_feeds_metrics_registry(self):
        ledger, _ = self._completed_events()
        registry = MetricsRegistry()
        ledger.publish(registry)
        snapshot = registry.snapshot()
        assert snapshot["obs.forensics.flows_total"]["value"] == 4
        assert snapshot["obs.forensics.flows_completed_total"][
            "value"] == 4
        assert snapshot["obs.forensics.fct_s"]["count"] == 4
        shares = snapshot["obs.forensics.paused_share"]
        assert shares["count"] == 4
        assert 0.0 <= shares["mean"] <= 1.0

    def test_report_renders_forensics_section(self):
        from repro.obs.report import render_events
        _, events = self._completed_events()
        run_events = [{"type": "run_start", "run_id": "r",
                       "experiment": "incast"}]
        run_events += [dict(e, type="flow") for e in events]
        run_events.append({"type": "run_end", "status": "ok"})
        text = render_events(run_events)
        assert "flow forensics -- 4 completed flow(s)" in text
        assert "fct_ms" in text
        assert "queueing_share" in text

    def test_watch_state_folds_flow_events(self):
        from repro.obs.live import WatchState, render_dashboard
        _, events = self._completed_events()
        state = WatchState()
        state.apply({"type": "run_start", "run_id": "r",
                     "experiment": "incast", "ts": 0.0})
        for event in events:
            state.apply(dict(event, type="flow"))
        assert state.flows == 4
        assert state.flows_completed == 4
        fcts = [e["fct_s"] for e in state.worst_flows]
        assert fcts == sorted(fcts, reverse=True)
        board = render_dashboard(state, now=1.0)
        assert "flows: 4 attributed, 4 completed" in board

    def test_health_verdict_names_worst_flows(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl", run_id="verdict-test")
        log.start(experiment="incast", params_hash="t")
        session = HealthSession(run_log=log,
                                registry=MetricsRegistry())
        session.add(HealthFinding(
            detector="pfc_pause_storm", kind="pause_storm",
            severity="critical", message="storm"))
        session.flow_context = [{"flow_id": 7, "paused_s": 1e-3}]
        session.emit_verdict()
        log.finish()
        log.close()
        from repro.obs.runlog import read_events
        verdicts = [e for e in read_events(tmp_path / "run.jsonl")
                    if e["type"] == "health"
                    and e["detector"] == "health.verdict"]
        assert len(verdicts) == 1
        assert verdicts[0]["worst_flows"] == [
            {"flow_id": 7, "paused_s": 1e-3}]

    def test_clean_verdict_omits_worst_flows(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl", run_id="clean-test")
        log.start(experiment="incast", params_hash="t")
        session = HealthSession(run_log=log,
                                registry=MetricsRegistry())
        session.flow_context = [{"flow_id": 7, "paused_s": 1e-3}]
        session.emit_verdict()
        log.finish()
        log.close()
        from repro.obs.runlog import read_events
        (verdict,) = [e for e in read_events(tmp_path / "run.jsonl")
                      if e["type"] == "health"]
        assert verdict["verdict"] == "clean"
        assert "worst_flows" not in verdict


class TestZeroCostOff:
    def test_ports_carry_no_ledger_by_default(self):
        net = single_switch(2, link_gbps=10)
        assert attach_flow_forensics(net) is None
        assert net.bottleneck_port.ledger is None
        for host in net.hosts.values():
            assert host.port.ledger is None

    def test_packets_unstamped_without_ledger(self):
        sim = Simulator()
        port = Port(sim, 1e9, Link(sim, 0.0, _Sink()))
        packet = Packet(0, 1024, "s", "sink", kind="data")
        port.send(packet)
        sim.run()
        assert packet.enqueue_time is None
