"""Extension experiments: multi-bottleneck, incast/PFC, PI-in-sim,
burst mitigation, and the ablation sweeps."""

import math

import pytest

from repro.experiments import (ablations, ext_burst_mitigation,
                               ext_fault_resilience, ext_incast_pfc,
                               ext_parking_lot, ext_pi_switch_sim)
from repro.sim.parking_lot import parking_lot


class TestParkingLotTopology:
    def test_chain_wiring(self):
        net = parking_lot(3)
        assert set(net.switches) == {"sw0", "sw1", "sw2", "sw3"}
        assert {"sx", "rx", "s0", "s1", "s2",
                "r0", "r1", "r2"} <= set(net.hosts)
        # Chain routing: sw0 reaches rx via sw1, sw3 directly.
        assert net.switches["sw0"].fib["rx"] == "sw1"
        assert net.switches["sw3"].fib["rx"] == "rx"
        # And backwards for control traffic.
        assert net.switches["sw3"].fib["sx"] == "sw2"

    def test_single_segment(self):
        net = parking_lot(1)
        assert net.switches["sw0"].fib["r0"] == "sw1"

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            parking_lot(0)


class TestParkingLotExperiment:
    def test_multi_hop_beat_down(self):
        rows = ext_parking_lot.run(protocols=("dcqcn",),
                                   segment_counts=(1, 4),
                                   duration=0.05)
        one_hop, four_hop = rows
        # One bottleneck: roughly the per-link fair half.
        assert one_hop.cross_fraction > 0.7
        # Four bottlenecks: the cross flow accumulates marks from every
        # hop and drops well below the per-link half.
        assert four_hop.cross_fraction < 0.7 * one_hop.cross_fraction
        # But DCQCN never starves it outright.
        assert four_hop.cross_share_gbps > 0.5

    def test_delay_based_starves_cross_flow(self):
        rows = ext_parking_lot.run(protocols=("patched_timely",),
                                   segment_counts=(1, 2),
                                   duration=0.05)
        one_hop, two_hop = rows
        assert one_hop.cross_fraction > 0.8
        # The cross flow's RTT sums both queues: its absolute-RTT error
        # stays positive even at its minimum rate.
        assert two_hop.cross_fraction < 0.2

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ext_parking_lot.run(protocols=("tcp",),
                                segment_counts=(1,))


class TestIncastPFC:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.config: r for r in ext_incast_pfc.run(duration=0.04)}

    def test_plain_drops_and_stalls(self, rows):
        plain = rows["plain"]
        assert plain.dropped_packets > 0
        assert plain.completed < plain.senders
        assert math.isnan(plain.last_fct_ms)

    def test_pfc_is_lossless(self, rows):
        pfc = rows["pfc"]
        assert pfc.dropped_packets == 0
        assert pfc.completed == pfc.senders
        assert pfc.pauses > 0

    def test_dcqcn_alone_cannot_save_first_rtt(self, rows):
        dcqcn = rows["dcqcn"]
        assert dcqcn.dropped_packets > 0
        assert dcqcn.dropped_packets < rows["plain"].dropped_packets

    def test_combination_is_lossless_with_fewer_pauses(self, rows):
        combo = rows["dcqcn+pfc"]
        assert combo.dropped_packets == 0
        assert combo.completed == combo.senders
        assert combo.pauses < rows["pfc"].pauses

    def test_timely_needs_pfc_just_as_much(self, rows):
        """Both protocols start at line rate; neither signal returns
        within the first RTT, so the inrush is identical."""
        timely = rows["timely"]
        assert timely.dropped_packets > 0
        protected = rows["timely+pfc"]
        assert protected.dropped_packets == 0
        assert protected.completed == protected.senders

    def test_ecn_reduces_pause_load_delay_does_not(self, rows):
        """The asymmetry: DCQCN's marks retire PAUSEs early; TIMELY's
        RTT signal arrives too late to change the PAUSE churn within
        the incast epoch."""
        assert rows["dcqcn+pfc"].pauses < rows["timely+pfc"].pauses

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            ext_incast_pfc.run(configs=("magic",))


class TestPISwitchSim:
    def test_queue_pinned_at_packet_level(self):
        rows = ext_pi_switch_sim.run(flow_counts=(2, 10),
                                     duration=0.3)
        for row in rows:
            # Packet-level marking noise leaves a visible swing, but
            # the *mean* sits on the reference (the fluid Fig. 18
            # result carries over).
            assert row.pinned, f"N={row.num_flows}"
            assert row.jain_index > 0.95
        # The controller adapts p upward with more flows (Eq. 11).
        assert rows[1].p_final > rows[0].p_final


class TestBurstMitigation:
    def test_half_rate_bursts_defuse_incast(self):
        rows = ext_burst_mitigation.run(fractions=(1.0, 0.5),
                                        duration=0.1)
        full, half = rows
        assert not full.healthy
        assert half.healthy
        assert half.utilization > 2 * full.utilization

    def test_too_low_fraction_caps_throughput(self):
        rows = ext_burst_mitigation.run(fractions=(0.25,),
                                        duration=0.08)
        capped = rows[0]
        # Two flows at <= 0.25 line each: utilization ~ 0.5, not full.
        assert capped.utilization < 0.6
        assert not capped.healthy


class TestFaultResilience:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_fault_resilience.run(cnp_loss_rates=(0.0, 0.3),
                                        flap_frequencies_hz=(0.0, 200.0),
                                        duration=0.01)

    def test_physics_survive_every_scenario(self, rows):
        assert all(r.invariant_violations == 0 for r in rows)

    def test_fault_free_baseline_saturates(self, rows):
        base = next(r for r in rows
                    if r.cnp_loss == 0 and r.flap_hz == 0)
        assert base.throughput_gbps > 0.5 * 40.0
        assert base.cnps_lost == 0 and base.flap_drops == 0

    def test_cnp_loss_degrades_gracefully(self, rows):
        base = next(r for r in rows
                    if r.cnp_loss == 0 and r.flap_hz == 0)
        lossy = next(r for r in rows
                     if r.cnp_loss == 0.3 and r.flap_hz == 0)
        assert lossy.cnps_lost > 0
        # Lost CNPs mean late, coarse braking: flows keep most of
        # their throughput while the queue turns bursty.
        assert lossy.throughput_gbps > 0.5 * base.throughput_gbps
        assert lossy.queue_std_kb > base.queue_std_kb
        assert lossy.rate_limiter_timeouts >= base.rate_limiter_timeouts

    def test_flaps_drop_packets_but_flows_recover(self, rows):
        flappy = next(r for r in rows
                      if r.cnp_loss == 0 and r.flap_hz == 200.0)
        assert flappy.flap_drops > 0
        assert flappy.min_rate_gbps > 0

    def test_report_renders(self, rows):
        text = ext_fault_resilience.report(rows)
        assert "CNP loss" in text and "flap" in text


class TestAblations:
    def test_cnp_timer_reports_fixed_points(self):
        rows = ablations.cnp_timer(taus_us=(25.0, 100.0))
        assert len(rows) == 2
        for row in rows:
            p_star, q_star_kb, alpha_star, margin = row.metrics
            assert 0 < p_star < 0.1
            assert 0 < alpha_star < 1

    def test_ewma_gain_contraction_all_below_one(self):
        rows = ablations.ewma_gain(gains=(1 / 64, 1 / 1024))
        for row in rows:
            contraction = row.metrics[0]
            assert contraction < 1.0

    def test_weight_halfwidth_rows(self):
        rows = ablations.weight_halfwidth(halfwidths=(0.25,),
                                          duration=0.05)
        gap_gbps, queue_std = rows[0].metrics
        assert gap_gbps >= 0
        assert queue_std >= 0

    def test_gradient_clamp_rescues_throughput(self):
        rows = ablations.gradient_clamp(duration=0.08)
        unclamped, clamped = rows
        assert clamped.metrics[0] > unclamped.metrics[0]

    def test_reports_render(self):
        assert "tau" in ablations.report_cnp_timer(
            ablations.cnp_timer(taus_us=(50.0,)))
        assert "halfwidth" in ablations.report_weight_halfwidth(
            ablations.weight_halfwidth(halfwidths=(0.25,),
                                       duration=0.03))
