"""DCTCP baseline: window mechanics, marking reaction, end to end."""

import pytest

from repro.core.params import DCTCPParams
from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.link import Link, Port
from repro.sim.node import Host
from repro.sim.packet import Packet
from repro.sim.protocols.dctcp import DCTCPReceiver, DCTCPSender
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


class _NullSink:
    """Discards whatever the test host's NIC transmits."""

    name = "sw"

    def receive(self, packet, ingress=None):
        pass


def make_sender(flow_size=None, **kw):
    sim = Simulator()
    host = Host(sim, "s0")
    host.port = Port(sim, 1e9, Link(sim, 0.0, _NullSink()))
    flow = Flow(0, "s0", "recv", flow_size, 0.0)
    sender = DCTCPSender(sim, host, flow, **kw)
    return sim, sender


def ack(cumulative, marked=False):
    packet = Packet(0, 64, "recv", "s0", kind="ack")
    packet.acked_bytes = cumulative
    packet.ecn_marked = marked
    return packet


class TestParams:
    def test_step_red_profile(self):
        params = DCTCPParams(step_threshold=65.0)
        red = params.step_red()
        assert red.marking_probability(64.0) == 0.0
        assert red.marking_probability(66.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DCTCPParams(g=0.0)
        with pytest.raises(ValueError):
            DCTCPParams(step_threshold=0.0)
        with pytest.raises(ValueError):
            DCTCPParams(initial_window_packets=0)
        with pytest.raises(ValueError):
            DCTCPSender(Simulator(), Host(Simulator(), "x"),
                        Flow(0, "x", "y", None, 0.0), g=2.0)


class TestWindowMechanics:
    def test_initial_window(self):
        _, sender = make_sender(initial_window_packets=10)
        assert sender.cwnd == pytest.approx(10 * 1024)
        assert sender.in_slow_start

    def test_unmarked_window_doubles_in_slow_start(self):
        _, sender = make_sender()
        sender._window_end_bytes = 10 * 1024
        sender.on_ack(ack(10 * 1024))
        assert sender.cwnd == pytest.approx(20 * 1024)
        assert sender.in_slow_start

    def test_marked_window_applies_alpha_cut(self):
        _, sender = make_sender()
        sender._window_end_bytes = 10 * 1024
        cwnd = sender.cwnd
        sender.on_ack(ack(10 * 1024, marked=True))
        # Fully-marked window: F=1, alpha = g, cut by alpha/2.
        g = sender.g
        assert sender.alpha == pytest.approx(g)
        assert sender.cwnd == pytest.approx(cwnd * (1 - g / 2))
        assert not sender.in_slow_start

    def test_additive_increase_after_slow_start(self):
        _, sender = make_sender()
        sender.in_slow_start = False
        sender._window_end_bytes = 10 * 1024
        cwnd = sender.cwnd
        sender.on_ack(ack(10 * 1024))
        assert sender.cwnd == pytest.approx(cwnd + 1024)

    def test_partial_marking_ewma(self):
        _, sender = make_sender()
        sender._window_end_bytes = 10 * 1024
        sender._window_acked = 5 * 1024
        sender._window_marked = 1 * 1024
        sender._last_cumulative_ack = 5 * 1024
        sender.on_ack(ack(10 * 1024, marked=True))
        # 6 of 10 KB marked in this window.
        assert sender.alpha == pytest.approx(sender.g * 0.6)

    def test_cwnd_floor_one_mss(self):
        _, sender = make_sender()
        sender.alpha = 1.0
        sender.cwnd = 1024.0
        sender.in_slow_start = False
        sender._window_end_bytes = 1024
        sender.on_ack(ack(1024, marked=True))
        assert sender.cwnd >= 1024.0

    def test_duplicate_ack_ignored(self):
        _, sender = make_sender()
        sender._window_end_bytes = 10 * 1024
        sender.on_ack(ack(5 * 1024))
        windows = sender.windows_completed
        sender.on_ack(ack(5 * 1024))  # duplicate cumulative ACK
        assert sender.windows_completed == windows

    def test_cnp_rejected(self):
        _, sender = make_sender()
        with pytest.raises(ValueError):
            sender.on_cnp(Packet(0, 64, "r", "s0", kind="cnp"))


class TestReceiver:
    def test_acks_every_packet_with_echo(self):
        sim = Simulator()
        host = Host(sim, "recv")

        class Sink:
            name = "sw"

            def __init__(self):
                self.packets = []

            def receive(self, packet, ingress=None):
                self.packets.append(packet)

        sink = Sink()
        host.port = Port(sim, 1e9, Link(sim, 0.0, sink))
        flow = Flow(0, "s0", "recv", None, 0.0)
        receiver = DCTCPReceiver(sim, host, flow)
        data = Packet(0, 1024, "s0", "recv", kind="data")
        data.sent_time = 0.0
        data.ecn_marked = True
        receiver.on_data(data)
        sim.run()
        assert receiver.acks_sent == 1
        (echo,) = sink.packets
        assert echo.kind == "ack"
        assert echo.ecn_marked  # CE echoed
        assert echo.acked_bytes == 1024


class TestEndToEnd:
    def test_two_flows_pin_queue_at_threshold(self):
        params = DCTCPParams()
        marker = REDMarker(params.step_red(), params.mtu_bytes, seed=3)
        net = single_switch(2, link_gbps=10, marker=marker)
        senders = []
        for i in range(2):
            sender, _ = install_flow(net, "dctcp", f"s{i}", "recv",
                                     None, 0.0, params)
            senders.append(sender)
        from repro.sim.monitors import QueueMonitor
        monitor = QueueMonitor(net.sim, net.bottleneck_port,
                               interval=100e-6)
        net.sim.run(until=0.05)
        queue_kb = monitor.tail_mean_bytes(0.01) / 1024
        # DCTCP holds the queue just below its step threshold K.
        assert 0.5 * params.step_threshold < queue_kb \
            < 1.5 * params.step_threshold
        assert net.utilization(0.05) > 0.95
        # Fair windows.
        assert senders[0].cwnd == pytest.approx(senders[1].cwnd,
                                                rel=0.4)

    def test_finite_flow_completes(self):
        params = DCTCPParams()
        net = single_switch(1, link_gbps=10)
        done = []
        install_flow(net, "dctcp", "s0", "recv", 200 * 1024, 0.0,
                     params, on_complete=done.append)
        net.sim.run(until=0.05)
        assert len(done) == 1
        assert done[0].fct > 0

    def test_wrong_params_rejected(self):
        from repro.core.params import DCQCNParams
        net = single_switch(1, link_gbps=10)
        with pytest.raises(TypeError):
            install_flow(net, "dctcp", "s0", "recv", None, 0.0,
                         DCQCNParams.paper_default())
