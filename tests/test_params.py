"""Parameter dataclass validation and the RED profile (Eq. 3 / Eq. 9)."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.core.params import PIParams, PatchedTimelyParams, REDParams


class TestREDParams:
    def test_paper_default_thresholds(self):
        red = REDParams.paper_default()
        assert red.kmin == pytest.approx(5.0)
        assert red.kmax == pytest.approx(200.0)
        assert red.pmax == pytest.approx(0.01)

    def test_marking_zero_below_kmin(self):
        red = REDParams.paper_default()
        assert red.marking_probability(4.9) == 0.0
        assert red.marking_probability(0.0) == 0.0

    def test_marking_one_above_kmax(self):
        red = REDParams.paper_default()
        assert red.marking_probability(201.0) == 1.0

    def test_marking_pmax_at_kmax(self):
        red = REDParams.paper_default()
        assert red.marking_probability(200.0) == pytest.approx(0.01)

    def test_marking_midpoint(self):
        red = REDParams(kmin=10, kmax=110, pmax=0.1)
        assert red.marking_probability(60) == pytest.approx(0.05)

    def test_inverse_roundtrip_on_linear_segment(self):
        red = REDParams.paper_default()
        q = red.queue_for_probability(0.005)
        assert red.marking_probability(q) == pytest.approx(0.005)

    def test_inverse_rejects_p_above_pmax_without_extend(self):
        red = REDParams.paper_default()
        with pytest.raises(ValueError):
            red.queue_for_probability(0.05)

    def test_inverse_extends_beyond_pmax(self):
        red = REDParams.paper_default()
        q = red.queue_for_probability(0.02, extend=True)
        assert q > red.kmax

    def test_slope(self):
        red = REDParams.paper_default()
        assert red.slope == pytest.approx(0.01 / 195.0)

    def test_rejects_kmax_below_kmin(self):
        with pytest.raises(ValueError):
            REDParams(kmin=100, kmax=50, pmax=0.1)

    def test_rejects_bad_pmax(self):
        with pytest.raises(ValueError):
            REDParams(kmin=5, kmax=200, pmax=0.0)
        with pytest.raises(ValueError):
            REDParams(kmin=5, kmax=200, pmax=1.5)

    @given(st.floats(min_value=0.0, max_value=500.0))
    def test_probability_in_unit_interval(self, queue):
        red = REDParams.paper_default()
        p = red.marking_probability(queue)
        assert 0.0 <= p <= 1.0

    @given(st.floats(min_value=0.0, max_value=500.0),
           st.floats(min_value=0.0, max_value=500.0))
    def test_probability_monotone_in_queue(self, q1, q2):
        red = REDParams.paper_default()
        low, high = sorted([q1, q2])
        assert red.marking_probability(low) <= \
            red.marking_probability(high)


class TestDCQCNParams:
    def test_paper_default_values(self, dcqcn_params):
        assert dcqcn_params.g == pytest.approx(1 / 256)
        assert dcqcn_params.tau == pytest.approx(units.us(50))
        assert dcqcn_params.tau_prime == pytest.approx(units.us(55))
        assert dcqcn_params.timer == pytest.approx(units.us(55))
        assert dcqcn_params.fast_recovery_steps == 5
        assert dcqcn_params.byte_counter == pytest.approx(10240.0)
        assert dcqcn_params.rate_ai == pytest.approx(
            units.mbps_to_pps(40))

    def test_fair_share(self, dcqcn_ten_flows):
        assert dcqcn_ten_flows.fair_share == pytest.approx(
            dcqcn_ten_flows.capacity / 10)

    def test_replace_changes_one_field(self, dcqcn_params):
        swept = dcqcn_params.replace(num_flows=7)
        assert swept.num_flows == 7
        assert swept.capacity == dcqcn_params.capacity

    def test_rejects_tau_prime_below_tau(self, dcqcn_params):
        with pytest.raises(ValueError):
            dcqcn_params.replace(tau_prime=units.us(10))

    def test_rejects_nonpositive_capacity(self, dcqcn_params):
        with pytest.raises(ValueError):
            dcqcn_params.replace(capacity=0.0)

    def test_rejects_negative_tau_star(self, dcqcn_params):
        with pytest.raises(ValueError):
            dcqcn_params.replace(tau_star=-1e-6)

    def test_frozen(self, dcqcn_params):
        with pytest.raises(dataclasses.FrozenInstanceError):
            dcqcn_params.num_flows = 5


class TestTimelyParams:
    def test_footnote4_values(self, timely_params):
        assert timely_params.ewma_alpha == pytest.approx(0.875)
        assert timely_params.beta == pytest.approx(0.8)
        assert timely_params.t_low == pytest.approx(units.us(50))
        assert timely_params.t_high == pytest.approx(units.us(500))
        assert timely_params.min_rtt == pytest.approx(units.us(20))
        assert timely_params.delta == pytest.approx(
            units.mbps_to_pps(10))

    def test_queue_thresholds_scale_with_capacity(self, timely_params):
        assert timely_params.q_low == pytest.approx(
            timely_params.capacity * timely_params.t_low)
        assert timely_params.q_high > timely_params.q_low

    def test_rejects_t_high_below_t_low(self, timely_params):
        with pytest.raises(ValueError):
            timely_params.replace(t_high=units.us(10))

    def test_rejects_bad_ewma(self, timely_params):
        with pytest.raises(ValueError):
            timely_params.replace(ewma_alpha=1.5)


class TestPatchedTimelyParams:
    def test_q_ref_is_c_times_t_low(self, patched_params):
        base = patched_params.base
        assert patched_params.q_ref == pytest.approx(
            base.capacity * base.t_low)

    def test_beta_band_default(self, patched_params):
        assert patched_params.beta_band == pytest.approx(0.008)

    def test_segment_is_16kb(self, patched_params):
        assert patched_params.base.segment == pytest.approx(16.0)

    def test_fixed_point_queue_eq31(self, patched_params):
        base = patched_params.base
        expected = (base.num_flows * base.delta * patched_params.q_ref
                    / (patched_params.beta_band * base.capacity)
                    + patched_params.q_ref)
        assert patched_params.fixed_point_queue == pytest.approx(expected)

    def test_fixed_point_queue_grows_with_n(self):
        q2 = PatchedTimelyParams.paper_default(num_flows=2)
        q20 = PatchedTimelyParams.paper_default(num_flows=20)
        assert q20.fixed_point_queue > q2.fixed_point_queue

    def test_weight_endpoints(self, patched_params):
        assert patched_params.weight(-1.0) == 0.0
        assert patched_params.weight(1.0) == 1.0
        assert patched_params.weight(0.0) == pytest.approx(0.5)

    @given(st.floats(min_value=-10, max_value=10))
    def test_weight_bounded(self, g):
        params = PatchedTimelyParams.paper_default()
        assert 0.0 <= params.weight(g) <= 1.0

    @given(st.floats(min_value=-2, max_value=2),
           st.floats(min_value=-2, max_value=2))
    def test_weight_monotone(self, g1, g2):
        params = PatchedTimelyParams.paper_default()
        low, high = sorted([g1, g2])
        assert params.weight(low) <= params.weight(high)

    def test_replace_base(self, patched_params):
        swept = patched_params.replace_base(num_flows=9)
        assert swept.base.num_flows == 9
        assert swept.q_ref == patched_params.q_ref


class TestPIParams:
    def test_for_dcqcn_reference_in_packets(self):
        pi = PIParams.for_dcqcn(100.0)
        assert pi.q_ref == pytest.approx(100.0)

    def test_for_timely_gains_positive(self):
        pi = PIParams.for_timely(300.0)
        assert pi.k1 > 0 and pi.k2 > 0

    def test_rejects_negative_k1(self):
        with pytest.raises(ValueError):
            PIParams(q_ref=100, k1=-1.0, k2=1.0)

    def test_rejects_bad_clamp_window(self):
        with pytest.raises(ValueError):
            PIParams(q_ref=100, k1=1.0, k2=1.0, p_min=0.5, p_max=0.5)
