"""Stability toolkit: Jacobians, Bode margins, and the paper's curves."""

import math

import numpy as np
import pytest

from repro.core.params import DCQCNParams, PatchedTimelyParams
from repro.core.stability import bode, linearize
from repro.core.stability.dcqcn_margin import (DCQCNLoopGain,
                                               dcqcn_phase_margin,
                                               margin_vs_flows)
from repro.core.stability.timely_margin import (
    PatchedTimelyLoopGain, patched_timely_phase_margin)
from repro.core.stability.timely_margin import (
    margin_vs_flows as timely_margin_vs_flows)


class TestJacobian:
    def test_linear_function_exact(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        jac = linearize.jacobian(lambda x: matrix @ x,
                                 np.array([0.5, -0.3]))
        assert jac == pytest.approx(matrix, rel=1e-6)

    def test_quadratic_function(self):
        jac = linearize.jacobian(lambda x: np.array([x[0] ** 2]),
                                 np.array([3.0]))
        assert jac[0, 0] == pytest.approx(6.0, rel=1e-5)

    def test_rectangular_shapes(self):
        def fn(x):
            return np.array([x[0] + x[1], x[1] * x[2],
                             x[0] - x[2], x[0]])
        jac = linearize.jacobian(fn, np.array([1.0, 2.0, 3.0]))
        assert jac.shape == (4, 3)
        assert jac[1] == pytest.approx([0.0, 3.0, 2.0], abs=1e-5)


class TestTransferFunction:
    def test_first_order_lag(self):
        # dx/dt = -a x + u, y = x  ->  G(s) = 1/(s + a).
        a0 = np.array([[-2.0]])
        b = np.array([1.0])
        c = np.array([1.0])
        s = 1j * 3.0
        value = linearize.transfer_function(s, a0, b, c)
        assert value == pytest.approx(1.0 / (s + 2.0))

    def test_delayed_self_feedback(self):
        # dx/dt = -x(t - T) + u: G(s) = 1/(s + e^{-sT}).
        tau = 0.1
        s = 1j * 5.0
        value = linearize.transfer_function(
            s, np.array([[0.0]]), np.array([1.0]), np.array([1.0]),
            a_delayed=[(np.array([[-1.0]]), tau)])
        assert value == pytest.approx(1.0 / (s + np.exp(-s * tau)))


class TestPhaseMargin:
    def test_delayed_integrator_analytic(self):
        """L(s) = K e^{-sT} / s has PM = 90 - wc*T*180/pi, wc = K."""
        gain, delay = 100.0, 2e-3

        def loop(omegas):
            s = 1j * omegas
            return gain * np.exp(-s * delay) / s

        result = bode.phase_margin(loop, omega_min=1.0, omega_max=1e4)
        expected = 90.0 - math.degrees(gain * delay)
        assert result.margin_deg == pytest.approx(expected, abs=0.5)
        assert result.crossover_rad_s == pytest.approx(gain, rel=0.01)

    def test_pure_integrator_margin_90(self):
        def loop(omegas):
            return 10.0 / (1j * omegas)

        result = bode.phase_margin(loop, omega_min=0.1, omega_max=1e3)
        assert result.margin_deg == pytest.approx(90.0, abs=0.5)

    def test_unstable_when_delay_large(self):
        def loop(omegas):
            s = 1j * omegas
            return 100.0 * np.exp(-s * 0.1) / s

        result = bode.phase_margin(loop, omega_min=1.0, omega_max=1e4)
        assert result.margin_deg < 0
        assert not result.stable

    def test_no_crossover_reports_infinite_margin(self):
        def loop(omegas):
            return 0.01 / (1.0 + 1j * omegas)

        result = bode.phase_margin(loop, omega_min=0.1, omega_max=1e3)
        assert math.isinf(result.margin_deg)
        assert result.stable

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            bode.phase_margin(lambda w: w, omega_min=10, omega_max=1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bode.phase_margin(lambda w: np.array([1.0]),
                              omega_min=1, omega_max=10, num_points=50)


class TestGainMargin:
    def test_delayed_integrator_analytic(self):
        """L = K e^{-sT}/s: phase hits -180 at w = pi/(2T), so
        GM = -20 log10(K * 2T / pi)."""
        gain, delay = 100.0, 2e-3

        def loop(omegas):
            s = 1j * omegas
            return gain * np.exp(-s * delay) / s

        measured = bode.gain_margin(loop, omega_min=1.0,
                                    omega_max=1e5)
        w_pc = math.pi / (2 * delay)
        expected = -20.0 * math.log10(gain / w_pc)
        assert measured == pytest.approx(expected, abs=0.1)
        assert measured > 0  # this loop is stable

    def test_first_order_lag_never_reaches_minus_180(self):
        def loop(omegas):
            return 5.0 / (1.0 + 1j * omegas)

        assert math.isinf(bode.gain_margin(loop, omega_min=0.1,
                                           omega_max=1e4))

    def test_negative_for_unstable_loop(self):
        def loop(omegas):
            s = 1j * omegas
            return 10000.0 * np.exp(-s * 2e-3) / s

        assert bode.gain_margin(loop, omega_min=1.0,
                                omega_max=1e5) < 0

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            bode.gain_margin(lambda w: w, omega_min=5, omega_max=1)

    def test_dcqcn_gain_margin_consistent_with_phase_margin(self):
        """Both margins agree on the stability verdict."""
        stable = DCQCNParams.paper_default(num_flows=10,
                                           tau_star_us=4.0)
        unstable = DCQCNParams.paper_default(num_flows=10,
                                             tau_star_us=85.0)
        assert bode.gain_margin(DCQCNLoopGain(stable)) > 0
        assert bode.gain_margin(DCQCNLoopGain(unstable)) < 0


class TestDCQCNMargins:
    def test_loop_gain_negative_real_dc(self, dcqcn_params):
        """At low frequency L(jw) ~ +|L| e^{-j90}: integrator phase."""
        loop = DCQCNLoopGain(dcqcn_params)
        value = loop(np.array([1.0]))[0]
        assert abs(value) > 1.0  # integral action: huge DC gain
        assert np.angle(value) == pytest.approx(-np.pi / 2, abs=0.1)

    def test_controller_dc_gain_negative(self, dcqcn_params):
        """More marking must reduce the rate."""
        loop = DCQCNLoopGain(dcqcn_params)
        g0 = loop.controller(1e-3 + 0j)
        assert g0.real < 0

    def test_default_small_delay_stable(self):
        params = DCQCNParams.paper_default(num_flows=10,
                                           tau_star_us=4.0)
        assert dcqcn_phase_margin(params).stable

    def test_large_delay_ten_flows_unstable(self):
        params = DCQCNParams.paper_default(num_flows=10,
                                           tau_star_us=85.0)
        assert not dcqcn_phase_margin(params).stable

    def test_large_delay_two_and_many_flows_stable(self):
        """The paper's headline non-monotonicity (Fig. 4)."""
        for n in (2, 64):
            params = DCQCNParams.paper_default(num_flows=n,
                                               tau_star_us=85.0)
            assert dcqcn_phase_margin(params).stable, f"N={n}"

    def test_margin_decreases_with_delay(self):
        margins = [dcqcn_phase_margin(
            DCQCNParams.paper_default(num_flows=10,
                                      tau_star_us=d)).margin_deg
            for d in (4, 25, 55, 85)]
        assert all(a > b for a, b in zip(margins, margins[1:]))

    def test_non_monotone_in_flow_count(self):
        params = DCQCNParams.paper_default(tau_star_us=85.0)
        margins = margin_vs_flows(params, (1, 10, 100))
        assert margins[1] < margins[0]
        assert margins[1] < margins[2]

    def test_smaller_rate_ai_stabilizes(self):
        """Fig. 3(b): gentler additive increase raises the margin."""
        base = DCQCNParams.paper_default(num_flows=10,
                                         tau_star_us=100.0)
        small = base.replace(rate_ai=base.rate_ai / 4)
        assert dcqcn_phase_margin(small).margin_deg > \
            dcqcn_phase_margin(base).margin_deg

    def test_larger_kmax_stabilizes(self):
        """Fig. 3(c): shallower RED slope raises the margin."""
        base = DCQCNParams.paper_default(num_flows=10,
                                         tau_star_us=100.0)
        red = type(base.red)(kmin=base.red.kmin,
                             kmax=base.red.kmax * 5,
                             pmax=base.red.pmax)
        wide = base.replace(red=red)
        assert dcqcn_phase_margin(wide).margin_deg > \
            dcqcn_phase_margin(base).margin_deg


class TestPatchedTimelyMargins:
    def test_moderate_n_stable(self):
        patched = PatchedTimelyParams.paper_default(num_flows=10)
        assert patched_timely_phase_margin(patched).stable

    def test_large_n_unstable(self):
        patched = PatchedTimelyParams.paper_default(num_flows=40)
        assert not patched_timely_phase_margin(patched).stable

    def test_margin_falls_rapidly_past_crossover(self):
        patched = PatchedTimelyParams.paper_default()
        margins = timely_margin_vs_flows(patched, (30, 40, 50, 60))
        assert all(a > b for a, b in zip(margins, margins[1:]))

    def test_feedback_delay_grows_with_n(self):
        """The Fig. 11 mechanism: queue -> delay coupling."""
        small = PatchedTimelyLoopGain(
            PatchedTimelyParams.paper_default(num_flows=2))
        large = PatchedTimelyLoopGain(
            PatchedTimelyParams.paper_default(num_flows=30))
        assert large.tau_feedback > small.tau_feedback

    def test_margin_matches_fluid_behaviour(self):
        """Linear verdicts agree with the nonlinear model's tail."""
        from repro.core.fluid import dde
        from repro.core.fluid.patched_timely import \
            PatchedTimelyFluidModel
        stable = PatchedTimelyParams.paper_default(num_flows=10)
        trace = dde.integrate(PatchedTimelyFluidModel(stable), 0.15,
                              dt=1e-6, record_stride=50)
        rel_osc = trace.tail_std("q", 0.03) / trace.tail_mean("q", 0.03)
        assert patched_timely_phase_margin(stable).stable
        assert rel_osc < 0.02
