"""Experiment drivers: fast smoke runs plus paper-shape assertions."""

import math

from repro.experiments import (fig02_dcqcn_validation,
                               fig03_dcqcn_phase_margin,
                               fig04_dcqcn_delay_impact,
                               fig05_dcqcn_sim_instability,
                               fig08_timely_validation,
                               fig09_timely_unfairness, fig10_burst_pacing,
                               fig11_patched_phase_margin,
                               fig12_patched_timely, fig17_ingress_marking,
                               fig20_jitter)
from repro.experiments.registry import EXPERIMENTS


class TestRegistry:
    def test_all_paper_figures_present(self):
        figures = {"fig02", "fig03", "fig04", "fig05", "fig08",
                   "fig09", "fig10", "fig11", "fig12", "fig14",
                   "fig15", "fig16", "fig17", "fig18", "fig19",
                   "fig20"}
        assert figures <= set(EXPERIMENTS)

    def test_extensions_present(self):
        extensions = {"ext_parking_lot", "ext_incast_pfc", "ext_pi_sim",
                      "ext_burst_mitigation", "ext_faults",
                      "abl_cnp_timer",
                      "abl_ewma_gain", "abl_weight",
                      "abl_gradient_clamp"}
        assert extensions <= set(EXPERIMENTS)

    def test_entries_are_callable(self):
        for experiment in EXPERIMENTS.values():
            assert callable(experiment.run)
            assert callable(experiment.report)
            assert experiment.description


class TestFig02:
    def test_fluid_matches_simulation(self):
        rows = fig02_dcqcn_validation.run(flow_counts=(2,),
                                          duration=0.03)
        row = rows[0]
        assert row.rate_error < 0.1
        assert row.queue_error < 0.5
        report = fig02_dcqcn_validation.report(rows)
        assert "Fig. 2" in report


class TestFig03:
    def test_panel_a_non_monotonic_at_high_delay(self):
        sweeps = fig03_dcqcn_phase_margin.panel_a(
            delays_us=(85.0,), flow_counts=(1, 10, 100))
        margins = sweeps[0].margins_deg
        assert margins[1] < margins[0]
        assert margins[1] < margins[2]
        assert 10 in sweeps[0].unstable_counts()

    def test_panel_b_smaller_rai_more_stable(self):
        sweeps = fig03_dcqcn_phase_margin.panel_b(
            rate_ai_mbps=(10, 150), flow_counts=(10,))
        assert sweeps[0].margins_deg[0] > sweeps[1].margins_deg[0]

    def test_panel_c_larger_kmax_more_stable(self):
        sweeps = fig03_dcqcn_phase_margin.panel_c(
            kmax_kb=(200, 1000), flow_counts=(10,))
        assert sweeps[1].margins_deg[0] > sweeps[0].margins_deg[0]

    def test_report_renders(self):
        sweeps = fig03_dcqcn_phase_margin.panel_a(
            delays_us=(4.0,), flow_counts=(2, 10))
        out = fig03_dcqcn_phase_margin.report(sweeps, "title")
        assert "tau*=4us" in out


class TestFig04:
    def test_delay_instability_pattern(self):
        """The paper's headline: 85us breaks 10 flows but not 2 or 64."""
        rows = fig04_dcqcn_delay_impact.run(delays_us=(4.0, 85.0),
                                            flow_counts=(2, 10, 64))
        by_key = {(r.delay_us, r.num_flows): r for r in rows}
        for n in (2, 10, 64):
            assert not by_key[(4.0, n)].oscillating, f"N={n} at 4us"
        assert by_key[(85.0, 10)].oscillating
        assert not by_key[(85.0, 2)].oscillating
        assert not by_key[(85.0, 64)].oscillating


class TestFig05:
    def test_extra_delay_destabilizes_simulation(self):
        rows = fig05_dcqcn_sim_instability.run(duration=0.05)
        baseline, delayed = rows
        assert delayed.coefficient_of_variation > \
            2 * baseline.coefficient_of_variation
        assert delayed.queue_peak_kb > baseline.queue_peak_kb


class TestFig08:
    def test_fluid_and_sim_agree_on_rate(self):
        rows = fig08_timely_validation.run(flow_counts=(2,),
                                           duration=0.04)
        assert rows[0].rate_error < 0.25
        assert rows[0].sim_queue_std_kb > 0  # TIMELY oscillates


class TestFig09:
    def test_initial_conditions_pick_the_regime(self):
        rows = fig09_timely_unfairness.run(duration=0.05)
        by_label = {r.label: r for r in rows}
        symmetric = by_label["(a) both 5Gbps at t=0"]
        skewed = by_label["(c) 7Gbps vs 3Gbps"]
        assert symmetric.jain_index > 0.99
        assert skewed.jain_index < 0.95
        assert skewed.max_min > 1.5


class TestFig10:
    def test_16kb_converges_64kb_collapses(self):
        rows = fig10_burst_pacing.run(duration=0.1)
        small, big = rows
        assert small.segment_kb == 16.0
        assert small.recovered
        assert small.jain_index > 0.9
        assert not big.recovered
        assert big.early_total_gbps < 0.5 * small.early_total_gbps


class TestFig11:
    def test_margin_crosses_zero_at_moderate_n(self):
        rows = fig11_patched_phase_margin.run(
            flow_counts=(2, 5, 10, 20, 30, 40))
        crossover = fig11_patched_phase_margin.crossover_flows(rows)
        assert crossover is not None
        assert 10 < crossover <= 40
        # Feedback delay grows with N (the mechanism).
        delays = [r.feedback_delay_us for r in rows
                  if not math.isnan(r.feedback_delay_us)]
        assert all(a < b for a, b in zip(delays, delays[1:]))


class TestFig12:
    def test_asymmetric_start_converges(self):
        row = fig12_patched_timely.run_asymmetric()
        assert row.jain_index > 0.999
        assert row.queue_error < 0.1
        assert not row.oscillating

    def test_stability_degrades_with_n(self):
        rows = fig12_patched_timely.run_flow_sweep(
            flow_counts=(10, 64), duration=0.15)
        assert not rows[0].oscillating
        assert rows[1].oscillating


class TestFig17:
    def test_ingress_marking_fluctuates_more(self):
        rows = fig17_ingress_marking.run()
        by_point = {r.marking_point: r for r in rows}
        assert by_point["ingress"].coefficient_of_variation > \
            1.5 * by_point["egress"].coefficient_of_variation
        assert by_point["ingress"].queue_std_kb > \
            by_point["egress"].queue_std_kb


class TestFig20:
    def test_jitter_hurts_timely_not_dcqcn(self):
        rows = fig20_jitter.run(duration=0.05)
        table = {(r.protocol, r.jitter_us): r for r in rows}
        timely_clean = table[("patched_timely", 0.0)]
        timely_jittered = table[("patched_timely", 100.0)]
        dcqcn_clean = table[("dcqcn", 0.0)]
        dcqcn_jittered = table[("dcqcn", 100.0)]
        assert timely_jittered.coefficient_of_variation > \
            5 * timely_clean.coefficient_of_variation
        assert dcqcn_jittered.coefficient_of_variation < \
            2 * dcqcn_clean.coefficient_of_variation + 0.05
