"""Fault injection: plans, injector mechanics, and resilience."""

import numpy as np
import pytest

from repro.core.params import DCQCNParams
from repro.sim import faults
from repro.sim.faults import (FaultPlan, FeedbackDelay, LinkFlap, PacketLoss,
                              collect_ports)
from repro.sim.invariants import InvariantMonitor
from repro.sim.leaf_spine import (leaf_spine, host_name, reroute_around_spine,
                                  restore_spine_routes)
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


def _dcqcn_net(params, n=2, seed=1, **flow_kwargs):
    marker = REDMarker(params.red, params.mtu_bytes, seed=seed)
    net = single_switch(n, link_gbps=40.0, marker=marker)
    for i in range(n):
        install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0, params,
                     **flow_kwargs)
    return net


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.ports() == set()

    def test_add_and_classify(self):
        plan = FaultPlan([
            LinkFlap("sw->recv", start=0.01, duration=0.001),
            PacketLoss("recv->sw", rate=0.2, kinds=("cnp",)),
            FeedbackDelay("sw->s0", extra=1e-5),
        ])
        assert len(plan) == 3
        assert plan.ports() == {"sw->recv", "recv->sw", "sw->s0"}

    def test_rejects_unknown_fault_type(self):
        with pytest.raises(TypeError):
            FaultPlan(["not a fault"])

    @pytest.mark.parametrize("bad", [
        lambda: LinkFlap("p", start=-1.0, duration=0.1),
        lambda: LinkFlap("p", start=0.0, duration=0.0),
        lambda: LinkFlap("p", start=0.0, duration=0.1, mode="melt"),
        lambda: LinkFlap("p", start=0.0, duration=0.1, count=3),
        lambda: LinkFlap("p", start=0.0, duration=0.2, count=2,
                         period=0.1),
        lambda: PacketLoss("p", rate=0.0),
        lambda: PacketLoss("p", rate=1.5),
        lambda: PacketLoss("p", rate=0.5, start=1.0, stop=0.5),
        lambda: FeedbackDelay("p"),
        lambda: FeedbackDelay("p", extra=-1e-6),
        lambda: FeedbackDelay("p", extra=1e-6, start=1.0, stop=0.5),
    ])
    def test_fault_validation(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_unknown_port_rejected_at_install(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([PacketLoss("nowhere->else", rate=0.5)])
        with pytest.raises(KeyError):
            faults.install(net, plan)


class TestNoOpGuarantee:
    def test_empty_plan_is_bit_identical(self, dcqcn_params):
        """The acceptance bar: an unused fault layer changes nothing."""
        def run_once(with_layer):
            net = _dcqcn_net(dcqcn_params)
            if with_layer:
                injector = faults.install(net, FaultPlan(), seed=7)
                assert injector.stats.lost_packets == 0
            queue = QueueMonitor(net.sim, net.bottleneck_port,
                                 interval=50e-6)
            rates = RateMonitor(net.sim, dict(net.senders),
                                interval=100e-6)
            net.sim.run(until=0.01)
            return (queue.occupancy_bytes, rates.rates,
                    net.sim.events_processed,
                    net.bottleneck_port.bytes_transmitted)

        assert run_once(False) == run_once(True)

    def test_empty_plan_installs_no_proxies(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        before = {name: port.link
                  for name, port in collect_ports(net).items()}
        faults.install(net, FaultPlan())
        after = {name: port.link
                 for name, port in collect_ports(net).items()}
        assert before == after


class TestPacketLoss:
    def test_cnp_loss_still_converges(self, dcqcn_params):
        """The Fig. 2 setup survives 20% CNP loss: positive, bounded
        rates and zero invariant violations."""
        net = _dcqcn_net(dcqcn_params, cnp_timeout=2e-3)
        plan = FaultPlan([PacketLoss("recv->sw", rate=0.2,
                                     kinds=("cnp",))])
        injector = faults.install(net, plan, seed=11)
        monitor = InvariantMonitor.for_network(net, interval=5e-4)
        net.sim.run(until=0.02)

        line_rate = net.link_rate_bytes
        for sender in net.senders.values():
            assert 0 < sender.rate <= line_rate
        assert injector.stats.lost_by_kind.get("cnp", 0) > 0
        # Only CNPs were at risk; data and ACKs sailed through.
        assert set(injector.stats.lost_by_kind) == {"cnp"}
        monitor.assert_clean()
        # Throughput did not collapse: the bottleneck stayed busy.
        assert net.utilization(0.02) > 0.5

    def test_kind_filter_spares_other_kinds(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([PacketLoss("sw->recv", rate=1.0,
                                     kinds=("ack",))])
        faults.install(net, plan, seed=3)
        net.sim.run(until=0.005)
        # DCQCN sends no ACKs, so a total ACK loss changes nothing:
        # data still flows and marks still produce CNPs.
        assert net.registry[0].bytes_delivered > 0

    def test_total_data_loss_blackholes(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([PacketLoss("sw->recv", rate=1.0,
                                     kinds=("data",))])
        injector = faults.install(net, plan, seed=3)
        net.sim.run(until=0.002)
        assert net.registry[0].bytes_delivered == 0
        assert injector.stats.lost_packets > 0
        assert injector.stats.lost_bytes > 0

    def test_corruption_is_delivered_then_discarded(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([PacketLoss("sw->recv", rate=1.0,
                                     kinds=("data",), corrupt=True)])
        injector = faults.install(net, plan, seed=3)
        net.sim.run(until=0.002)
        recv = net.hosts["recv"]
        assert injector.stats.corrupted_packets > 0
        # Every corrupted packet that has *arrived* was discarded (a
        # handful may still be in flight at the horizon).
        assert 0 < recv.corrupted_discarded <= \
            injector.stats.corrupted_packets
        assert injector.stats.corrupted_packets \
            - recv.corrupted_discarded < 20
        assert net.registry[0].bytes_delivered == 0

    def test_loss_window_respected(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([PacketLoss("sw->recv", rate=1.0,
                                     kinds=("data",),
                                     start=0.002, stop=0.004)])
        net_run_until = 0.006
        faults.install(net, plan, seed=3)
        delivered_before = []

        def snapshot():
            delivered_before.append(net.registry[0].bytes_delivered)
        net.sim.schedule_at(0.002, snapshot)   # end of clean phase
        net.sim.schedule_at(0.004, snapshot)   # end of loss phase
        net.sim.run(until=net_run_until)
        # Delivery during the clean phase, stalled during the loss
        # window, resumed after.
        assert delivered_before[0] > 0
        assert delivered_before[1] - delivered_before[0] <= \
            2 * dcqcn_params.mtu_bytes  # at most in-flight stragglers
        assert net.registry[0].bytes_delivered > delivered_before[1]

    def test_seeded_reproducibility(self, dcqcn_params):
        def run_once():
            net = _dcqcn_net(dcqcn_params)
            plan = FaultPlan([PacketLoss("recv->sw", rate=0.3,
                                         kinds=("cnp",))])
            injector = faults.install(net, plan, seed=42)
            net.sim.run(until=0.008)
            return (injector.stats.lost_packets,
                    net.sim.events_processed,
                    [s.rate for s in net.senders.values()])
        assert run_once() == run_once()


class TestLinkFlap:
    def test_drop_mode_blackholes_during_downtime(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([LinkFlap("sw->recv", start=0.002,
                                   duration=0.002, mode="drop")])
        injector = faults.install(net, plan)
        net.sim.run(until=0.008)
        assert injector.stats.link_downs == 1
        assert injector.stats.link_ups == 1
        assert injector.stats.flap_drops > 0
        assert injector.stats.held_packets == 0
        # Traffic resumed after recovery.
        assert net.registry[0].bytes_delivered > 0

    def test_hold_mode_preserves_packets(self, dcqcn_params):
        duration = 0.008

        def run_once(mode):
            net = _dcqcn_net(dcqcn_params)
            plan = FaultPlan([LinkFlap("sw->recv", start=0.002,
                                       duration=0.002, mode=mode)])
            injector = faults.install(net, plan)
            net.sim.run(until=duration)
            return net, injector

        held_net, held_inj = run_once("hold")
        drop_net, _ = run_once("drop")
        assert held_inj.stats.held_packets > 0
        assert held_inj.stats.flap_drops == 0
        # Hold releases the backlog: strictly more bytes arrive than
        # in drop mode over the same horizon.
        assert held_net.registry[0].bytes_delivered > \
            drop_net.registry[0].bytes_delivered

    def test_periodic_flaps(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([LinkFlap("sw->recv", start=0.001,
                                   duration=0.0005, period=0.002,
                                   count=3)])
        injector = faults.install(net, plan)
        net.sim.run(until=0.01)
        assert injector.stats.link_downs == 3
        assert injector.stats.link_ups == 3
        assert injector.link_is_up("sw->recv")

    def test_link_state_queryable_mid_flap(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        plan = FaultPlan([LinkFlap("sw->recv", start=0.001,
                                   duration=0.002)])
        injector = faults.install(net, plan)
        states = []
        net.sim.schedule_at(0.002, lambda: states.append(
            injector.link_is_up("sw->recv")))
        net.sim.run(until=0.005)
        assert states == [False]
        assert injector.link_is_up("sw->recv")
        assert injector.link_is_up("never-wrapped")


class TestFeedbackDelay:
    def test_cnp_delay_lengthens_control_loop(self, dcqcn_params):
        def run_once(extra):
            net = _dcqcn_net(dcqcn_params)
            if extra > 0:
                plan = FaultPlan([FeedbackDelay("sw->s0", extra=extra),
                                  FeedbackDelay("sw->s1", extra=extra)])
                faults.install(net, plan)
            net.sim.run(until=0.01)
            delays = [s.cnp_delay_max for s in net.senders.values()
                      if s.cnps_received]
            return max(delays)

        assert run_once(85e-6) >= run_once(0.0) + 80e-6

    def test_jitter_draws_from_shared_rng(self, dcqcn_params):
        net = _dcqcn_net(dcqcn_params)
        rng = np.random.default_rng(5)
        plan = FaultPlan([FeedbackDelay("sw->s0", jitter=50e-6)])
        injector = faults.install(net, plan, rng=rng)
        net.sim.run(until=0.005)
        assert injector.stats.delayed_packets > 0


class TestLeafSpineReroute:
    def test_reroute_and_restore(self):
        net = leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=1)
        leaf = net.switches["leaf0"]
        remote = host_name(1, 0)
        original = leaf.fib[remote]
        assert original.startswith("spine")
        other = "spine1" if original == "spine0" else "spine0"

        assert reroute_around_spine(net, "leaf0", original) >= 1
        assert leaf.fib[remote] == other
        assert restore_spine_routes(net, "leaf0") >= 1
        assert leaf.fib[remote] == original

    def test_single_spine_has_no_detour(self):
        net = leaf_spine(n_leaves=2, n_spines=1, hosts_per_leaf=1)
        assert reroute_around_spine(net, "leaf0", "spine0") == 0

    def test_flap_with_reroute_keeps_traffic_flowing(self):
        params = DCQCNParams.paper_default(capacity_gbps=10.0,
                                           num_flows=1)
        net = leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=1,
                         marker_factory=lambda: REDMarker(
                             params.red, params.mtu_bytes, seed=2))
        src, dst = host_name(0, 0), host_name(1, 0)
        install_flow(net, "dcqcn", src, dst, None, 0.0, params)
        via = net.switches["leaf0"].fib[dst]

        def on_down(port_name):
            leaf_name, spine_name = port_name.split("->")
            reroute_around_spine(net, leaf_name, spine_name)

        def on_up(port_name):
            restore_spine_routes(net, port_name.split("->")[0])

        plan = FaultPlan([LinkFlap(f"leaf0->{via}", start=0.002,
                                   duration=0.004, mode="drop",
                                   reroute=True)])
        injector = faults.install(net, plan, on_link_down=on_down,
                                  on_link_up=on_up)
        delivered_at = {}
        net.sim.schedule_at(0.002, lambda: delivered_at.__setitem__(
            "down", net.registry[0].bytes_delivered))
        net.sim.run(until=0.006)
        # The reroute happened while the link was dark, and traffic
        # kept making progress through the surviving spine.
        during_flap = net.registry[0].bytes_delivered \
            - delivered_at["down"]
        assert during_flap > 0
        # Only in-flight packets died; new ones took the detour.
        assert injector.stats.flap_drops <= 5
        # Routes restored after recovery.
        assert net.switches["leaf0"].fib[dst] == via
